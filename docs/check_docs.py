#!/usr/bin/env python
"""Executable-documentation gate.

Three checks, all run by the CI docs job (and by ``tests/test_docs.py``):

1. every fenced ``python`` code block in ``README.md``,
   ``docs/WALKTHROUGH.md`` and ``docs/SERVICE.md`` executes without
   raising (with ``src/`` on ``sys.path``), so documented snippets
   cannot rot — the SERVICE.md blocks start a real allocation service
   on a loopback socket and drive it through the real client;
2. every backticked ``path`` / ``path:line`` anchor in
   ``docs/PAPER_MAP.md`` points at an existing file (and, when a line
   number is given, at an existing line of it);
3. the pytest-style ``path::name`` anchors in PAPER_MAP resolve their
   file part the same way.

Run from anywhere::

    python docs/check_docs.py            # all checks
    python docs/check_docs.py --only anchors
"""

from __future__ import annotations

import argparse
import io
import os
import re
import sys
import traceback

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

EXECUTABLE_DOCS = [
    "README.md",
    os.path.join("docs", "WALKTHROUGH.md"),
    os.path.join("docs", "SERVICE.md"),
]
ANCHOR_DOC = os.path.join("docs", "PAPER_MAP.md")

#: `path` or `path:line` inside backticks; the path must contain a slash
#: or be a bare known-extension file.  ``::`` (pytest node ids) is left
#: to the path part, so `tests/test_x.py::TestY` checks `tests/test_x.py`.
ANCHOR_RE = re.compile(
    r"`(?P<path>[A-Za-z0-9_.\-/]+\.(?:py|md|toml|yml|yaml|ir|ml|txt))"
    r"(?::(?P<line>\d+))?(?:::[A-Za-z0-9_.:]+)?`"
)


def _read(relpath: str) -> str:
    with io.open(os.path.join(REPO_ROOT, relpath), encoding="utf-8") as fh:
        return fh.read()


def python_blocks(markdown: str):
    """Yield (first_line_number, source) for each ```python fence."""
    lines = markdown.splitlines()
    i = 0
    while i < len(lines):
        if lines[i].strip() == "```python":
            start = i + 1
            j = start
            while j < len(lines) and lines[j].strip() != "```":
                j += 1
            yield start + 1, "\n".join(lines[start:j])
            i = j + 1
        else:
            i += 1


def check_executable(relpath: str) -> list:
    """Run every python block of one document; return error strings."""
    errors = []
    if SRC not in sys.path:
        sys.path.insert(0, SRC)
    for lineno, source in python_blocks(_read(relpath)):
        namespace = {"__name__": "__doccheck__"}
        try:
            exec(compile(source, f"{relpath}:{lineno}", "exec"), namespace)
        except Exception:
            errors.append(
                f"{relpath}:{lineno}: python block raised:\n"
                + traceback.format_exc(limit=5)
            )
    return errors


def check_anchors(relpath: str) -> list:
    """Validate every `path[:line]` anchor in one document."""
    errors = []
    found = 0
    for match in ANCHOR_RE.finditer(_read(relpath)):
        path, line = match.group("path"), match.group("line")
        found += 1
        full = os.path.join(REPO_ROOT, path)
        if not os.path.isfile(full):
            errors.append(f"{relpath}: anchor `{match.group(0)}` -> "
                          f"no such file {path}")
            continue
        if line is not None:
            with io.open(full, encoding="utf-8") as fh:
                count = sum(1 for _ in fh)
            if int(line) > count:
                errors.append(
                    f"{relpath}: anchor `{match.group(0)}` -> {path} has "
                    f"only {count} lines"
                )
    if found == 0:
        errors.append(f"{relpath}: no path anchors found (regex drift?)")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only", choices=["exec", "anchors"],
        help="run a single check instead of all",
    )
    args = parser.parse_args(argv)

    errors = []
    if args.only in (None, "exec"):
        for doc in EXECUTABLE_DOCS:
            errors += check_executable(doc)
    if args.only in (None, "anchors"):
        errors += check_anchors(ANCHOR_DOC)

    for err in errors:
        print(err)
    if errors:
        print(f"FAILED: {len(errors)} docs problem(s)")
        return 1
    print("docs checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
