"""Command-line interface.

Four subcommands over textual IR files (the format of
:mod:`repro.ir.printer`):

* ``run`` -- execute a program in the simulator and report results and
  dynamic counts.
* ``tiles`` -- print the tile tree (with fix-up applied).
* ``allocate`` -- run an allocator and print the rewritten program plus
  statistics; optionally verify against the original and use profile-guided
  frequencies.
* ``trace`` -- run the hierarchical allocator with structured tracing and
  render the per-tile decision report (section-4 metrics per candidate,
  the four boundary cases per edge); optionally dump the raw event stream
  as JSONL and/or the scheduler timings as a ``chrome://tracing`` file.
* ``batch`` -- allocate every IR/MiniLang file in a directory through the
  batch engine: content-addressed allocation cache (in-memory LRU,
  optionally persistent with ``--cache``) in front of a process pool
  (``--workers``); ``--stats`` prints hits/misses/evictions and
  functions/sec, ``--chrome`` writes the per-worker timeline.
* ``serve`` -- run the batch engine as a long-lived HTTP/JSON service
  (``POST /allocate``, ``GET /metrics``, ``GET /healthz``) with a shared
  allocation cache, cross-request coalescing and bounded-queue
  backpressure; drains gracefully on SIGINT/SIGTERM.  See
  ``docs/SERVICE.md``.

Examples::

    python -m repro allocate prog.ir --allocator hierarchical \
        --registers 4 --arg n=8 --array A=1,2,3,4,5,6,7,8 --verify
    python -m repro trace examples/programs/figure1.ir --registers 4 \
        --jsonl events.jsonl --chrome sched.json --workers 4
    python -m repro batch examples/programs --workers 4 \
        --cache /tmp/alloc-cache --stats
    python -m repro serve --port 8421 --workers 4 \
        --cache /tmp/alloc-cache --queue-limit 512
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.allocators import (
    BriggsAllocator,
    ChaitinAllocator,
    LocalAllocator,
    NaiveMemoryAllocator,
)
from repro.analysis.frequency import frequencies_from_profile
from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.ir import format_function, parse_function, validate_function
from repro.machine.simulator import SimulationError, simulate
from repro.machine.target import Machine
from repro.perf.timers import StageTimers
from repro.pipeline import Workload, compile_function, prepare
from repro.tiles import build_tile_tree
from repro.trace import (
    AllocationTracer,
    ChromeTraceSink,
    JSONLSink,
    MemorySink,
)
from repro.trace.report import render_report, render_schedule_summary

ALLOCATORS = {
    "hierarchical": HierarchicalAllocator,
    "chaitin": ChaitinAllocator,
    "briggs": BriggsAllocator,
    "local": LocalAllocator,
    "naive": NaiveMemoryAllocator,
}


def _parse_kv(pairs: Sequence[str]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for pair in pairs:
        key, _, value = pair.partition("=")
        if not key or not value:
            raise SystemExit(f"bad --arg {pair!r}; expected name=int")
        out[key] = int(value)
    return out


def _parse_arrays(pairs: Sequence[str]) -> Dict[str, List[int]]:
    out: Dict[str, List[int]] = {}
    for pair in pairs:
        key, _, value = pair.partition("=")
        if not key:
            raise SystemExit(f"bad --array {pair!r}; expected name=v1,v2,...")
        out[key] = [int(v) for v in value.split(",") if v != ""]
    return out


def _load(path: str, lang: str = "auto"):
    if path == "-":
        text = sys.stdin.read()
    else:
        with open(path) as fh:
            text = fh.read()
    if lang == "auto":
        # Textual IR headers carry "start=<label>"; MiniLang never does.
        first = next(
            (ln for ln in text.splitlines() if ln.strip()), ""
        )
        lang = "ir" if "start=" in first else "minilang"
    if lang == "minilang":
        from repro.minilang import compile_source

        fn = compile_source(text)
    else:
        fn = parse_function(text)
    validate_function(fn)
    return fn


def _add_io_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("file", help="IR or MiniLang file (or - for stdin)")
    parser.add_argument(
        "--lang", choices=["auto", "ir", "minilang"], default="auto",
        help="input language (auto-detected by default)",
    )
    parser.add_argument(
        "--arg", action="append", default=[], metavar="NAME=INT",
        help="scalar argument (repeatable)",
    )
    parser.add_argument(
        "--array", action="append", default=[], metavar="NAME=V1,V2,...",
        help="array input (repeatable)",
    )


def cmd_run(args: argparse.Namespace, out) -> int:
    fn = _load(args.file, args.lang)
    result = simulate(
        fn, args=_parse_kv(args.arg), arrays=_parse_arrays(args.array)
    )
    print(f"returned: {result.returned}", file=out)
    print(f"steps: {result.steps}", file=out)
    print(f"program memory refs: {result.program_memory_refs}", file=out)
    print(f"spill memory refs: {result.spill_memory_refs}", file=out)
    if args.profile:
        print("block counts:", file=out)
        for label, count in sorted(result.profile.block_counts.items()):
            print(f"  {label}: {count}", file=out)
    return 0


def cmd_tiles(args: argparse.Namespace, out) -> int:
    fn = _load(args.file, getattr(args, "lang", "auto"))
    tree = build_tile_tree(fn)
    print(tree.format(), file=out)
    print(f"tiles: {len(tree)}  height: {tree.height()}", file=out)
    return 0


def _budget_limits_from_args(args: argparse.Namespace):
    """BudgetLimits from ``--max-fuel`` / ``--deadline`` (None when off)."""
    max_fuel = getattr(args, "max_fuel", None)
    deadline = getattr(args, "deadline", None)
    if max_fuel is None and deadline is None:
        return None
    from repro.core.budget import BudgetLimits

    return BudgetLimits(max_fuel=max_fuel, deadline_s=deadline)


def cmd_allocate(args: argparse.Namespace, out) -> int:
    from repro.core.budget import BudgetExceededError

    fn = _load(args.file, args.lang)
    machine = Machine.simple(args.registers)
    scalar_args = _parse_kv(args.arg)
    arrays = _parse_arrays(args.array)

    budget_limits = _budget_limits_from_args(args)
    if args.allocator == "hierarchical":
        config = HierarchicalConfig()
        if args.profile_guided:
            run = simulate(fn, args=scalar_args, arrays=arrays)
            config = HierarchicalConfig(
                frequencies=frequencies_from_profile(fn, run.profile)
            )
        allocator = HierarchicalAllocator(config, budget_limits=budget_limits)
    else:
        if budget_limits is not None:
            raise SystemExit(
                "--max-fuel/--deadline apply to the hierarchical "
                "allocator only"
            )
        allocator = ALLOCATORS[args.allocator]()

    workload = Workload(fn, scalar_args, arrays, name=fn.name)
    try:
        result = compile_function(
            workload, allocator, machine, verify=not args.no_verify,
            optimize=args.optimize,
        )
    except BudgetExceededError as exc:
        raise SystemExit(f"allocation aborted by resource budget: {exc}")
    print(format_function(result.fn), file=out)
    print(f"# allocator: {args.allocator}", file=out)
    print(f"# registers: {args.registers}", file=out)
    print(f"# returned: {result.allocated_run.returned}", file=out)
    print(f"# dynamic spill loads:  {result.allocated_run.spill_loads}", file=out)
    print(f"# dynamic spill stores: {result.allocated_run.spill_stores}", file=out)
    print(f"# register moves:       {result.moves}", file=out)
    print(f"# spilled variables:    {sorted(result.stats.spilled_vars)}", file=out)
    if not args.no_verify:
        print("# verification: PASSED (differential run matched)", file=out)
    if budget_limits is not None and allocator.last_budget is not None:
        snap = allocator.last_budget
        print(
            f"# budget: spent {snap['spent']} fuel "
            f"(max_fuel={snap['max_fuel']}, deadline_s={snap['deadline_s']}, "
            f"counters={snap['counters']})",
            file=out,
        )
    if getattr(args, "profile", False):
        timers = StageTimers.from_snapshot(
            result.stats.extra.get("stage_times", {}),
            result.stats.extra.get("stage_counts", {}),
        )
        print("# stage profile (allocator pipeline):", file=out)
        for line in timers.report().splitlines():
            print(f"#   {line}", file=out)
    return 0


def cmd_trace(args: argparse.Namespace, out) -> int:
    fn = _load(args.file, args.lang)
    machine = Machine.simple(args.registers)

    memory = MemorySink()
    sinks: List[object] = [memory]
    if args.jsonl:
        sinks.append(JSONLSink(args.jsonl))
    if args.chrome:
        sinks.append(ChromeTraceSink(args.chrome))
    tracer = AllocationTracer(sinks)

    workers = args.workers
    config = HierarchicalConfig(
        parallel=workers > 0,
        parallel_workers=workers if workers > 0 else None,
    )
    allocator = HierarchicalAllocator(config, tracer=tracer)
    # Same preparation as ``allocate`` (web renaming), but no simulation:
    # the report describes allocation decisions, not dynamic costs.
    allocator.allocate(prepare(fn), machine)
    tracer.close()

    ctx = allocator.last_context
    print(
        render_report(
            memory.events,
            counters=tracer.counters(),
            tree_text=ctx.tree.format(),
            title=f"Allocation trace: {fn.name} "
                  f"({args.registers} registers)",
        ),
        file=out,
        end="",
    )
    if args.timings:
        print("\n## Stage timings\n", file=out)
        print(render_schedule_summary(memory.events), file=out)
    if args.jsonl:
        print(f"\n[events written to {args.jsonl}]", file=out)
    if args.chrome:
        print(
            f"\n[chrome://tracing timeline written to {args.chrome}]",
            file=out,
        )
    return 0


def cmd_batch(args: argparse.Namespace, out) -> int:
    from repro.batch import BatchConfig, BatchEngine, load_module_dir
    from repro.errors import BatchFunctionError

    workloads = load_module_dir(
        args.dir, args=_parse_kv(args.arg), arrays=_parse_arrays(args.array)
    )
    for file_error in workloads.errors:
        print(f"LOAD FAILED {file_error.describe()}", file=out)
    policy = args.policy
    if args.cache and policy == "memory":
        policy = "disk"
    batch = BatchConfig(
        batch_workers=args.workers,
        cache_dir=args.cache,
        cache_policy=policy,
        registers=args.registers,
        simulate=not args.no_simulate,
        max_retries=args.max_retries,
        task_timeout_s=args.task_timeout,
        on_error=args.on_error,
        tile_cache=args.tile_cache,
        tile_cache_entries=args.tile_cache_entries,
        max_fuel=args.max_fuel,
        deadline_s=args.deadline,
        admission_limit=args.admission_limit,
    )

    sinks: List[object] = []
    if args.jsonl:
        sinks.append(JSONLSink(args.jsonl))
    if args.chrome:
        sinks.append(ChromeTraceSink(args.chrome))
    tracer = AllocationTracer(sinks) if sinks else None

    engine = None
    try:
        with BatchEngine(batch=batch, tracer=tracer) as engine:
            module = engine.allocate_module(workloads)
    except BatchFunctionError as exc:
        raise SystemExit(f"batch allocation failed (--on-error fail): {exc}")
    except SimulationError as exc:
        raise SystemExit(
            f"simulation failed: {exc}\n"
            "(--arg/--array apply to every function in the module; use "
            "--no-simulate for static allocation of mixed-signature "
            "modules)"
        )
    finally:
        if tracer is not None:
            tracer.close()

    for result in module:
        record = result.record
        if record is None:
            print(
                f"{result.name}: FAILED {result.error.describe()} "
                f"[{result.worker}]",
                file=out,
            )
            continue
        line = (
            f"{result.name}: blocks={record.blocks} "
            f"spilled={len(record.spilled)} "
            f"static[loads={record.static_costs['spill_loads']} "
            f"stores={record.static_costs['spill_stores']} "
            f"moves={record.static_costs['moves']}]"
        )
        if record.costs is not None:
            line += (
                f" dynamic[spill_refs="
                f"{record.costs['spill_loads'] + record.costs['spill_stores']}"
                f" moves={record.costs['moves']}]"
            )
        if result.degraded:
            line += f" DEGRADED[{result.fallback_allocator}]"
        line += f" [{'cache:' + result.source if result.cached else result.worker}]"
        print(line, file=out)

    if args.stats:
        stats = module.stats.as_dict()
        print("# batch stats", file=out)
        keys = ["functions", "computed", "hits", "misses",
                "evictions", "disk_hits", "failures", "retries",
                "degraded", "pool_restarts", "quarantined"]
        if (
            args.max_fuel is not None
            or args.deadline is not None
            or args.admission_limit is not None
        ):
            keys += ["rejected", "degraded_by_budget"]
        if args.tile_cache:
            keys += ["tile_hits", "tile_misses", "subtrees_reused"]
        keys += ["wall_s", "functions_per_sec"]
        for key in keys:
            print(f"#   {key}: {stats[key]}", file=out)
    if args.profile and engine is not None:
        print("# stage profile (summed across functions/workers):",
              file=out)
        for line in engine.timers.report(
            total=module.stats.wall_s
        ).splitlines():
            print(f"#   {line}", file=out)
    if args.jsonl:
        print(f"# [events written to {args.jsonl}]", file=out)
    if args.chrome:
        print(f"# [chrome://tracing timeline written to {args.chrome}]",
              file=out)

    failures = module.failures
    if workloads.errors or failures:
        print(
            f"# FAILURES: {len(workloads.errors)} file(s) failed to load, "
            f"{len(failures)} function(s) failed to allocate",
            file=out,
        )
        return 1
    return 0


def cmd_serve(args: argparse.Namespace, out) -> int:
    from repro.batch import BatchConfig
    from repro.service import ServiceConfig, run_service

    policy = args.policy
    if args.cache and policy == "memory":
        policy = "disk"
    batch = BatchConfig(
        batch_workers=args.workers,
        cache_dir=args.cache,
        cache_policy=policy,
        registers=args.registers,
        simulate=not args.no_simulate,
        max_retries=args.max_retries,
        task_timeout_s=args.task_timeout,
        on_error=args.on_error,
        tile_cache=not args.no_tile_cache,
        tile_cache_entries=args.tile_cache_entries,
        max_fuel=args.max_fuel,
        deadline_s=args.deadline,
        admission_limit=args.admission_limit,
    )
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        max_batch=args.max_batch,
        max_functions=args.max_functions,
        drain_timeout_s=args.drain_timeout,
        batch=batch,
    )
    tracer = AllocationTracer([JSONLSink(args.jsonl)]) if args.jsonl else None
    try:
        run_service(config, tracer=tracer, out=out)
    finally:
        if tracer is not None:
            tracer.close()
    if args.jsonl:
        print(f"# [events written to {args.jsonl}]", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hierarchical graph-coloring register allocation "
        "(Callahan & Koblenz, PLDI 1991)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="execute a program in the simulator")
    _add_io_args(run_p)
    run_p.add_argument("--profile", action="store_true",
                       help="print block execution counts")
    run_p.set_defaults(func=cmd_run)

    tiles_p = sub.add_parser("tiles", help="print the tile tree")
    tiles_p.add_argument("file", help="IR or MiniLang file (or - for stdin)")
    tiles_p.add_argument(
        "--lang", choices=["auto", "ir", "minilang"], default="auto",
        help="input language (auto-detected by default)",
    )
    tiles_p.set_defaults(func=cmd_tiles)

    alloc_p = sub.add_parser("allocate", help="run a register allocator")
    _add_io_args(alloc_p)
    alloc_p.add_argument(
        "--allocator", choices=sorted(ALLOCATORS), default="hierarchical"
    )
    alloc_p.add_argument("--registers", type=int, default=4)
    alloc_p.add_argument(
        "--profile-guided", action="store_true",
        help="profile on the given inputs first, then allocate "
        "(hierarchical only)",
    )
    alloc_p.add_argument(
        "--no-verify", action="store_true",
        help="skip the differential verification run",
    )
    alloc_p.add_argument(
        "--optimize", action="store_true",
        help="run the scalar/CFG optimization passes before allocation",
    )
    alloc_p.add_argument(
        "--profile", action="store_true",
        help="print per-stage time attribution for the allocation pipeline",
    )
    alloc_p.add_argument(
        "--max-fuel", type=int, default=None, metavar="N",
        help="deterministic fuel budget for the hierarchical allocator; "
        "exhaustion aborts with a classified error (default: unlimited)",
    )
    alloc_p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock backstop for the hierarchical allocator "
        "(default: none)",
    )
    alloc_p.set_defaults(func=cmd_allocate)

    trace_p = sub.add_parser(
        "trace",
        help="trace a hierarchical allocation and print the per-tile "
        "decision report",
    )
    trace_p.add_argument("file", help="IR or MiniLang file (or - for stdin)")
    trace_p.add_argument(
        "--lang", choices=["auto", "ir", "minilang"], default="auto",
        help="input language (auto-detected by default)",
    )
    trace_p.add_argument("--registers", type=int, default=4)
    trace_p.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="run the dependency-driven parallel scheduler with N workers "
        "(0 = sequential); the chrome trace shows one row per worker",
    )
    trace_p.add_argument(
        "--jsonl", metavar="PATH",
        help="also write the raw event stream as JSON Lines",
    )
    trace_p.add_argument(
        "--chrome", metavar="PATH",
        help="also write stage/tile timings in Chrome trace-event format "
        "(open in chrome://tracing or Perfetto)",
    )
    trace_p.add_argument(
        "--timings", action="store_true",
        help="append a stage/worker timing summary to the report",
    )
    trace_p.set_defaults(func=cmd_trace)

    batch_p = sub.add_parser(
        "batch",
        help="allocate a directory of functions through the batch engine "
        "(process pool + content-addressed allocation cache)",
    )
    batch_p.add_argument("dir", help="directory of .ir / .ml files")
    batch_p.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes for cache misses (0 = allocate in-process)",
    )
    batch_p.add_argument(
        "--cache", metavar="DIR", default=None,
        help="persistent cache directory (implies --policy disk)",
    )
    batch_p.add_argument(
        "--policy", choices=["memory", "disk", "off"], default="memory",
        help="cache policy (default: in-memory LRU; 'disk' needs --cache)",
    )
    batch_p.add_argument("--registers", type=int, default=8)
    batch_p.add_argument(
        "--arg", action="append", default=[], metavar="NAME=INT",
        help="scalar argument attached to every function (repeatable)",
    )
    batch_p.add_argument(
        "--array", action="append", default=[], metavar="NAME=V1,V2,...",
        help="array input attached to every function (repeatable)",
    )
    batch_p.add_argument(
        "--no-simulate", action="store_true",
        help="skip the simulator even when inputs are given "
        "(static allocation only)",
    )
    batch_p.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="bounded retries per task for transient failures "
        "(crashed/hung workers; default: 2)",
    )
    batch_p.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock budget for pooled tasks; a stuck task "
        "fails transiently and the pool is restarted (default: none)",
    )
    batch_p.add_argument(
        "--on-error", choices=["fail", "skip", "degrade"],
        default="degrade",
        help="final-failure policy: 'degrade' (default) retries with the "
        "chaitin then naive fallback allocators, 'skip' records a "
        "structured failure, 'fail' aborts the run",
    )
    batch_p.add_argument(
        "--tile-cache", action="store_true",
        help="attach per-process tile memoization stores: re-submissions "
        "of edited functions reuse clean subtrees and recompute only "
        "dirty tiles (bit-identical output)",
    )
    batch_p.add_argument(
        "--tile-cache-entries", type=int, default=4096, metavar="N",
        help="LRU capacity of each per-process tile store (default: 4096)",
    )
    batch_p.add_argument(
        "--max-fuel", type=int, default=None, metavar="N",
        help="deterministic fuel budget per hierarchical allocation; "
        "exhausted functions degrade through the fallback ladder "
        "(default: unlimited)",
    )
    batch_p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock backstop per hierarchical allocation; a blown "
        "deadline is transient and retried (default: none)",
    )
    batch_p.add_argument(
        "--admission-limit", type=int, default=None, metavar="COST",
        help="reject functions whose estimated cost (blocks + instrs * "
        "(1 + vars)) exceeds COST before allocating; rejected functions "
        "go straight to the fallback ladder (default: admit everything)",
    )
    batch_p.add_argument(
        "--stats", action="store_true",
        help="print cache hit/miss/eviction counts and functions/sec",
    )
    batch_p.add_argument(
        "--profile", action="store_true",
        help="print per-stage time attribution summed across the module",
    )
    batch_p.add_argument(
        "--jsonl", metavar="PATH",
        help="write CacheHit/CacheMiss/BatchTask events as JSON Lines",
    )
    batch_p.add_argument(
        "--chrome", metavar="PATH",
        help="write the per-worker batch timeline in Chrome trace-event "
        "format",
    )
    batch_p.set_defaults(func=cmd_batch)

    serve_p = sub.add_parser(
        "serve",
        help="run the batch engine as an HTTP/JSON allocation service "
        "(shared cache, cross-request coalescing, bounded-queue "
        "backpressure)",
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: loopback)",
    )
    serve_p.add_argument(
        "--port", type=int, default=8421,
        help="TCP port (0 picks a free ephemeral port; default: 8421)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="engine worker processes for cache misses "
        "(0 = allocate in-process)",
    )
    serve_p.add_argument(
        "--cache", metavar="DIR", default=None,
        help="persistent cache directory (implies --policy disk)",
    )
    serve_p.add_argument(
        "--policy", choices=["memory", "disk", "off"], default="memory",
        help="cache policy (default: in-memory LRU; 'disk' needs --cache)",
    )
    serve_p.add_argument("--registers", type=int, default=8)
    serve_p.add_argument(
        "--no-simulate", action="store_true",
        help="static allocation only: skip the simulator, ignore "
        "submitted args/arrays for cache keying",
    )
    serve_p.add_argument(
        "--queue-limit", type=int, default=1024, metavar="N",
        help="max pending allocations before /allocate answers 429 "
        "(default: 1024)",
    )
    serve_p.add_argument(
        "--max-batch", type=int, default=64, metavar="N",
        help="max distinct allocations per engine dispatch round "
        "(default: 64)",
    )
    serve_p.add_argument(
        "--max-functions", type=int, default=256, metavar="N",
        help="max functions in one /allocate request (default: 256)",
    )
    serve_p.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="graceful-shutdown budget for queued + in-flight work "
        "(default: 30)",
    )
    serve_p.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="bounded retries per task for transient failures (default: 2)",
    )
    serve_p.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock budget for pooled tasks (default: none)",
    )
    serve_p.add_argument(
        "--on-error", choices=["fail", "skip", "degrade"],
        default="degrade",
        help="engine final-failure policy (default: degrade through the "
        "chaitin/naive fallback ladder); 'fail' is translated to "
        "per-function failure results, never a dead service",
    )
    serve_p.add_argument(
        "--no-tile-cache", action="store_true",
        help="disable the per-process tile memoization stores (on by "
        "default for the service: edit-resubmit round-trips reuse "
        "clean subtrees across requests)",
    )
    serve_p.add_argument(
        "--tile-cache-entries", type=int, default=4096, metavar="N",
        help="LRU capacity of each per-process tile store (default: 4096)",
    )
    serve_p.add_argument(
        "--max-fuel", type=int, default=None, metavar="N",
        help="deterministic fuel budget per hierarchical allocation "
        "(default: unlimited)",
    )
    serve_p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock backstop per hierarchical allocation "
        "(default: none)",
    )
    serve_p.add_argument(
        "--admission-limit", type=int, default=None, metavar="COST",
        help="answer 413 for requests containing functions whose "
        "estimated cost exceeds COST (default: admit everything)",
    )
    serve_p.add_argument(
        "--jsonl", metavar="PATH",
        help="write ServiceRequest + engine events as JSON Lines",
    )
    serve_p.set_defaults(func=cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
