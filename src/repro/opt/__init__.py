"""Classic pre-allocation optimization passes.

The paper's allocator sits in an optimizing compiler ("aggressive loop
unrolling and operation scheduling are required, both of which increase
register pressure").  This package provides the standard scalar cleanups a
front end like MiniLang needs before allocation:

* :func:`constant_fold` -- evaluate constant expressions, propagate
  constants within extended basic blocks.
* :func:`copy_propagate` -- replace uses of copies by their sources within
  basic blocks.
* :func:`dead_code_eliminate` -- drop instructions whose results are never
  used (liveness-based, effect-free only).
* :func:`simplify_cfg` -- merge straight-line block chains and drop empty
  pass-through blocks.
* :func:`optimize` -- run all of the above to a fixed point.
"""

from repro.opt.passes import (
    constant_fold,
    copy_propagate,
    dead_code_eliminate,
    optimize,
    simplify_cfg,
)

__all__ = [
    "constant_fold",
    "copy_propagate",
    "dead_code_eliminate",
    "simplify_cfg",
    "optimize",
]
