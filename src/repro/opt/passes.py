"""Scalar and CFG optimization passes.

All passes are *functional*: they take a function, work on a clone, and
return ``(new_fn, changed)``.  They preserve observable behaviour (returned
values, final array state) -- property-tested in ``tests/test_opt.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.liveness import compute_liveness
from repro.ir.function import Function
from repro.ir.instructions import (
    BINARY_OPS,
    Instr,
    Opcode,
    UNARY_OPS,
    eval_binary,
    eval_unary,
)

#: Opcodes that may be deleted when their results are dead: no memory
#: writes, no control effects.  LOAD/SPILL_LD are included -- the toy
#: memory model has no traps or volatile locations.
_EFFECT_FREE = (
    frozenset(BINARY_OPS)
    | frozenset(UNARY_OPS)
    | {Opcode.CONST, Opcode.COPY, Opcode.MOVE, Opcode.LOAD, Opcode.SPILL_LD}
)


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------
def constant_fold(fn: Function) -> Tuple[Function, bool]:
    """Fold constant expressions and branches (block-local propagation).

    Within each block, definitions by ``CONST`` feed later operands; fully
    constant arithmetic collapses to ``CONST``; a ``CBR`` whose condition is
    a known constant becomes an unconditional edge (unreachable blocks are
    then dropped).
    """
    out = fn.clone()
    changed = False
    for block in out.blocks.values():
        consts: Dict[str, object] = {}
        new_instrs: List[Instr] = []
        for instr in block.instrs:
            op = instr.op
            folded: Optional[Instr] = None
            if op in BINARY_OPS and all(u in consts for u in instr.uses):
                value = eval_binary(
                    op, consts[instr.uses[0]], consts[instr.uses[1]]
                )
                folded = Instr(Opcode.CONST, defs=instr.defs, imm=value)
            elif op in UNARY_OPS and instr.uses[0] in consts:
                value = eval_unary(op, consts[instr.uses[0]])
                folded = Instr(Opcode.CONST, defs=instr.defs, imm=value)
            elif op in (Opcode.COPY, Opcode.MOVE) and instr.uses[0] in consts:
                folded = Instr(
                    Opcode.CONST, defs=instr.defs, imm=consts[instr.uses[0]]
                )
            elif op is Opcode.CBR and instr.uses[0] in consts:
                taken = 0 if consts[instr.uses[0]] else 1
                block.succ_labels = [block.succ_labels[taken]]
                out.invalidate_caches()
                folded = Instr(Opcode.BR)

            if folded is not None:
                changed = True
                instr = folded

            # Update the constant environment.
            if instr.op is Opcode.CONST:
                consts[instr.defs[0]] = instr.imm
            else:
                for var in instr.defs:
                    consts.pop(var, None)
            new_instrs.append(instr)
        block.instrs = new_instrs

    if changed:
        dropped = _drop_unreachable(out)
        changed = True
    return out, changed


def _drop_unreachable(fn: Function) -> int:
    """Delete blocks unreachable from start (the stop block is kept -- a
    function whose stop became unreachable would not validate, and no
    terminating program folds that way)."""
    reachable = fn.reachable()
    doomed = [
        label
        for label in list(fn.blocks)
        if label not in reachable and label != fn.stop_label
    ]
    for label in doomed:
        del fn.blocks[label]
    if doomed:
        fn.invalidate_caches()
    return len(doomed)


# ---------------------------------------------------------------------------
# copy propagation
# ---------------------------------------------------------------------------
def copy_propagate(fn: Function) -> Tuple[Function, bool]:
    """Within each block, replace uses of copy destinations by the copied
    source while both stay unmodified."""
    out = fn.clone()
    changed = False
    for block in out.blocks.values():
        available: Dict[str, str] = {}  # copy dst -> original src
        new_instrs: List[Instr] = []
        for instr in block.instrs:
            if any(u in available for u in instr.uses):
                instr = instr.clone()
                instr.uses = tuple(available.get(u, u) for u in instr.uses)
                changed = True
            for var in instr.defs:
                available.pop(var, None)
                for dst in [d for d, s in available.items() if s == var]:
                    available.pop(dst)
            if (
                instr.op in (Opcode.COPY, Opcode.MOVE)
                and instr.defs
                and instr.uses
                and instr.defs[0] != instr.uses[0]
            ):
                available[instr.defs[0]] = instr.uses[0]
            new_instrs.append(instr)
        block.instrs = new_instrs
    return out, changed


# ---------------------------------------------------------------------------
# dead code elimination
# ---------------------------------------------------------------------------
def dead_code_eliminate(fn: Function, max_rounds: int = 10) -> Tuple[Function, bool]:
    """Remove effect-free instructions whose definitions are all dead."""
    out = fn.clone()
    changed_any = False
    for _ in range(max_rounds):
        liveness = compute_liveness(out)
        changed = False
        for label, block in out.blocks.items():
            live: Set[str] = set(liveness.live_out[label])
            kept_reversed: List[Instr] = []
            for instr in reversed(block.instrs):
                removable = (
                    instr.op in _EFFECT_FREE
                    and instr.defs
                    and not any(d in live for d in instr.defs)
                )
                if removable:
                    changed = True
                    continue
                live.difference_update(instr.defs)
                live.update(instr.uses)
                kept_reversed.append(instr)
            block.instrs = list(reversed(kept_reversed))
        if not changed:
            break
        changed_any = True
    return out, changed_any


# ---------------------------------------------------------------------------
# CFG simplification
# ---------------------------------------------------------------------------
def simplify_cfg(fn: Function) -> Tuple[Function, bool]:
    """Merge straight-line chains and drop empty pass-through blocks."""
    out = fn.clone()
    changed = False

    # Merge b -> c where b is c's unique predecessor and c is b's unique
    # successor.
    merged = True
    while merged:
        merged = False
        preds = out.predecessors_map()
        for label in list(out.blocks):
            block = out.blocks.get(label)
            if block is None or len(block.succ_labels) != 1:
                continue
            succ = block.succ_labels[0]
            if (
                succ == label
                or succ == out.stop_label
                or succ == out.start_label
                or len(preds[succ]) != 1
            ):
                continue
            successor = out.blocks[succ]
            if block.terminator is not None and block.terminator.op is Opcode.BR:
                block.instrs = block.instrs[:-1]
            elif block.terminator is not None:
                continue  # CBR with one successor should not occur
            block.instrs.extend(successor.instrs)
            block.succ_labels = list(successor.succ_labels)
            del out.blocks[succ]
            out.invalidate_caches()
            changed = True
            merged = True
            break

    # Drop empty pass-through blocks.
    for label in list(out.blocks):
        block = out.blocks.get(label)
        if (
            block is not None
            and label not in (out.start_label, out.stop_label)
            and block.is_empty()
            and len(block.succ_labels) == 1
            and block.succ_labels[0] != label
        ):
            out.remove_empty_block(label)
            changed = True

    return out, changed


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------
def optimize(fn: Function, max_rounds: int = 8) -> Function:
    """Run all passes to a fixed point."""
    current = fn
    for _ in range(max_rounds):
        round_changed = False
        for pass_fn in (constant_fold, copy_propagate, dead_code_eliminate,
                        simplify_cfg):
            current, changed = pass_fn(current)
            round_changed = round_changed or changed
        if not round_changed:
            return current
    return current
