"""Minimal HTTP/1.1 over ``asyncio`` streams.

The allocation service speaks a deliberately small slice of HTTP --
request line + headers + ``Content-Length`` bodies in, fixed-length or
chunked responses out, keep-alive by default -- implemented directly on
``asyncio.StreamReader``/``StreamWriter``.  No framework, no thread-per-
connection ``http.server``: the service's concurrency model is one event
loop multiplexing thousands of sockets while a single engine thread does
the CPU work, and the protocol layer must not get in the way of that.

Both sides live here so the server, the client (:mod:`.client`), the
tests and the load bench all parse bytes with the same code:

* :func:`read_request` / :func:`response_bytes` -- server side;
* :func:`request_bytes` / :func:`read_response` -- client side (handles
  ``Content-Length`` and ``chunked`` bodies, which is how streaming
  ``/allocate`` responses arrive);
* :class:`ChunkedWriter` -- incremental chunked response bodies.

Protocol violations raise :class:`ProtocolError` carrying the HTTP
status the server should answer with (400 malformed, 413 too large, 505
bad version); the server maps it to a structured JSON error body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

import asyncio

#: Upper bounds that keep one misbehaving client from holding the loop.
MAX_REQUEST_LINE = 8192
MAX_HEADER_LINE = 8192
MAX_HEADERS = 128

#: StreamReader limit for connections (must exceed the header bounds).
READ_LIMIT = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    505: "HTTP Version Not Supported",
}


class ProtocolError(Exception):
    """A malformed or oversized request; ``status`` is the HTTP answer.

    ``discard`` is how many request-body bytes are still unread on the
    connection: an over-limit body (413) fails before the body is read,
    and the server drains (a bounded amount of) it before responding so
    the client reliably sees the error instead of a connection reset.
    """

    def __init__(self, status: int, message: str, discard: int = 0) -> None:
        super().__init__(message)
        self.status = status
        self.discard = discard


@dataclass
class Request:
    """One parsed request.  ``query`` keeps the last value per key."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes
    version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


@dataclass
class Response:
    """One parsed response (client side)."""

    status: int
    headers: Dict[str, str]
    body: bytes
    chunks: Tuple[bytes, ...] = field(default_factory=tuple)

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    line = await reader.readline()
    if len(line) > limit:
        raise ProtocolError(400, "header line too long")
    return line


async def _read_headers(reader: asyncio.StreamReader) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader, MAX_HEADER_LINE)
        if line in (b"\r\n", b"\n", b""):
            return headers
        if len(headers) >= MAX_HEADERS:
            raise ProtocolError(400, "too many headers")
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise ProtocolError(400, "undecodable header")
        if not _:
            raise ProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()


async def read_request(
    reader: asyncio.StreamReader, max_body: int
) -> Optional[Request]:
    """Parse one request off *reader*; ``None`` on a clean EOF (the
    client closed a keep-alive connection between requests)."""
    line = await _read_line(reader, MAX_REQUEST_LINE)
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ProtocolError(400, f"malformed request line {line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(505, f"unsupported version {version}")
    headers = await _read_headers(reader)
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(400, f"bad Content-Length {length_text!r}")
    if length < 0:
        raise ProtocolError(400, "negative Content-Length")
    if length > max_body:
        raise ProtocolError(
            413, f"body of {length} bytes exceeds limit of {max_body}",
            discard=length,
        )
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method.upper(),
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
        version=version,
    )


def _header_block(
    status: int,
    headers: Mapping[str, str],
    keep_alive: bool,
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    lines.append(
        "Connection: " + ("keep-alive" if keep_alive else "close")
    )
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[Mapping[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """A complete fixed-length response."""
    headers: Dict[str, str] = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
    }
    if extra_headers:
        headers.update(extra_headers)
    return _header_block(status, headers, keep_alive) + body


class ChunkedWriter:
    """Incremental ``Transfer-Encoding: chunked`` response body.

    Used by the streaming ``/allocate`` path: one chunk per per-function
    result line, written (and drained) as each allocation completes, so a
    client sees results before the whole module is done.
    """

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        status: int = 200,
        content_type: str = "application/x-ndjson",
        extra_headers: Optional[Mapping[str, str]] = None,
        keep_alive: bool = True,
    ) -> None:
        self._writer = writer
        headers: Dict[str, str] = {
            "Content-Type": content_type,
            "Transfer-Encoding": "chunked",
        }
        if extra_headers:
            headers.update(extra_headers)
        writer.write(_header_block(status, headers, keep_alive))

    async def write_chunk(self, data: bytes) -> None:
        if not data:
            return
        self._writer.write(f"{len(data):x}\r\n".encode("latin-1"))
        self._writer.write(data)
        self._writer.write(b"\r\n")
        await self._writer.drain()

    async def finish(self) -> None:
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()


# ----------------------------------------------------------------------
# client side
# ----------------------------------------------------------------------
def request_bytes(
    method: str,
    path: str,
    host: str,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """A complete request (always offers keep-alive)."""
    headers: Dict[str, str] = {
        "Host": host,
        "Content-Length": str(len(body)),
    }
    if body:
        headers["Content-Type"] = content_type
    if extra_headers:
        headers.update(extra_headers)
    lines = [f"{method} {path} HTTP/1.1"]
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def _read_chunked(reader: asyncio.StreamReader) -> Tuple[bytes, ...]:
    chunks = []
    while True:
        size_line = await _read_line(reader, MAX_HEADER_LINE)
        if not size_line:
            raise ProtocolError(400, "truncated chunked body")
        try:
            size = int(size_line.strip().split(b";")[0], 16)
        except ValueError:
            raise ProtocolError(400, f"bad chunk size {size_line!r}")
        if size == 0:
            await _read_line(reader, MAX_HEADER_LINE)  # trailing CRLF
            return tuple(chunks)
        chunks.append(await reader.readexactly(size))
        await reader.readexactly(2)  # chunk CRLF


async def read_response(reader: asyncio.StreamReader) -> Response:
    """Parse one response off *reader* (fixed-length or chunked).

    For chunked responses ``chunks`` preserves the server's chunk
    boundaries (the streaming protocol is one NDJSON line per chunk) and
    ``body`` is their concatenation.
    """
    line = await _read_line(reader, MAX_REQUEST_LINE)
    if not line:
        raise ProtocolError(400, "connection closed before status line")
    parts = line.decode("latin-1").strip().split(maxsplit=2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ProtocolError(400, f"malformed status line {line!r}")
    status = int(parts[1])
    headers = await _read_headers(reader)
    if headers.get("transfer-encoding", "").lower() == "chunked":
        chunks = await _read_chunked(reader)
        return Response(status, headers, b"".join(chunks), chunks)
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return Response(status, headers, body)
