"""Configuration for the allocation service.

:class:`ServiceConfig` composes a :class:`~repro.core.config.BatchConfig`
(what one engine does) with the service-only knobs (how many requests may
wait, how large a body may be, how long a drain may take).  Like the
batch knobs, nothing here changes what the allocator decides for any
single function -- the determinism gate's ``--service`` mode proves
served results are bit-identical to direct allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import BatchConfig


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for :class:`~repro.service.server.AllocationService`.

    Attributes:
        host: interface to bind (loopback by default; the service speaks
            plaintext HTTP and authenticates nobody).
        port: TCP port; ``0`` picks a free ephemeral port (the bound port
            is on ``AllocationService.port`` after start -- what the
            tests, the docs blocks and the bench use).
        queue_limit: maximum *pending* distinct allocations (enqueued,
            not yet handed to the engine).  A request whose new work
            would push the queue past this is rejected whole with
            ``429`` + ``Retry-After`` and enqueues nothing -- admission
            is all-or-nothing, so a rejected request never half-warms
            the cache.  Coalesced work (attached to an in-flight
            computation) occupies no queue slot.
        max_batch: upper bound on distinct allocations handed to the
            engine per dispatch round.  While a round runs, arrivals
            accumulate into the next round (micro-batching): the engine
            sees modules, not single functions, so its own per-batch
            miss dedup and process pool stay effective.
        max_body_bytes: request-body cap; larger submissions get ``413``.
        max_functions: per-request cap on submitted functions.
        drain_timeout_s: how long a graceful shutdown waits for queued +
            in-flight work before giving up (pending futures then fail
            with a ``shutdown`` error instead of hanging forever).
        retry_after_s: value of the ``Retry-After`` header on ``429``
            and ``503`` responses.
        batch: the engine configuration (worker processes, cache policy,
            retries, timeouts, degradation ladder -- see
            :class:`~repro.core.config.BatchConfig`).  The service adds
            no allocation semantics of its own.
    """

    host: str = "127.0.0.1"
    port: int = 0
    queue_limit: int = 1024
    max_batch: int = 64
    max_body_bytes: int = 8 * 1024 * 1024
    max_functions: int = 256
    drain_timeout_s: float = 30.0
    retry_after_s: int = 1
    batch: BatchConfig = field(default_factory=BatchConfig)

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        if self.max_functions < 1:
            raise ValueError(
                f"max_functions must be >= 1, got {self.max_functions}"
            )
        if self.drain_timeout_s <= 0:
            raise ValueError(
                f"drain_timeout_s must be > 0, got {self.drain_timeout_s}"
            )
        if self.retry_after_s < 0:
            raise ValueError(
                f"retry_after_s must be >= 0, got {self.retry_after_s}"
            )


#: Error classes the service can add on top of :mod:`repro.errors`
#: (engine-side failures keep their taxonomy classes unchanged).
SERVICE_ERROR_CLASSES = (
    "bad_request",   # malformed JSON / schema / unparseable function
    "unadmittable",  # admission control: estimated cost over limit, 413
    "overloaded",    # queue full: 429, retry after Retry-After seconds
    "draining",      # graceful shutdown in progress: 503
    "shutdown",      # drained past drain_timeout_s; work abandoned
    "not_found",     # unknown route: 404
    "method_not_allowed",  # known route, wrong verb: 405
    "protocol",      # HTTP-level violation: 400/413/505
    "internal",      # unexpected coordinator-side exception: 500
)


def describe_config(config: ServiceConfig) -> dict:
    """JSON-ready view of the effective configuration (``/healthz``)."""
    return {
        "queue_limit": config.queue_limit,
        "max_batch": config.max_batch,
        "max_functions": config.max_functions,
        "max_body_bytes": config.max_body_bytes,
        "drain_timeout_s": config.drain_timeout_s,
        "batch_workers": config.batch.batch_workers,
        "cache_policy": config.batch.cache_policy,
        "registers": config.batch.registers,
        "simulate": config.batch.simulate,
        "on_error": config.batch.on_error,
        "max_fuel": config.batch.max_fuel,
        "deadline_s": config.batch.deadline_s,
        "admission_limit": config.batch.admission_limit,
    }
