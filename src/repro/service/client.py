"""Async client for the allocation service.

:class:`ServiceClient` is what the tests, the determinism gate's
``--service`` mode and the load bench all use, so the service is always
exercised through real sockets and the same protocol code as any outside
caller.  It maintains a keep-alive connection pool: a request reuses an
idle connection when one exists, opens a fresh one otherwise, and --
because the server (or an idle timeout) may close a pooled connection
between requests -- transparently retries *once* on a reused connection
that dies before yielding a response.  Allocation submissions are safe
to retry: the engine is deterministic and content-addressed, so a
replay is at worst a cache hit.

``max_connections`` bounds concurrent sockets, not concurrent callers:
any number of coroutines may share one client.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.service.http import (
    READ_LIMIT,
    ProtocolError,
    Response,
    read_response,
    request_bytes,
)

__all__ = ["ServiceClient", "ServiceReply"]


class _Connection:
    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
        reused: bool,
    ) -> None:
        self.reader = reader
        self.writer = writer
        #: True when popped from the idle pool -- the retry-once rule
        #: applies only to these (a fresh connection that dies is a real
        #: error, not a stale keep-alive race).
        self.reused = reused

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:  # noqa: BLE001 -- closing a dead socket is fine
            pass


class ServiceReply:
    """Status + parsed JSON payload(s) of one request.

    ``data`` is the parsed body for fixed-length responses and ``None``
    for streamed ones; ``lines`` is the parsed NDJSON sequence for
    streamed responses (one dict per chunk, final ``{"done": ...}``
    summary included) and ``()`` otherwise.  ``headers`` keeps the raw
    response headers (lower-cased names) -- ``Retry-After`` on 429/503
    lives there.
    """

    def __init__(
        self,
        status: int,
        data: Optional[dict],
        lines: Tuple[dict, ...] = (),
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.status = status
        self.data = data
        self.lines = lines
        self.headers = headers or {}

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServiceReply(status={self.status}, data={self.data!r})"


class ServiceClient:
    def __init__(
        self, host: str, port: int, max_connections: int = 128
    ) -> None:
        self.host = host
        self.port = port
        self._idle: List[_Connection] = []
        self._sem = asyncio.Semaphore(max_connections)
        self._closed = False

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def close(self) -> None:
        self._closed = True
        for conn in self._idle:
            conn.close()
        self._idle.clear()

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    async def _acquire(self) -> _Connection:
        while self._idle:
            conn = self._idle.pop()
            if not conn.writer.is_closing():
                conn.reused = True
                return conn
            conn.close()
        reader, writer = await asyncio.open_connection(
            self.host, self.port, limit=READ_LIMIT
        )
        return _Connection(reader, writer, reused=False)

    def _release(self, conn: _Connection, response: Response) -> None:
        if self._closed or not response.keep_alive:
            conn.close()
        else:
            self._idle.append(conn)

    async def _roundtrip(self, data: bytes) -> Response:
        if self._closed:
            raise RuntimeError("client is closed")
        async with self._sem:
            for attempt in (0, 1):
                conn = await self._acquire()
                try:
                    conn.writer.write(data)
                    await conn.writer.drain()
                    response = await read_response(conn.reader)
                except (
                    ConnectionError,
                    asyncio.IncompleteReadError,
                    ProtocolError,
                    OSError,
                ):
                    conn.close()
                    if attempt or not conn.reused:
                        raise
                    continue  # stale keep-alive: retry on a fresh socket
                self._release(conn, response)
                return response
        raise AssertionError("unreachable")

    async def request(
        self,
        method: str,
        path: str,
        body_obj: Optional[object] = None,
    ) -> ServiceReply:
        body = (
            json.dumps(body_obj).encode("utf-8")
            if body_obj is not None else b""
        )
        response = await self._roundtrip(request_bytes(
            method, path, host=f"{self.host}:{self.port}", body=body,
        ))
        if response.chunks:
            lines = tuple(
                json.loads(chunk) for chunk in response.chunks if chunk.strip()
            )
            return ServiceReply(
                response.status, None, lines, headers=response.headers
            )
        data = json.loads(response.body) if response.body else None
        return ServiceReply(response.status, data, headers=response.headers)

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    async def allocate(
        self,
        functions: Sequence[Dict[str, object]],
        stream: bool = False,
        include_text: bool = False,
    ) -> ServiceReply:
        """``POST /allocate``.

        *functions* is the wire schema directly: dicts with ``text`` and
        optional ``name`` / ``lang`` / ``args`` / ``arrays``.
        """
        params = []
        if stream:
            params.append("stream=1")
        if include_text:
            params.append("text=1")
        path = "/allocate" + ("?" + "&".join(params) if params else "")
        return await self.request(
            "POST", path, body_obj={"functions": list(functions)}
        )

    async def allocate_text(
        self, text: str, name: Optional[str] = None, **spec: object
    ) -> ServiceReply:
        """Single-function convenience wrapper over :meth:`allocate`."""
        fn_spec: Dict[str, object] = {"text": text, **spec}
        if name is not None:
            fn_spec["name"] = name
        return await self.allocate([fn_spec])

    async def metrics(self) -> ServiceReply:
        return await self.request("GET", "/metrics")

    async def healthz(self) -> ServiceReply:
        return await self.request("GET", "/healthz")
