"""Allocation-as-a-service: an asyncio front-end on the batch engine.

One :class:`AllocationService` owns one :class:`~repro.batch.BatchEngine`
and serves it over HTTP/JSON to any number of concurrent clients:

* ``POST /allocate`` -- submit a module (one or more functions as IR or
  MiniLang text, optionally with simulator inputs); results come back as
  one JSON document, or -- with ``?stream=1`` -- as NDJSON lines written
  per function as each allocation completes;
* ``GET /metrics`` -- the engine's :class:`~repro.batch.engine.BatchStats`
  plus service counters and per-endpoint latency histograms;
* ``GET /healthz`` -- pool liveness, queue depth, degradation-ladder
  state, and the effective configuration.

Core mechanics, in the order a request meets them:

1. **Parsing** happens on the event loop and is fault-isolated per
   function: a malformed body yields a classified ``400`` (error classes
   from :func:`repro.errors.classify_exception`), never a ``500``, and
   never touches the engine.
2. **Coalescing** -- every function is keyed by the engine's own cache
   key (:meth:`~repro.batch.engine.BatchEngine.entry_for`, so key parity
   with the engine is structural).  A key already in flight for *any*
   client attaches to that computation's future instead of enqueueing
   new work: the engine's per-batch miss dedup, lifted to cross-request
   scope.  Engine misses therefore equal distinct cache keys no matter
   how many clients race.
3. **Backpressure** -- admission is all-or-nothing against a bounded
   pending queue: a request whose *new* (non-coalesced) work does not
   fit returns ``429`` with ``Retry-After`` and enqueues nothing.
4. **Dispatch** -- a single dispatcher coroutine drains the queue into
   micro-batches (``max_batch``) and runs them through the engine on a
   dedicated single engine thread (the engine is not thread-safe; its
   own process pool provides the compute parallelism).  While a batch
   runs, new arrivals accumulate into the next batch.
5. **Resilience** is the engine's (PR 5): retries, per-task timeouts,
   pool restarts and the chaitin->naive degradation ladder all happen
   below the service; a function's final failure surfaces as a
   structured per-function error object in an otherwise-200 response.
   HTTP status codes describe the *request*, per-function ``ok`` the
   allocation.
6. **Graceful shutdown** drains: new ``/allocate`` requests get ``503``
   while queued and in-flight work completes and every already-accepted
   request receives its response; only after ``drain_timeout_s`` are
   leftover futures failed with error class ``"shutdown"``.

Determinism: the service adds routing, never allocation semantics --
served records are bit-identical to direct ``allocate_module`` output
(``python -m repro.determinism check --service`` proves it across hash
seeds).
"""

from __future__ import annotations

import asyncio
import bisect
import json
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.batch.engine import BatchEngine, BatchResult
from repro.errors import TaskError, classify_exception, task_error_from_exception
from repro.ir.parser import parse_function
from repro.ir.validate import validate_function
from repro.service.config import ServiceConfig, describe_config
from repro.service.http import (
    ChunkedWriter,
    ProtocolError,
    Request,
    read_request,
    response_bytes,
)
from repro.trace.events import ServiceRequest
from repro.trace.tracer import NULL_TRACER, NullTracer

__all__ = [
    "AllocationService",
    "ServiceError",
    "load_function_source",
    "run_service",
]


class ServiceError(Exception):
    """A request-level failure with a definite HTTP answer.

    Raising one from a handler turns into ``status`` + a JSON body
    ``{"error_class", "message", ...detail}``; see
    :data:`repro.service.config.SERVICE_ERROR_CLASSES`.
    """

    def __init__(
        self,
        status: int,
        error_class: str,
        message: str,
        detail: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.error_class = error_class
        self.detail = detail or {}


def load_function_source(text: str, lang: str = "auto"):
    """Parse one function body (IR or MiniLang) and validate it.

    The same auto-detection as the CLI: textual IR headers carry
    ``start=<label>``, MiniLang never does.  Raises whatever the parser,
    compiler or validator raises -- callers classify via
    :func:`repro.errors.classify_exception`.
    """
    if lang not in ("auto", "ir", "minilang"):
        raise ValueError(f"unknown lang {lang!r}")
    if lang == "auto":
        first = next((ln for ln in text.splitlines() if ln.strip()), "")
        lang = "ir" if "start=" in first else "minilang"
    if lang == "minilang":
        from repro.minilang import compile_source

        fn = compile_source(text)
    else:
        fn = parse_function(text)
    validate_function(fn)
    return fn


class LatencyHistogram:
    """Log-bucketed request-latency accounting (O(1) memory).

    Buckets double from 0.25 ms; a percentile reports the upper bound of
    the bucket the target rank lands in (max observed for the last
    bucket), which is the usual operational trade: bounded error, no
    per-request storage.
    """

    #: Upper bounds in milliseconds: 0.25ms .. ~131s, then overflow.
    BOUNDS_MS = tuple(0.25 * (2 ** i) for i in range(20))

    def __init__(self) -> None:
        self.counts = [0] * (len(self.BOUNDS_MS) + 1)
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, seconds: float) -> None:
        ms = seconds * 1000.0
        self.counts[bisect.bisect_left(self.BOUNDS_MS, ms)] += 1
        self.count += 1
        self.sum_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms

    def quantile_ms(self, q: float) -> float:
        if self.count == 0:
            return 0.0
        target = max(1, int(q * self.count + 0.999999))
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target:
                if i < len(self.BOUNDS_MS):
                    return round(min(self.BOUNDS_MS[i], self.max_ms), 3)
                return round(self.max_ms, 3)
        return round(self.max_ms, 3)

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean_ms": round(self.sum_ms / self.count, 3) if self.count else 0.0,
            "p50_ms": self.quantile_ms(0.50),
            "p90_ms": self.quantile_ms(0.90),
            "p99_ms": self.quantile_ms(0.99),
            "max_ms": round(self.max_ms, 3),
        }


@dataclass
class _Entry:
    """One distinct cache key somewhere between admission and response.

    Every concurrent submission of the same key -- same request or not --
    shares this object; ``future`` resolves to the engine's
    :class:`~repro.batch.engine.BatchResult` exactly once.
    """

    key: str
    name: str
    fingerprint: str
    workload: object
    future: asyncio.Future = field(repr=False, default=None)


class AllocationService:
    """The server.  Use as an async context manager::

        async with AllocationService(ServiceConfig()) as service:
            ...  # service.port is bound

    or drive :func:`run_service` from a CLI.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        tracer: Optional[NullTracer] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.engine = BatchEngine(batch=self.config.batch, tracer=self.tracer)

        self._server: Optional[asyncio.AbstractServer] = None
        self._engine_exec: Optional[ThreadPoolExecutor] = None
        self._dispatcher_task: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()

        #: Admission state.  Invariants (all mutated only on the event
        #: loop, so they need no lock): ``len(_pending) <= queue_limit``
        #: always; every pending entry is also in ``_inflight``; an
        #: entry leaves ``_inflight`` in the same dispatcher step that
        #: resolves its future.
        self._pending: deque = deque()
        self._inflight: Dict[str, _Entry] = {}
        self._work = asyncio.Event()
        self._dispatch_gate = asyncio.Event()
        self._dispatch_gate.set()

        self._draining = False
        self._stopping = False
        self._drained = asyncio.Event()
        self._started_mono = time.monotonic()

        # counters
        self._requests: Dict[str, int] = {}
        self._responses: Dict[int, int] = {}
        self._latency: Dict[str, LatencyHistogram] = {}
        self._functions_total = 0
        self._coalesced_total = 0
        self._rejected_total = 0
        self._unadmitted_total = 0
        self._streamed_total = 0
        self._queue_peak = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "AllocationService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    @property
    def port(self) -> int:
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the socket and start the dispatcher."""
        if self._server is not None:
            return
        # One dedicated thread owns every engine call: the engine is not
        # thread-safe, and funneling work through a single thread (plus
        # the engine's own process pool) is the concurrency contract.
        self._engine_exec = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="alloc-engine"
        )
        self._started_mono = time.monotonic()
        self._dispatcher_task = asyncio.ensure_future(self._dispatcher())
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            backlog=2048,
        )

    async def shutdown(self) -> None:
        """Graceful shutdown: reject new allocations, drain accepted
        work, answer every in-flight request, then release the engine.
        Idempotent; concurrent callers all wait for the same drain."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        self._dispatch_gate.set()  # a paused dispatcher must still drain
        try:
            await asyncio.wait_for(
                self._drain_work(), timeout=self.config.drain_timeout_s
            )
        except asyncio.TimeoutError:
            self._abandon_pending()
        self._stopping = True
        self._work.set()
        if self._dispatcher_task is not None:
            await self._dispatcher_task
        # Give connection handlers a moment to flush final responses,
        # then close the listener and whatever connections remain.
        if self._conn_tasks:
            await asyncio.wait(
                list(self._conn_tasks), timeout=self.config.drain_timeout_s
            )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._engine_exec is not None:
            loop = asyncio.get_event_loop()
            await loop.run_in_executor(self._engine_exec, self.engine.close)
            self._engine_exec.shutdown(wait=True)
            self._engine_exec = None
        self._drained.set()

    async def _drain_work(self) -> None:
        while self._pending or self._inflight:
            await asyncio.sleep(0.005)

    def _abandon_pending(self) -> None:
        """Drain timed out: fail whatever is still unresolved."""
        error = TaskError(
            error_class="shutdown",
            message=(
                f"service shut down before this allocation completed "
                f"(drain_timeout_s={self.config.drain_timeout_s})"
            ),
            permanence="transient",
        )
        for entry in list(self._inflight.values()):
            if entry.future is not None and not entry.future.done():
                entry.future.set_result(BatchResult(
                    name=entry.name, fingerprint=entry.fingerprint,
                    record=None, cached=False, source="failed",
                    worker="none", duration=0.0, error=error,
                ))
        self._inflight.clear()
        self._pending.clear()

    # Test/drill hooks: freezing dispatch makes admission states (queue
    # growth, coalescing windows, 429s) deterministic to observe.
    def pause_dispatch(self) -> None:
        self._dispatch_gate.clear()

    def resume_dispatch(self) -> None:
        self._dispatch_gate.set()

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    async def _dispatcher(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            await self._work.wait()
            await self._dispatch_gate.wait()
            if self._stopping and not self._pending:
                return
            batch: List[_Entry] = []
            while self._pending and len(batch) < self.config.max_batch:
                batch.append(self._pending.popleft())
            if not self._pending and not self._stopping:
                self._work.clear()
            if not batch:
                if self._stopping:
                    return
                continue
            workloads = [entry.workload for entry in batch]
            try:
                module = await loop.run_in_executor(
                    self._engine_exec, self.engine.allocate_module, workloads
                )
            except Exception as exc:  # noqa: BLE001 -- every engine
                # failure must resolve the shared futures; coalesced
                # requests across many clients are waiting on them.
                error = task_error_from_exception(exc)
                for entry in batch:
                    self._inflight.pop(entry.key, None)
                    if not entry.future.done():
                        entry.future.set_result(BatchResult(
                            name=entry.name, fingerprint=entry.fingerprint,
                            record=None, cached=False, source="failed",
                            worker="engine", duration=0.0, error=error,
                        ))
            else:
                for entry, result in zip(batch, module.results):
                    self._inflight.pop(entry.key, None)
                    if not entry.future.done():
                        entry.future.set_result(result)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self.config.max_body_bytes
                    )
                except ProtocolError as exc:
                    if exc.discard:
                        # Drain (a bounded slice of) the rejected body so
                        # the error response lands before the close races
                        # a TCP reset against unread bytes.
                        try:
                            await reader.readexactly(
                                min(exc.discard, 256 * 1024)
                            )
                        except (
                            asyncio.IncompleteReadError, ConnectionError
                        ):
                            pass
                    self._count_response(exc.status)
                    writer.write(self._error_bytes(
                        exc.status, "protocol", str(exc), keep_alive=False,
                    ))
                    await writer.drain()
                    break
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    asyncio.LimitOverrunError,
                ):
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive
                try:
                    await self._dispatch_request(request, writer, keep_alive)
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not keep_alive:
                    break
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch_request(
        self, request: Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        endpoint = {
            "/allocate": "allocate",
            "/metrics": "metrics",
            "/healthz": "healthz",
        }.get(request.path, "other")
        self._requests[endpoint] = self._requests.get(endpoint, 0) + 1
        start = time.monotonic()
        status = 500
        functions = 0
        coalesced = 0
        try:
            if endpoint == "allocate":
                if request.method != "POST":
                    raise ServiceError(
                        405, "method_not_allowed",
                        "use POST for /allocate",
                    )
                status, functions, coalesced = await self._handle_allocate(
                    request, writer, keep_alive
                )
            elif endpoint in ("metrics", "healthz"):
                if request.method != "GET":
                    raise ServiceError(
                        405, "method_not_allowed",
                        f"use GET for /{endpoint}",
                    )
                payload = (
                    self.metrics_payload() if endpoint == "metrics"
                    else self.healthz_payload()
                )
                status = 200
                writer.write(response_bytes(
                    200, _json_bytes(payload), keep_alive=keep_alive,
                ))
                await writer.drain()
            else:
                raise ServiceError(
                    404, "not_found", f"no route for {request.path!r}"
                )
        except ServiceError as exc:
            status = exc.status
            writer.write(self._error_bytes(
                exc.status, exc.error_class, str(exc),
                detail=exc.detail, keep_alive=keep_alive,
            ))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            raise
        except Exception as exc:  # noqa: BLE001 -- one handler bug must
            # answer 500, not kill the connection loop silently.
            status = 500
            error_class, _ = classify_exception(exc)
            writer.write(self._error_bytes(
                500, "internal", f"[{error_class}] {exc}",
                keep_alive=keep_alive,
            ))
            await writer.drain()
        finally:
            duration = time.monotonic() - start
            self._count_response(status)
            self._latency.setdefault(
                endpoint, LatencyHistogram()
            ).observe(duration)
            if self.tracer.enabled:
                self.tracer.emit(ServiceRequest(
                    endpoint=endpoint, method=request.method, status=status,
                    functions=functions, coalesced=coalesced,
                    duration_ms=round(duration * 1000.0, 3),
                ))

    def _count_response(self, status: int) -> None:
        self._responses[status] = self._responses.get(status, 0) + 1

    def _error_bytes(
        self,
        status: int,
        error_class: str,
        message: str,
        detail: Optional[Dict[str, object]] = None,
        keep_alive: bool = True,
    ) -> bytes:
        body: Dict[str, object] = {
            "error_class": error_class, "message": message,
        }
        if detail:
            body.update(detail)
        extra: Dict[str, str] = {}
        if status in (429, 503):
            extra["Retry-After"] = str(self.config.retry_after_s)
        return response_bytes(
            status, _json_bytes(body), extra_headers=extra or None,
            keep_alive=keep_alive,
        )

    # ------------------------------------------------------------------
    # /allocate
    # ------------------------------------------------------------------
    async def _handle_allocate(
        self, request: Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> Tuple[int, int, int]:
        """Returns ``(status, functions, coalesced)`` for accounting."""
        parsed = self._parse_allocate_body(request.body)
        self._check_admission(parsed)
        if self._draining:
            raise ServiceError(
                503, "draining", "service is shutting down; resubmit "
                "to another instance or retry after restart",
            )
        slots = self._admit(parsed)
        functions = len(slots)
        coalesced = sum(1 for _, _, was_inflight in slots if was_inflight)
        self._functions_total += functions
        self._coalesced_total += coalesced
        include_text = _truthy(request.query.get("text"))
        stream = _truthy(request.query.get("stream"))
        if stream:
            self._streamed_total += 1
            chunked = ChunkedWriter(writer, keep_alive=keep_alive)
            for index, (name, entry, was_inflight) in enumerate(slots):
                result = await entry.future
                payload = self._result_payload(
                    name, entry, was_inflight, result, include_text
                )
                payload["index"] = index
                await chunked.write_chunk(_json_bytes(payload) + b"\n")
            await chunked.write_chunk(_json_bytes({
                "done": functions, "coalesced": coalesced,
            }) + b"\n")
            await chunked.finish()
            return 200, functions, coalesced
        results = []
        for name, entry, was_inflight in slots:
            result = await entry.future
            results.append(self._result_payload(
                name, entry, was_inflight, result, include_text
            ))
        body = _json_bytes({
            "results": results,
            "functions": functions,
            "coalesced": coalesced,
        })
        writer.write(response_bytes(200, body, keep_alive=keep_alive))
        await writer.drain()
        return 200, functions, coalesced

    def _parse_allocate_body(self, body: bytes) -> List[Tuple[str, object]]:
        """``[(display_name, workload)]`` or a classified 400.

        Per-function parse/compile/validate failures are collected into
        one ``errors`` list (index, stage, taxonomy class) and fail the
        whole request -- allocation of a partially-understood module
        would not be a deterministic function of the submission.
        """
        from repro.pipeline import Workload

        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                400, "bad_request", f"body is not valid JSON: {exc}"
            )
        if not isinstance(doc, dict) or not isinstance(
            doc.get("functions"), list
        ):
            raise ServiceError(
                400, "bad_request",
                'body must be {"functions": [{"text": ...}, ...]}',
            )
        functions = doc["functions"]
        if not functions:
            raise ServiceError(400, "bad_request", "empty function list")
        if len(functions) > self.config.max_functions:
            raise ServiceError(
                400, "bad_request",
                f"{len(functions)} functions exceeds max_functions="
                f"{self.config.max_functions}",
            )
        out: List[Tuple[str, object]] = []
        errors: List[Dict[str, object]] = []
        for index, spec in enumerate(functions):
            try:
                name, workload = self._build_workload(spec, Workload)
            except ServiceError as exc:
                errors.append({
                    "index": index, "stage": "schema",
                    "error_class": exc.error_class, "message": str(exc),
                })
            except Exception as exc:  # noqa: BLE001 -- parser/compiler/
                # validator failures become classified 400 detail.
                error_class, _ = classify_exception(exc)
                errors.append({
                    "index": index, "stage": "parse",
                    "error_class": error_class, "message": str(exc),
                })
            else:
                out.append((name, workload))
        if errors:
            raise ServiceError(
                400, "bad_request",
                f"{len(errors)} of {len(functions)} function(s) failed to "
                "parse", detail={"errors": errors},
            )
        return out

    def _build_workload(self, spec, workload_cls) -> Tuple[str, object]:
        if not isinstance(spec, dict) or not isinstance(
            spec.get("text"), str
        ):
            raise ServiceError(
                400, "bad_request",
                'each function must be {"text": "<ir or minilang>", ...}',
            )
        lang = spec.get("lang", "auto")
        if lang not in ("auto", "ir", "minilang"):
            raise ServiceError(400, "bad_request", f"unknown lang {lang!r}")
        args = spec.get("args") or {}
        arrays = spec.get("arrays") or {}
        if not isinstance(args, dict) or not all(
            isinstance(k, str) and isinstance(v, int)
            and not isinstance(v, bool)
            for k, v in args.items()
        ):
            raise ServiceError(
                400, "bad_request", '"args" must map names to integers'
            )
        if not isinstance(arrays, dict) or not all(
            isinstance(k, str) and isinstance(v, list) and all(
                isinstance(x, int) and not isinstance(x, bool) for x in v
            )
            for k, v in arrays.items()
        ):
            raise ServiceError(
                400, "bad_request",
                '"arrays" must map names to integer lists',
            )
        fn = load_function_source(spec["text"], lang)
        name = spec.get("name")
        if name is not None and not isinstance(name, str):
            raise ServiceError(400, "bad_request", '"name" must be a string')
        workload = workload_cls(
            fn, dict(args), {k: list(v) for k, v in arrays.items()},
            name=name or fn.name,
        )
        return workload.label(), workload

    def _check_admission(
        self, parsed: Sequence[Tuple[str, object]]
    ) -> None:
        """Admission control against ``batch.admission_limit``.

        Functions whose deterministic cost estimate
        (:func:`repro.core.budget.estimate_cost`) exceeds the configured
        limit fail the whole request with a structured ``413`` -- like
        parse errors, all-or-nothing, so the admit/reject answer is a
        pure function of the submission.  The engine applies the same
        check itself; rejecting here keeps un-admittable work out of the
        queue entirely and gives the client a request-level answer
        instead of a per-function ``admission`` failure.
        """
        limit = self.config.batch.admission_limit
        if limit is None:
            return
        from repro.core.budget import estimate_cost

        over: List[Dict[str, object]] = []
        for index, (name, workload) in enumerate(parsed):
            cost = estimate_cost(workload.fn)
            if cost > limit:
                over.append({"index": index, "name": name, "cost": cost})
        if over:
            self._unadmitted_total += 1
            raise ServiceError(
                413, "unadmittable",
                f"{len(over)} of {len(parsed)} function(s) exceed the "
                f"admission limit ({limit} estimated cost units)",
                detail={"admission_limit": limit, "functions": over},
            )

    def _admit(
        self, parsed: Sequence[Tuple[str, object]]
    ) -> List[Tuple[str, _Entry, bool]]:
        """Coalesce against in-flight work, then admit atomically.

        Returns one slot per submitted function in submission order:
        ``(display_name, entry, coalesced)`` where ``coalesced`` marks a
        function that attached to an already-created computation (from a
        concurrent request, or a duplicate earlier in this one) instead
        of enqueueing.  If the new entries would push the pending queue
        past ``queue_limit``, *nothing* is enqueued and the request
        fails with 429.
        """
        loop = asyncio.get_event_loop()
        slots: List[Tuple[str, _Entry, bool]] = []
        new_entries: List[_Entry] = []
        local: Dict[str, _Entry] = {}
        for name, workload in parsed:
            _, _, fingerprint, key = self.engine.entry_for(workload)
            if key in local:
                slots.append((name, local[key], True))
            elif key in self._inflight:
                slots.append((name, self._inflight[key], True))
            else:
                entry = _Entry(
                    key=key, name=name, fingerprint=fingerprint,
                    workload=workload, future=loop.create_future(),
                )
                local[key] = entry
                new_entries.append(entry)
                slots.append((name, entry, False))
        if len(self._pending) + len(new_entries) > self.config.queue_limit:
            self._rejected_total += 1
            raise ServiceError(
                429, "overloaded",
                f"pending queue is full ({len(self._pending)}/"
                f"{self.config.queue_limit}); retry after "
                f"{self.config.retry_after_s}s",
                detail={
                    "queue_depth": len(self._pending),
                    "queue_limit": self.config.queue_limit,
                    "retry_after_s": self.config.retry_after_s,
                },
            )
        for entry in new_entries:
            self._inflight[entry.key] = entry
            self._pending.append(entry)
        if new_entries:
            self._queue_peak = max(self._queue_peak, len(self._pending))
            self._work.set()
        return slots

    def _result_payload(
        self,
        name: str,
        entry: _Entry,
        coalesced: bool,
        result: BatchResult,
        include_text: bool,
    ) -> Dict[str, object]:
        record = result.record
        out: Dict[str, object] = {
            "name": name,
            "fingerprint": entry.fingerprint,
            "ok": record is not None,
            "cached": result.cached,
            "source": result.source,
            "worker": result.worker,
            "coalesced": coalesced,
            "degraded": result.degraded,
            "fallback_allocator": result.fallback_allocator,
            "attempts": result.attempts,
            "error": None,
        }
        if result.error is not None:
            out["error"] = {
                "error_class": result.error.error_class,
                "message": result.error.message,
                "permanence": result.error.permanence,
                "attempts": result.error.attempts,
            }
        if record is not None:
            out.update({
                "allocator": record.allocator,
                "blocks": record.blocks,
                "allocated_sha256": record.allocated_sha256,
                "spilled": list(record.spilled),
                "static_costs": dict(record.static_costs),
                "costs": dict(record.costs) if record.costs is not None
                else None,
                "returned": record.returned,
            })
            if include_text:
                out["allocated_text"] = record.allocated_text
        return out

    # ------------------------------------------------------------------
    # /metrics and /healthz
    # ------------------------------------------------------------------
    def metrics_payload(self) -> Dict[str, object]:
        return {
            "engine": self.engine.stats.as_dict(),
            "service": {
                "requests": dict(sorted(self._requests.items())),
                "responses": {
                    str(code): n
                    for code, n in sorted(self._responses.items())
                },
                "functions": self._functions_total,
                "coalesced": self._coalesced_total,
                "rejected": self._rejected_total,
                "unadmitted": self._unadmitted_total,
                "streamed": self._streamed_total,
                "queue": {
                    "depth": len(self._pending),
                    "limit": self.config.queue_limit,
                    "peak": self._queue_peak,
                },
                "inflight_keys": len(self._inflight),
                "latency_ms": {
                    endpoint: hist.snapshot()
                    for endpoint, hist in sorted(self._latency.items())
                },
            },
            "uptime_s": round(time.monotonic() - self._started_mono, 3),
        }

    def healthz_payload(self) -> Dict[str, object]:
        pool = self.engine.pool_health()
        stats = self.engine.stats
        if self._draining:
            status = "draining"
        elif bool(pool["broken"]) or (
            bool(pool["running"])
            and int(pool["alive"]) < int(pool["configured"])
        ):
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "pool": pool,
            "queue": {
                "depth": len(self._pending),
                "limit": self.config.queue_limit,
            },
            "degradation": {
                "degraded_results": stats.degraded,
                "failures": stats.failures,
                "retries": stats.retries,
                "pool_restarts": stats.pool_restarts,
            },
            "config": describe_config(self.config),
            "uptime_s": round(time.monotonic() - self._started_mono, 3),
        }


def _json_bytes(payload: object) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _truthy(value: Optional[str]) -> bool:
    return value not in (None, "", "0", "false", "no")


# ----------------------------------------------------------------------
# blocking entry point (the CLI's `repro serve`)
# ----------------------------------------------------------------------
def run_service(
    config: Optional[ServiceConfig] = None,
    tracer: Optional[NullTracer] = None,
    out=None,
    ready=None,
) -> None:
    """Serve until SIGINT/SIGTERM, then drain gracefully.

    *ready*, when given, is called with the bound port once the socket is
    listening (tests use it; operators read the startup line).
    """
    import signal
    import sys

    out = out or sys.stderr

    async def _main() -> None:
        service = AllocationService(config, tracer=tracer)
        await service.start()
        print(
            f"allocation service listening on "
            f"http://{service.config.host}:{service.port} "
            f"(workers={service.config.batch.batch_workers}, "
            f"queue_limit={service.config.queue_limit})",
            file=out, flush=True,
        )
        if ready is not None:
            ready(service.port)
        stop = asyncio.Event()
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        await stop.wait()
        print("draining in-flight allocations ...", file=out, flush=True)
        await service.shutdown()
        print("service stopped", file=out, flush=True)

    asyncio.run(_main())
