"""Allocation-as-a-service: an asyncio HTTP/JSON front-end on the batch
engine.

See :mod:`repro.service.server` for the serving model (coalescing,
backpressure, micro-batched dispatch, graceful drain) and
``docs/SERVICE.md`` for the operator's manual.  Start one with::

    python -m repro serve --port 8421

or in-process::

    async with AllocationService(ServiceConfig()) as service:
        async with ServiceClient("127.0.0.1", service.port) as client:
            reply = await client.allocate_text("let x = 1 + 2; return x;")
"""

from repro.service.client import ServiceClient, ServiceReply
from repro.service.config import (
    SERVICE_ERROR_CLASSES,
    ServiceConfig,
    describe_config,
)
from repro.service.server import (
    AllocationService,
    ServiceError,
    load_function_source,
    run_service,
)

__all__ = [
    "AllocationService",
    "ServiceClient",
    "ServiceReply",
    "ServiceConfig",
    "ServiceError",
    "SERVICE_ERROR_CLASSES",
    "describe_config",
    "load_function_source",
    "run_service",
]
