"""Graph coloring with preferences (paper section 3, "Coloring").

The engine implements the Briggs-style optimistic scheme the paper adopts:
every node is eventually pushed on the "colorable stack" -- nodes with fewer
than ``k`` conflicts first, then spill candidates in order of increasing
value -- and actual spilling is decided only when a popped node finds no
color.  Preference handling follows the paper:

* a node may carry a *local preference* (a specific color it wants);
* preference *pairs* want to share some arbitrary color: when one member is
  colored, uncolored partners inherit the color as their local preference;
* when coloring a node without a local preference, colors that are local
  preferences of still-uncolored conflicting neighbours are avoided; if that
  leaves nothing, the engine "reverts to standard coloring techniques";
* *boundary* nodes (globals live at tile boundaries) try to take a color
  "separate from any other color already used subject to the constraint of
  using only ||R|| colors" so the top-down phase retains freedom to bind
  local and global colors independently.

Invariants callers rely on:

* :func:`color_graph` never mutates its inputs -- the graph, priority,
  precolored and preference mappings are only read, so a caller may pass
  the same graph through repeated recoloring rounds.
* the outcome is a pure function of the inputs: node selection is driven
  by (degree, name) / (metric, name) heaps and the color-reuse list is
  seeded in sorted order, so no decision inherits hash-salted iteration
  order (the cross-process determinism gate depends on this).
* nodes in ``never_spill`` either receive a color or raise
  :class:`NoColorForRequiredNode`; they are never silently spilled.
* the optional ``trace_hook`` is strictly observational (it receives
  preference outcomes and must not feed anything back).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.graph.interference import InterferenceGraph


class NoColorForRequiredNode(RuntimeError):
    """A node that must receive a color (infinite spill cost or a required
    physical register) could not be colored."""

    def __init__(self, message: str, node: str) -> None:
        super().__init__(message)
        self.node = node


@dataclass
class ColoringResult:
    """Outcome of one coloring run."""

    assignment: Dict[str, str]
    spilled: Set[str]
    used_colors: List[str]
    stack_order: List[str] = field(default_factory=list)

    def color_of(self, var: str) -> Optional[str]:
        return self.assignment.get(var)


def color_graph(
    graph: InterferenceGraph,
    k: int,
    color_order: Sequence[str],
    priorities: Optional[Mapping[str, float]] = None,
    precolored: Optional[Mapping[str, str]] = None,
    local_prefs: Optional[Mapping[str, str]] = None,
    pref_pairs: Optional[Iterable[Tuple[str, str]]] = None,
    never_spill: Optional[Set[str]] = None,
    boundary: Optional[Set[str]] = None,
    pessimistic: bool = False,
    spill_heuristic: str = "cost_over_degree",
    trace_hook: Optional[Callable[[str, str, str], None]] = None,
) -> ColoringResult:
    """Color *graph* with at most *k* distinct colors.

    Args:
        graph: the conflict graph.
        k: ``|R|`` -- the maximum number of simultaneous colors.
        color_order: colors to draw fresh colors from, in preference order
            (physical registers for final binding, pseudo-register tokens
            during the bottom-up phase).  Colors introduced by *precolored*
            or *local_prefs* may lie outside this sequence; they count
            toward the *k* budget all the same.
        priorities: spill value per node -- higher means more deserving of
            a register (the paper's ``Weight``); missing nodes default 0.
        precolored: fixed assignments (linkage registers, parent bindings).
        local_prefs: desired color per node (paper's local preference).
        pref_pairs: pairs that would like to share a color.
        never_spill: nodes with infinite spill cost (operand temporaries);
            failure to color one raises :class:`NoColorForRequiredNode`.
        boundary: nodes that try for a fresh color before reusing one.
        pessimistic: use original-Chaitin behaviour -- a node chosen as a
            spill candidate is spilled immediately instead of optimistically
            pushed (ablation only).
        spill_heuristic: how the next spill candidate is ranked --
            ``"cost_over_degree"`` (Chaitin's ratio, the paper's choice),
            ``"cost"`` (pure benefit, Bernstein-style single criterion), or
            ``"degree"`` (most-constraining node first).  The paper notes
            "our algorithm could easily use either method".
        trace_hook: observational callback ``(node, color, kind)`` invoked
            when a preference is honored -- ``kind`` is ``"local"`` for a
            local-preference hit, ``"partner"`` for an inherited partner
            color (see :mod:`repro.trace`).
    """
    if spill_heuristic not in ("cost_over_degree", "cost", "degree"):
        raise ValueError(f"unknown spill heuristic {spill_heuristic!r}")
    # Inputs are only read, never mutated -- hold references, don't copy.
    priorities = priorities if priorities is not None else {}
    precolored = precolored if precolored is not None else {}
    local_prefs = local_prefs if local_prefs is not None else {}
    never_spill = never_spill if never_spill is not None else frozenset()
    boundary = boundary if boundary is not None else frozenset()

    partners: Dict[str, Set[str]] = {}
    for a, b in pref_pairs or ():
        if a == b:
            continue
        partners.setdefault(a, set()).add(b)
        partners.setdefault(b, set()).add(a)

    # Shallow copy only: the algorithm never mutates a neighbour set, so
    # the sets can be shared with the graph; the dict itself is copied
    # because missing precolored nodes get empty entries added.
    adj: Dict[str, Set[str]] = dict(graph.adjacency())
    for var in precolored:
        if var not in adj:
            adj[var] = set()

    # ------------------------------------------------------------------
    # Simplify: push nodes onto the colorable stack.
    # ------------------------------------------------------------------
    degrees: Dict[str, int] = {}
    remaining: Set[str] = set()
    stack: List[str] = []
    spilled: Set[str] = set()

    if spill_heuristic == "cost":

        def spill_metric(var: str, degree: int) -> float:
            return math.inf if var in never_spill else priorities.get(var, 0.0)

    elif spill_heuristic == "degree":

        def spill_metric(var: str, degree: int) -> float:
            return math.inf if var in never_spill else -max(degree, 1)

    else:

        def spill_metric(var: str, degree: int) -> float:
            if var in never_spill:
                return math.inf
            return priorities.get(var, 0.0) / max(degree, 1)

    # Two lazy heaps drive node selection: ``low_heap`` orders the
    # trivially-colorable nodes by (degree, name), ``spill_heap`` orders
    # the constrained (degree >= k) nodes by (spill metric, name).  Entries
    # go stale when a degree drops; a fresh entry is pushed on every
    # decrement, so an entry is valid exactly when its recorded degree
    # matches the current one.  Nodes below k never need a spill entry: a
    # node whose degree is < k always has a valid low_heap entry, so the
    # spill pick -- which runs only when no such entry exists -- can never
    # select it.  Pop order is identical to the previous min() scans --
    # lowest (degree, name) among sub-k nodes, else lowest (metric, name)
    # overall -- at O(log) per operation instead of O(|remaining|).
    low_heap: List[Tuple[int, str]] = []
    spill_heap: List[Tuple[float, str, int]] = []
    for v, ns in adj.items():
        d = len(ns)
        degrees[v] = d
        if v in precolored:
            continue
        remaining.add(v)
        if d < k:
            low_heap.append((d, v))
        else:
            spill_heap.append((spill_metric(v, d), v, d))
    heapq.heapify(low_heap)
    heapq.heapify(spill_heap)

    heappush = heapq.heappush

    def decrement_neighbors(var: str) -> None:
        for other in adj[var]:
            d = degrees[other] = degrees[other] - 1
            if other in remaining:
                if d < k:
                    heappush(low_heap, (d, other))
                else:
                    heappush(spill_heap, (spill_metric(other, d), other, d))

    heappop = heapq.heappop
    while remaining:
        var = None
        while low_heap:
            d, v = heappop(low_heap)
            if v in remaining and degrees[v] == d:
                var = v
                break
        if var is None:
            # All remaining nodes have >= k conflicts: pick the least
            # valuable as the next (potential) spill.
            while True:
                _, v, d = heappop(spill_heap)
                if v in remaining and degrees[v] == d:
                    var = v
                    break
            if pessimistic and var not in never_spill:
                spilled.add(var)
                remaining.discard(var)
                decrement_neighbors(var)
                continue
        remaining.discard(var)
        stack.append(var)
        decrement_neighbors(var)

    # ------------------------------------------------------------------
    # Select: pop and color.
    # ------------------------------------------------------------------
    assignment: Dict[str, str] = dict(precolored)
    # Seed the reuse list in sorted color order: ``_pick`` returns the
    # first non-forbidden entry, so the list order is outcome-relevant and
    # must not inherit the caller's dict iteration order.
    used: List[str] = []
    if precolored:
        used.extend(sorted(set(precolored.values())))
    dynamic_prefs = dict(local_prefs)

    def forbidden_for(var: str) -> Set[str]:
        return {
            assignment[n] for n in adj.get(var, ()) if n in assignment
        }

    def neighbour_pref_colors(var: str) -> Set[str]:
        if not dynamic_prefs:  # nothing to avoid, skip the scan
            return set()
        out = set()
        for n in adj.get(var, ()):
            if n not in assignment and n in dynamic_prefs:
                out.add(dynamic_prefs[n])
        return out

    def fresh_color(forbidden: Set[str]) -> Optional[str]:
        if len(used) >= k:
            return None
        for color in color_order:
            if color not in used and color not in forbidden:
                return color
        return None

    def take(var: str, color: str) -> None:
        assignment[var] = color
        if color not in used:
            used.append(color)
        for partner in partners.get(var, ()):
            if partner not in assignment and partner not in dynamic_prefs:
                dynamic_prefs[partner] = color

    order: List[str] = []
    while stack:
        var = stack.pop()
        order.append(var)
        forbidden = forbidden_for(var)

        # 1. Explicit local preference wins when available.
        pref = dynamic_prefs.get(var)
        if pref is not None and pref not in forbidden:
            if pref in used or len(used) < k:
                take(var, pref)
                if trace_hook is not None:
                    trace_hook(var, pref, "local")
                continue

        # 2. A partner's color, when one is already colored.  Partners are
        # held in a set, so iterate them sorted: element [0] is taken.
        # (Most nodes have no partners -- skip the sort entirely then.)
        var_partners = partners.get(var)
        if var_partners:
            partner_colors = [
                assignment[p]
                for p in sorted(var_partners)
                if p in assignment and assignment[p] not in forbidden
            ]
            if partner_colors:
                take(var, partner_colors[0])
                if trace_hook is not None:
                    trace_hook(var, partner_colors[0], "partner")
                continue

        avoid = neighbour_pref_colors(var)

        # 3. Boundary globals try for a color distinct from all used ones.
        if var in boundary:
            color = fresh_color(forbidden | avoid)
            if color is None:
                color = fresh_color(forbidden)
            if color is not None:
                take(var, color)
                continue

        # 4. Reuse an existing color, avoiding neighbours' preferences.
        color = _pick(used, forbidden | avoid)
        if color is None:
            color = fresh_color(forbidden | avoid)
        # 5. "Revert to standard coloring": ignore preference avoidance.
        if color is None:
            color = _pick(used, forbidden)
        if color is None:
            color = fresh_color(forbidden)

        if color is not None:
            take(var, color)
        else:
            if var in never_spill:
                raise NoColorForRequiredNode(
                    f"node {var!r} has infinite spill cost but no color", var
                )
            spilled.add(var)

    return ColoringResult(
        assignment=assignment,
        spilled=spilled,
        used_colors=used,
        stack_order=order,
    )


def _pick(used: Sequence[str], forbidden: Set[str]) -> Optional[str]:
    for color in used:
        if color not in forbidden:
            return color
    return None


def verify_coloring(
    graph: InterferenceGraph, assignment: Mapping[str, str]
) -> List[Tuple[str, str]]:
    """Conflicting node pairs that share a color (empty list == valid)."""
    bad = []
    for a, b in graph.edges():
        ca, cb = assignment.get(a), assignment.get(b)
        if ca is not None and ca == cb:
            bad.append((a, b))
    return bad
