"""Graph coloring with preferences (paper section 3, "Coloring").

The engine implements the Briggs-style optimistic scheme the paper adopts:
every node is eventually pushed on the "colorable stack" -- nodes with fewer
than ``k`` conflicts first, then spill candidates in order of increasing
value -- and actual spilling is decided only when a popped node finds no
color.  Preference handling follows the paper:

* a node may carry a *local preference* (a specific color it wants);
* preference *pairs* want to share some arbitrary color: when one member is
  colored, uncolored partners inherit the color as their local preference;
* when coloring a node without a local preference, colors that are local
  preferences of still-uncolored conflicting neighbours are avoided; if that
  leaves nothing, the engine "reverts to standard coloring techniques";
* *boundary* nodes (globals live at tile boundaries) try to take a color
  "separate from any other color already used subject to the constraint of
  using only ||R|| colors" so the top-down phase retains freedom to bind
  local and global colors independently.

The engine is **integer-core**: it runs directly over the graph's id-level
masks (see :class:`~repro.graph.interference.InterferenceGraph`), colors are
interned to small ids so forbidden/avoid sets are single-int bitmasks, and
every name comparison in the original heaps is replaced by a *rank* (the
node's position in the sorted name list), which orders identically.  All
per-node hot state (degree, priority, assigned color, dynamic preference,
rank) lives in dense Python lists indexed by graph id -- seeded from the
graph's incrementally maintained neighbour/degree/rank caches -- so the
per-edge inner loops (``decrement_neighbors``, ``forbidden_for``,
``neighbour_pref_colors``) index C arrays and never probe a dict.  The
string behaviour is exactly preserved -- inputs and results are plain
string mappings.

Invariants callers rely on:

* :func:`color_graph` never mutates its inputs -- the graph, priority,
  precolored and preference mappings are only read, so a caller may pass
  the same graph through repeated recoloring rounds.
* the outcome is a pure function of the inputs: node selection is driven
  by (degree, rank) / (metric, rank) heaps and the color-reuse list is
  seeded in sorted order, so no decision inherits hash-salted iteration
  order (the cross-process determinism gate depends on this).
* nodes in ``never_spill`` either receive a color or raise
  :class:`NoColorForRequiredNode`; they are never silently spilled.
* the optional ``trace_hook`` is strictly observational (it receives
  preference outcomes and must not feed anything back).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.graph.interference import InterferenceGraph


class NoColorForRequiredNode(RuntimeError):
    """A node that must receive a color (infinite spill cost or a required
    physical register) could not be colored."""

    def __init__(self, message: str, node: str) -> None:
        super().__init__(message)
        self.node = node


class ColoringInvariantError(RuntimeError):
    """An internal invariant of the coloring engine was violated.

    The lazy-heap select loop relies on every remaining ``>= k``-degree
    node keeping at least one valid spill-heap entry (a fresh one is
    pushed on every degree decrement).  If the heap nevertheless runs
    dry -- which takes a corrupted graph cache or lost entries, never a
    legal input -- the engine raises this instead of a bare
    ``IndexError`` so :func:`repro.errors.classify_exception` can map it
    to a stable error class and the batch degradation ladder can fall
    back to a simpler allocator rather than crash the module."""


@dataclass
class ColoringResult:
    """Outcome of one coloring run."""

    assignment: Dict[str, str]
    spilled: Set[str]
    used_colors: List[str]
    stack_order: List[str] = field(default_factory=list)

    def color_of(self, var: str) -> Optional[str]:
        return self.assignment.get(var)


def color_graph(
    graph: InterferenceGraph,
    k: int,
    color_order: Sequence[str],
    priorities: Optional[Mapping[str, float]] = None,
    precolored: Optional[Mapping[str, str]] = None,
    local_prefs: Optional[Mapping[str, str]] = None,
    pref_pairs: Optional[Iterable[Tuple[str, str]]] = None,
    never_spill: Optional[Set[str]] = None,
    boundary: Optional[Set[str]] = None,
    pessimistic: bool = False,
    spill_heuristic: str = "cost_over_degree",
    trace_hook: Optional[Callable[[str, str, str], None]] = None,
    budget=None,
) -> ColoringResult:
    """Color *graph* with at most *k* distinct colors.

    Args:
        graph: the conflict graph.
        k: ``|R|`` -- the maximum number of simultaneous colors.
        color_order: colors to draw fresh colors from, in preference order
            (physical registers for final binding, pseudo-register tokens
            during the bottom-up phase).  Colors introduced by *precolored*
            or *local_prefs* may lie outside this sequence; they count
            toward the *k* budget all the same.
        priorities: spill value per node -- higher means more deserving of
            a register (the paper's ``Weight``); missing nodes default 0.
        precolored: fixed assignments (linkage registers, parent bindings).
        local_prefs: desired color per node (paper's local preference).
        pref_pairs: pairs that would like to share a color.
        never_spill: nodes with infinite spill cost (operand temporaries);
            failure to color one raises :class:`NoColorForRequiredNode`.
        boundary: nodes that try for a fresh color before reusing one.
        pessimistic: use original-Chaitin behaviour -- a node chosen as a
            spill candidate is spilled immediately instead of optimistically
            pushed (ablation only).
        spill_heuristic: how the next spill candidate is ranked --
            ``"cost_over_degree"`` (Chaitin's ratio, the paper's choice),
            ``"cost"`` (pure benefit, Bernstein-style single criterion), or
            ``"degree"`` (most-constraining node first).  The paper notes
            "our algorithm could easily use either method".
        trace_hook: observational callback ``(node, color, kind)`` invoked
            when a preference is honored -- ``kind`` is ``"local"`` for a
            local-preference hit, ``"partner"`` for an inherited partner
            color (see :mod:`repro.trace`).
        budget: optional :class:`~repro.core.budget.AllocationBudget`
            charged once per simplify-loop pop (the select loop replays
            the same stack, so one charge covers both).
    """
    if spill_heuristic not in ("cost_over_degree", "cost", "degree"):
        raise ValueError(f"unknown spill heuristic {spill_heuristic!r}")
    # Inputs are only read, never mutated -- hold references, don't copy.
    priorities = priorities if priorities is not None else {}
    precolored = precolored if precolored is not None else {}
    local_prefs = local_prefs if local_prefs is not None else {}
    never_spill = never_spill if never_spill is not None else frozenset()
    boundary = boundary if boundary is not None else frozenset()

    # ------------------------------------------------------------------
    # Lower names to ids.  Graph nodes keep their graph ids; precolored
    # nodes and preference-pair members absent from the graph get fresh
    # ids above them (local to this call -- the graph is not mutated).
    # ------------------------------------------------------------------
    g_ids = graph.node_ids()
    g_names = graph.id_names()
    # Copy-on-write: extras (precolored nodes or pair members outside the
    # graph) are rare, so the graph's own dicts are shared until the first
    # fresh interning actually happens.
    ids: Dict[str, int] = g_ids
    names: Dict[int, str] = g_names
    nxt = graph._next

    def local_intern(var: str) -> int:
        nonlocal nxt, ids, names
        i = ids.get(var)
        if i is None:
            if ids is g_ids:
                ids = dict(g_ids)
                names = dict(g_names)
            i = nxt
            nxt += 1
            ids[var] = i
            names[i] = var
        return i

    partners: Dict[int, Set[int]] = {}
    for a, b in pref_pairs or ():
        if a == b:
            continue
        ia = local_intern(a)
        ib = local_intern(b)
        partners.setdefault(ia, set()).add(ib)
        partners.setdefault(ib, set()).add(ia)
    # Partner inspection takes the lowest *name*; pre-sort once.
    partner_sorted: Dict[int, List[int]] = (
        {i: sorted(s, key=names.__getitem__) for i, s in partners.items()}
        if partners
        else {}
    )

    # Colors are interned too, so forbidden/avoid sets are bitmasks.
    cids: Dict[str, int] = {}
    cnames: List[str] = []

    def cintern(color: str) -> int:
        ci = cids.get(color)
        if ci is None:
            ci = len(cnames)
            cids[color] = ci
            cnames.append(color)
        return ci

    color_order_ids = [cintern(c) for c in color_order]

    # The algorithm's node set: graph nodes plus precolored extras (the
    # extras are precolored, so they never enter a heap and need no degree
    # or priority entries).
    precolored_ids: Dict[int, int] = {}
    for var, color in precolored.items():
        precolored_ids[local_intern(var)] = cintern(color)

    # Local preferences are interned up front too, so every id this run
    # will ever touch exists before the dense arrays are sized.  (Extra
    # node ids and color ids are pure identities -- their numeric values
    # never steer an outcome -- so hoisting this above the simplify loop
    # is behaviour-preserving.)
    pref_seed: List[Tuple[int, int]] = [
        (local_intern(var), cintern(color))
        for var, color in local_prefs.items()
    ]

    never_mask = 0
    for var in never_spill:
        i = ids.get(var)
        if i is not None:
            never_mask |= 1 << i
    boundary_mask = 0
    for var in boundary:
        i = ids.get(var)
        if i is not None:
            boundary_mask |= 1 << i

    # ------------------------------------------------------------------
    # Simplify: push nodes onto the colorable stack.
    # ------------------------------------------------------------------
    # All per-node hot state is dense lists indexed by id (ids are
    # bounded by ``nxt``; subgraphs keep parent ids, so the lists may
    # have holes).  ``deg_arr`` is seeded from the graph's incrementally
    # maintained degree cache, ``rank`` is its memoized dense rank view,
    # and ``prio`` is filled only for nodes whose *initial* degree
    # reaches k -- degrees only ever decrease, so no other node can
    # enter the spill heap.
    size = nxt
    deg_arr: List[int] = [0] * size
    prio: List[float] = [0.0] * size
    node_color: List[int] = [-1] * size
    dyn_pref: List[int] = [-1] * size

    precolored_mask = 0
    for i, ci in precolored_ids.items():
        node_color[i] = ci
        precolored_mask |= 1 << i
    n_dyn = 0
    for i, ci in pref_seed:
        dyn_pref[i] = ci
        n_dyn += 1

    # ``in_play`` replaces the remaining-node bitmask with list flags:
    # the simplify loop tests membership once per heap pop and once per
    # neighbour decrement, and list indexing beats a big-int shift at
    # both sites.  ``n_remaining`` carries the loop condition.
    in_play: List[int] = [0] * size
    n_remaining = 0
    stack: List[int] = []
    spilled: Set[str] = set()
    priorities_get = priorities.get
    nbrs = graph.neighbor_ids()

    if spill_heuristic == "cost":

        def spill_metric(i: int, degree: int) -> float:
            return math.inf if never_mask >> i & 1 else prio[i]

    elif spill_heuristic == "degree":

        def spill_metric(i: int, degree: int) -> float:
            return math.inf if never_mask >> i & 1 else -max(degree, 1)

    else:

        def spill_metric(i: int, degree: int) -> float:
            if never_mask >> i & 1:
                return math.inf
            return prio[i] / max(degree, 1)

    # Ranks replace name comparisons: rank(v) is v's position in the
    # graph's sorted name list, so (degree, rank) orders exactly like
    # (degree, name) did -- only undecided nodes ever meet in a heap, and
    # global ranks restricted to them are order-isomorphic to their own
    # sorted positions.  Ranks are unique, so later tuple elements never
    # tie-break.  The rank table is memoized on the graph across recolor
    # rounds and phases; ``rank`` is its dense list view.
    rank = graph.name_rank_array()
    _, id_of_rank = graph.name_ranks()

    # Two lazy heaps drive node selection: ``low_heap`` orders the
    # trivially-colorable nodes by (degree, rank), ``spill_heap`` orders
    # the constrained (degree >= k) nodes by (spill metric, rank).  Entries
    # go stale when a degree drops; a fresh entry is pushed on every
    # decrement, so an entry is valid exactly when its recorded degree
    # matches the current one.  Nodes below k never need a spill entry: a
    # node whose degree is < k always has a valid low_heap entry, so the
    # spill pick -- which runs only when no such entry exists -- can never
    # select it.  Pop order is lowest (degree, rank) among sub-k nodes,
    # else lowest (metric, rank) overall, at O(log) per operation.
    low_heap: List[Tuple[int, int]] = []
    spill_heap: List[Tuple[float, int, int]] = []
    for i, d in graph.degree_map().items():
        deg_arr[i] = d
        if precolored_mask >> i & 1:
            continue
        in_play[i] = 1
        n_remaining += 1
        if d < k:
            low_heap.append((d, rank[i]))
        else:
            prio[i] = priorities_get(names[i], 0.0)
            spill_heap.append((spill_metric(i, d), rank[i], d))
    heapq.heapify(low_heap)
    heapq.heapify(spill_heap)

    heappush = heapq.heappush

    if spill_heuristic == "cost_over_degree":
        # The default heuristic, specialized with the metric inlined:
        # the decrement loop runs once per (node, neighbour) edge and a
        # closure call per spill push is measurable there.  Same floats
        # as ``spill_metric`` (``d >= k`` here, so ``max(d, 1)`` keeps
        # the k == 0 corner identical).
        inf = math.inf

        def decrement_neighbors(i: int) -> None:
            # Out-of-play neighbours (popped, spilled or precolored) skip
            # the decrement entirely: their ``deg_arr`` slot is never read
            # again -- validity checks and spill metrics only consult
            # remaining nodes.
            for other in nbrs[i]:
                if in_play[other]:
                    d = deg_arr[other] = deg_arr[other] - 1
                    if d < k:
                        heappush(low_heap, (d, rank[other]))
                    elif never_mask >> other & 1:
                        heappush(spill_heap, (inf, rank[other], d))
                    else:
                        heappush(
                            spill_heap,
                            (prio[other] / max(d, 1), rank[other], d),
                        )

    else:

        def decrement_neighbors(i: int) -> None:
            for other in nbrs[i]:
                if in_play[other]:
                    d = deg_arr[other] = deg_arr[other] - 1
                    if d < k:
                        heappush(low_heap, (d, rank[other]))
                    else:
                        heappush(
                            spill_heap,
                            (spill_metric(other, d), rank[other], d),
                        )

    heappop = heapq.heappop
    while n_remaining:
        if budget is not None:
            budget.charge(1, "simplify")
        var = -1
        while low_heap:
            d, r = heappop(low_heap)
            v = id_of_rank[r]
            if in_play[v] and deg_arr[v] == d:
                var = v
                break
        if var < 0:
            # All remaining nodes have >= k conflicts: pick the least
            # valuable as the next (potential) spill.  Every remaining
            # >= k node keeps at least one valid entry (a fresh one is
            # pushed on each decrement), so running the heap dry means
            # the invariant broke -- raise the classified error rather
            # than a bare IndexError so the degradation ladder can act.
            while spill_heap:
                _, r, d = heappop(spill_heap)
                v = id_of_rank[r]
                if in_play[v] and deg_arr[v] == d:
                    var = v
                    break
            if var < 0:
                raise ColoringInvariantError(
                    f"spill heap exhausted with {n_remaining} uncolored "
                    "nodes remaining -- graph degree/neighbour caches "
                    "are inconsistent"
                )
            if pessimistic and not never_mask >> var & 1:
                spilled.add(names[var])
                in_play[var] = 0
                n_remaining -= 1
                decrement_neighbors(var)
                continue
        in_play[var] = 0
        n_remaining -= 1
        stack.append(var)
        decrement_neighbors(var)

    # ------------------------------------------------------------------
    # Select: pop and color.
    # ------------------------------------------------------------------
    # Seed the reuse list in sorted color order: ``_pick`` returns the
    # first non-forbidden entry, so the list order is outcome-relevant and
    # must not inherit the caller's dict iteration order.
    used: List[int] = []
    used_mask = 0
    if precolored:
        for color in sorted(set(precolored.values())):
            ci = cids[color]
            if not used_mask >> ci & 1:
                used.append(ci)
                used_mask |= 1 << ci

    # Both scans walk the cached neighbour-id list against the dense
    # color arrays instead of intersecting big-int masks: by select time
    # most neighbours are assigned, so the mask walk decoded nearly every
    # bit anyway, and two list reads per neighbour are cheaper than a
    # shift-and-bit_length per set bit.  ``node_color[n] >= 0`` is exactly
    # "assigned" (precolored or taken).
    def forbidden_for(i: int) -> int:
        out = 0
        for other in nbrs[i]:
            ci = node_color[other]
            if ci >= 0:
                out |= 1 << ci
        return out

    def neighbour_pref_colors(i: int) -> int:
        if not n_dyn:  # nothing to avoid, skip the scan
            return 0
        out = 0
        for other in nbrs[i]:
            if node_color[other] < 0:
                ci = dyn_pref[other]
                if ci >= 0:
                    out |= 1 << ci
        return out

    def fresh_color(forbidden: int) -> int:
        if len(used) >= k:
            return -1
        for ci in color_order_ids:
            if not used_mask >> ci & 1 and not forbidden >> ci & 1:
                return ci
        return -1

    def pick(forbidden: int) -> int:
        for ci in used:
            if not forbidden >> ci & 1:
                return ci
        return -1

    take_order: List[int] = []

    def take(i: int, ci: int) -> None:
        nonlocal used_mask, n_dyn
        node_color[i] = ci
        take_order.append(i)
        if not used_mask >> ci & 1:
            used.append(ci)
            used_mask |= 1 << ci
        for p in partner_sorted.get(i, ()):
            if node_color[p] < 0 and dyn_pref[p] < 0:
                dyn_pref[p] = ci
                n_dyn += 1

    order: List[str] = []
    while stack:
        var = stack.pop()
        order.append(names[var])
        forbidden = forbidden_for(var)

        # 1. Explicit local preference wins when available.
        pref = dyn_pref[var]
        if pref >= 0 and not forbidden >> pref & 1:
            if used_mask >> pref & 1 or len(used) < k:
                take(var, pref)
                if trace_hook is not None:
                    trace_hook(names[var], cnames[pref], "local")
                continue

        # 2. A partner's color, when one is already colored.  Partner
        # lists are pre-sorted by name: the first assignable hit is taken.
        plist = partner_sorted.get(var)
        if plist:
            chosen = -1
            for p in plist:
                ci = node_color[p]
                if ci >= 0 and not forbidden >> ci & 1:
                    chosen = ci
                    break
            if chosen >= 0:
                take(var, chosen)
                if trace_hook is not None:
                    trace_hook(names[var], cnames[chosen], "partner")
                continue

        avoid = neighbour_pref_colors(var)

        # 3. Boundary globals try for a color distinct from all used ones.
        if boundary_mask >> var & 1:
            color = fresh_color(forbidden | avoid)
            if color < 0:
                color = fresh_color(forbidden)
            if color >= 0:
                take(var, color)
                continue

        # 4. Reuse an existing color, avoiding neighbours' preferences.
        color = pick(forbidden | avoid)
        if color < 0:
            color = fresh_color(forbidden | avoid)
        # 5. "Revert to standard coloring": ignore preference avoidance.
        if color < 0:
            color = pick(forbidden)
        if color < 0:
            color = fresh_color(forbidden)

        if color >= 0:
            take(var, color)
        else:
            if never_mask >> var & 1:
                name = names[var]
                raise NoColorForRequiredNode(
                    f"node {name!r} has infinite spill cost but no color",
                    name,
                )
            spilled.add(names[var])

    # Materialize the string result: precolored entries first, then takes
    # in pop order -- the same insertion order as before.
    assignment: Dict[str, str] = dict(precolored)
    for i in take_order:
        assignment[names[i]] = cnames[node_color[i]]

    return ColoringResult(
        assignment=assignment,
        spilled=spilled,
        used_colors=[cnames[ci] for ci in used],
        stack_order=order,
    )


def verify_coloring(
    graph: InterferenceGraph, assignment: Mapping[str, str]
) -> List[Tuple[str, str]]:
    """Conflicting node pairs that share a color (empty list == valid)."""
    bad = []
    for a, b in graph.edges():
        ca, cb = assignment.get(a), assignment.get(b)
        if ca is not None and ca == cb:
            bad.append((a, b))
    return bad
