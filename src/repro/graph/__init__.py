"""Interference graphs and the preference-aware coloring engine."""

from repro.graph.interference import InterferenceGraph, build_interference
from repro.graph.coloring import ColoringResult, color_graph, NoColorForRequiredNode

__all__ = [
    "InterferenceGraph",
    "build_interference",
    "ColoringResult",
    "color_graph",
    "NoColorForRequiredNode",
]
