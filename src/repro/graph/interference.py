"""Interference (conflict) graphs.

Nodes are variables; an edge means the two variables cannot share a register
(they are simultaneously live at some point).  Construction follows Chaitin:
at every definition point the defined variable conflicts with everything live
after the instruction -- except that copy sources never conflict with their
destinations through the copy itself, which is what lets preferencing (the
paper's replacement for coalescing) put both in one register.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.liveness import Liveness
from repro.ir.function import Function
from repro.ir.instructions import Instr, Opcode

class InterferenceGraph:
    """Undirected conflict graph over variable names."""

    def __init__(self) -> None:
        self._adj: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, var: str) -> None:
        self._adj.setdefault(var, set())

    def add_edge(self, a: str, b: str) -> None:
        if a == b:
            return
        self._adj.setdefault(a, set()).add(b)
        self._adj.setdefault(b, set()).add(a)

    def add_clique(self, vars_: Iterable[str]) -> None:
        # Bulk set unions: O(k) C-level operations instead of O(k^2)
        # add_edge calls.  Callers routinely pass sets (boundary live
        # sets), so nodes not seen before are inserted in sorted order --
        # node order feeds downstream tie-breaks and must not depend on
        # hash salt.  Existing nodes keep their position, so the sort
        # covers only the (usually empty) set of new members.
        adj = self._adj
        members: Set[str] = set(vars_)
        new = [v for v in members if v not in adj]
        if new:
            new.sort()
            for v in new:
                adj[v] = set()
        if len(members) < 2:
            return
        for a in members:
            s = adj[a]
            s |= members
            s.discard(a)

    def remove_node(self, var: str) -> None:
        for other in self._adj.pop(var, ()):  # pragma: no branch
            self._adj[other].discard(var)

    def merge_from(self, other: "InterferenceGraph") -> None:
        for var in other.nodes():
            self.add_node(var)
        for a, b in other.edges():
            self.add_edge(a, b)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def nodes(self) -> List[str]:
        return list(self._adj)

    def __contains__(self, var: str) -> bool:
        return var in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def neighbors(self, var: str) -> Set[str]:
        return self._adj.get(var, set())

    def degree(self, var: str) -> int:
        return len(self._adj.get(var, ()))

    def edges(self) -> Iterator[Tuple[str, str]]:
        # Neighbour sets are iterated sorted so the yield order depends
        # only on node insertion order, never on the hash salt.
        seen = set()
        for a, others in self._adj.items():
            for b in sorted(others):
                key = (a, b) if a <= b else (b, a)
                if key not in seen:
                    seen.add(key)
                    yield key

    def edge_count(self) -> int:
        return sum(len(v) for v in self._adj.values()) // 2

    def interferes(self, a: str, b: str) -> bool:
        return b in self._adj.get(a, ())

    def subgraph(self, keep: Set[str]) -> "InterferenceGraph":
        """Induced subgraph on ``keep`` (nodes absent from the graph are
        ignored).  Costs O(|V|) plus one set intersection per kept node;
        node order follows this graph's (canonical) insertion order."""
        out = InterferenceGraph()
        adj = self._adj
        out_adj = out._adj
        # ``keep`` is usually a freshly-built (hash-ordered) set, so it
        # must not drive the iteration.  Walking ``self._adj`` instead
        # inherits this graph's insertion order, which construction keeps
        # canonical -- the induced graph's node order (and everything
        # keyed off it downstream) is then canonical without a sort.
        for var, neighbors in adj.items():
            if var in keep:
                out_adj[var] = neighbors & keep
        return out

    def adjacency(self) -> Dict[str, Set[str]]:
        """The internal adjacency map -- treat as read-only."""
        return self._adj

    def copy_adjacency(self) -> Dict[str, Set[str]]:
        return {v: set(ns) for v, ns in self._adj.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InterferenceGraph |V|={len(self)} |E|={self.edge_count()}>"


def build_interference(
    fn: Function,
    liveness: Liveness,
    labels: Optional[Iterable[str]] = None,
    relevant: Optional[Set[str]] = None,
) -> InterferenceGraph:
    """Chaitin-style conflict graph construction.

    Args:
        fn: the function.
        liveness: precomputed liveness for *fn*.
        labels: restrict construction to these blocks (a tile's
            ``blocks(t)``); defaults to the whole function.
        relevant: if given, only variables in this set become nodes; others
            are ignored entirely (the paper's tile graphs only represent
            variables referenced in the tile, see section 3).

    Every variable referenced in the visited blocks becomes a node even if
    it never conflicts.  At each definition the defined variables conflict
    with every relevant variable live after the instruction, with the
    classic copy exemption, and multiple definitions of one instruction
    conflict with each other.

    The construction runs over the bitsets of ``liveness``: each def point
    contributes one ``OR`` of the live-after mask into the defined
    variable's adjacency mask, and the mask-to-set conversion happens once
    at the end.
    """
    if labels is None:
        labels = list(fn.blocks)

    index = liveness.index
    intern = index.intern
    relevant_mask: Optional[int] = (
        None if relevant is None else index.mask_of(relevant)
    )

    node_mask = 0
    adj: Dict[int, int] = {}

    for label in labels:
        block = fn.blocks[label]
        live_out_per_instr = liveness.instr_live_out_bits(label)
        for instr, live_after in zip(block.instrs, live_out_per_instr):
            referenced = 0
            for var in instr.defs:
                referenced |= 1 << intern(var)
            for var in instr.uses:
                referenced |= 1 << intern(var)
            # Clobbered registers (calls) are written as a side effect:
            # they conflict with everything live across the instruction.
            for var in instr.clobbers:
                referenced |= 1 << intern(var)
            if relevant_mask is not None:
                referenced &= relevant_mask
            node_mask |= referenced

            written = instr.defs + instr.clobbers
            if not written:
                continue
            exempt_mask = (
                1 << intern(instr.uses[0]) if instr.is_copy_like else 0
            )
            targets = live_after & ~exempt_mask
            sibling_mask = 0
            for var in written:
                sibling_mask |= 1 << intern(var)
            if relevant_mask is not None:
                targets &= relevant_mask
                sibling_mask &= relevant_mask
            for var in written:
                vid = intern(var)
                vbit = 1 << vid
                if relevant_mask is not None and not (vbit & relevant_mask):
                    continue
                new = (targets | sibling_mask) & ~vbit
                if new:
                    adj[vid] = adj.get(vid, 0) | new

    # Live-after edges were recorded def-side only; mirror them so the
    # adjacency is symmetric (sibling cliques are already symmetric).  The
    # bit loops are inlined -- this is the hottest mask-decoding site and
    # generator resumption costs more than the loop body.
    adj_get = adj.get
    for vid in list(adj):
        vbit = 1 << vid
        mask = adj[vid]
        while mask:
            low = mask & -mask
            oid = low.bit_length() - 1
            adj[oid] = adj_get(oid, 0) | vbit
            mask ^= low

    graph = InterferenceGraph()
    gadj = graph._adj
    name_of = index.name_of
    for vid, mask in adj.items():
        neighbors: Set[str] = set()
        nadd = neighbors.add
        while mask:
            low = mask & -mask
            nadd(name_of(low.bit_length() - 1))
            mask ^= low
        gadj[name_of(vid)] = neighbors
    while node_mask:
        low = node_mask & -node_mask
        gadj.setdefault(name_of(low.bit_length() - 1), set())
        node_mask ^= low
    return graph
