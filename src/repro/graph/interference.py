"""Interference (conflict) graphs.

Nodes are variables; an edge means the two variables cannot share a register
(they are simultaneously live at some point).  Construction follows Chaitin:
at every definition point the defined variable conflicts with everything live
after the instruction -- except that copy sources never conflict with their
destinations through the copy itself, which is what lets preferencing (the
paper's replacement for coalescing) put both in one register.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.liveness import Liveness
from repro.ir.function import Function
from repro.ir.instructions import Instr, Opcode


class InterferenceGraph:
    """Undirected conflict graph over variable names."""

    def __init__(self) -> None:
        self._adj: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, var: str) -> None:
        self._adj.setdefault(var, set())

    def add_edge(self, a: str, b: str) -> None:
        if a == b:
            return
        self._adj.setdefault(a, set()).add(b)
        self._adj.setdefault(b, set()).add(a)

    def add_clique(self, vars_: Iterable[str]) -> None:
        vs = list(vars_)
        for i, a in enumerate(vs):
            self.add_node(a)
            for b in vs[i + 1:]:
                self.add_edge(a, b)

    def remove_node(self, var: str) -> None:
        for other in self._adj.pop(var, ()):  # pragma: no branch
            self._adj[other].discard(var)

    def merge_from(self, other: "InterferenceGraph") -> None:
        for var in other.nodes():
            self.add_node(var)
        for a, b in other.edges():
            self.add_edge(a, b)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def nodes(self) -> List[str]:
        return list(self._adj)

    def __contains__(self, var: str) -> bool:
        return var in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def neighbors(self, var: str) -> Set[str]:
        return self._adj.get(var, set())

    def degree(self, var: str) -> int:
        return len(self._adj.get(var, ()))

    def edges(self) -> Iterator[Tuple[str, str]]:
        seen = set()
        for a, others in self._adj.items():
            for b in others:
                key = (a, b) if a <= b else (b, a)
                if key not in seen:
                    seen.add(key)
                    yield key

    def edge_count(self) -> int:
        return sum(len(v) for v in self._adj.values()) // 2

    def interferes(self, a: str, b: str) -> bool:
        return b in self._adj.get(a, ())

    def subgraph(self, keep: Set[str]) -> "InterferenceGraph":
        out = InterferenceGraph()
        for var in self._adj:
            if var in keep:
                out.add_node(var)
        for a, b in self.edges():
            if a in keep and b in keep:
                out.add_edge(a, b)
        return out

    def copy_adjacency(self) -> Dict[str, Set[str]]:
        return {v: set(ns) for v, ns in self._adj.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InterferenceGraph |V|={len(self)} |E|={self.edge_count()}>"


def build_interference(
    fn: Function,
    liveness: Liveness,
    labels: Optional[Iterable[str]] = None,
    relevant: Optional[Set[str]] = None,
) -> InterferenceGraph:
    """Chaitin-style conflict graph construction.

    Args:
        fn: the function.
        liveness: precomputed liveness for *fn*.
        labels: restrict construction to these blocks (a tile's
            ``blocks(t)``); defaults to the whole function.
        relevant: if given, only variables in this set become nodes; others
            are ignored entirely (the paper's tile graphs only represent
            variables referenced in the tile, see section 3).

    Every variable referenced in the visited blocks becomes a node even if
    it never conflicts.  At each definition the defined variables conflict
    with every relevant variable live after the instruction, with the
    classic copy exemption, and multiple definitions of one instruction
    conflict with each other.
    """
    graph = InterferenceGraph()
    if labels is None:
        labels = list(fn.blocks)

    def keep(var: str) -> bool:
        return relevant is None or var in relevant

    for label in labels:
        block = fn.blocks[label]
        live_out_per_instr = liveness.instr_live_out(label)
        for instr, live_after in zip(block.instrs, live_out_per_instr):
            for var in instr.defs:
                if keep(var):
                    graph.add_node(var)
            for var in instr.uses:
                if keep(var):
                    graph.add_node(var)
            exempt: Set[str] = set()
            if instr.is_copy_like:
                exempt.add(instr.uses[0])
            # Clobbered registers (calls) are written as a side effect:
            # they conflict with everything live across the instruction.
            written = instr.defs + instr.clobbers
            for var in instr.clobbers:
                if keep(var):
                    graph.add_node(var)
            for var in written:
                if not keep(var):
                    continue
                for other in live_after:
                    if other == var or other in exempt or not keep(other):
                        continue
                    graph.add_edge(var, other)
                for sibling in written:
                    if sibling != var and keep(sibling):
                        graph.add_edge(var, sibling)
    return graph
