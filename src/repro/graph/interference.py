"""Interference (conflict) graphs.

Nodes are variables; an edge means the two variables cannot share a register
(they are simultaneously live at some point).  Construction follows Chaitin:
at every definition point the defined variable conflicts with everything live
after the instruction -- except that copy sources never conflict with their
destinations through the copy itself, which is what lets preferencing (the
paper's replacement for coalescing) put both in one register.

Internally the graph is **integer-backed**: every node gets a local id and
the adjacency of a node is a single Python-int bitmask over those ids, so
edge insertion, degree, and induced subgraphs are word-level operations.
The string-facing API (``nodes``/``neighbors``/``adjacency``/``edges``) is a
facade materialized from the masks -- hot callers use the id-level accessors
(``node_ids``/``id_masks``/``id_names``) or the CSR export instead.  Node
iteration order is insertion order, which construction keeps canonical
(never hash-salted); removed-then-re-added nodes go to the end, exactly like
the dict-of-sets representation this replaces.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.liveness import Liveness
from repro.ir.function import Function
from repro.ir.instructions import Instr, Opcode


class InterferenceGraph:
    """Undirected conflict graph over variable names.

    ``_ids`` maps name -> local id in insertion order; ``_names`` is the
    inverse; ``_masks`` maps id -> neighbour bitmask over ids.  Ids are
    *not* required to be dense: :func:`build_interference` reuses the
    function-wide ``VarIndex`` vids directly (no remapping), and
    :meth:`subgraph` keeps the parent's ids.  ``_next`` is the next fresh
    id handed to facade insertions, always above every live id.
    """

    __slots__ = ("_ids", "_names", "_masks", "_next",
                 "_version", "_str_adj", "_str_version",
                 "_nbr_lists", "_ranks", "_rank_version", "_degs",
                 "_rank_arr", "_rank_arr_version")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._names: Dict[int, str] = {}
        self._masks: Dict[int, int] = {}
        self._next = 0
        #: bumped on every mutation; invalidates the version-keyed memos
        #: (``adjacency``/``name_ranks``).  The neighbour-list and degree
        #: caches are *not* version-keyed: mutators keep them in sync
        #: incrementally (or drop them to None), so recolor loops that add
        #: a few temp nodes per round never pay a full mask re-decode.
        self._version = 0
        self._str_adj: Optional[Dict[str, Set[str]]] = None
        self._str_version = -1
        #: id -> neighbour ids; always consistent with ``_masks`` when not
        #: None (the incremental-maintenance invariant).
        self._nbr_lists: Optional[Dict[int, List[int]]] = None
        self._ranks: Optional[Tuple[Dict[int, int], List[int]]] = None
        self._rank_version = -1
        #: dense ``id -> rank`` list (index = id, ``-1`` for holes) --
        #: the array view of ``_ranks`` the coloring engine indexes in
        #: its per-edge loops.  Memoized with its own version stamp.
        self._rank_arr: Optional[List[int]] = None
        self._rank_arr_version = -1
        #: id -> degree; same invariant as ``_nbr_lists``.
        self._degs: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _intern(self, var: str) -> int:
        i = self._ids.get(var)
        if i is None:
            i = self._next
            self._next = i + 1
            self._ids[var] = i
            self._names[i] = var
            self._masks[i] = 0
            if self._nbr_lists is not None:
                self._nbr_lists[i] = []
            if self._degs is not None:
                self._degs[i] = 0
        return i

    def add_node(self, var: str) -> None:
        if var not in self._ids:
            self._version += 1
            self._intern(var)

    def add_edge(self, a: str, b: str) -> None:
        if a == b:
            return
        ia = self._intern(a)
        ib = self._intern(b)
        masks = self._masks
        if masks[ia] >> ib & 1:
            return  # already present: nothing changes, keep the memos
        self._version += 1
        masks[ia] |= 1 << ib
        masks[ib] |= 1 << ia
        lists = self._nbr_lists
        if lists is not None:
            insort(lists[ia], ib)
            insort(lists[ib], ia)
        degs = self._degs
        if degs is not None:
            degs[ia] += 1
            degs[ib] += 1

    def add_clique(self, vars_: Iterable[str]) -> None:
        # Bulk mask unions: O(k) word operations instead of O(k^2)
        # add_edge calls.  Callers routinely pass sets (boundary live
        # sets), so nodes not seen before are inserted in sorted order --
        # node order feeds downstream tie-breaks and must not depend on
        # hash salt.  Existing nodes keep their position, so the sort
        # covers only the (usually empty) set of new members.
        self._version += 1
        ids = self._ids
        members: Set[str] = set(vars_)
        new = [v for v in members if v not in ids]
        if new:
            new.sort()
            for v in new:
                self._intern(v)
        if len(members) < 2:
            return
        masks = self._masks
        lists = self._nbr_lists
        degs = self._degs
        mids = [ids[v] for v in members]
        clique = 0
        for i in mids:
            clique |= 1 << i
        for i in mids:
            delta = clique & ~(1 << i) & ~masks[i]
            if not delta:
                continue
            masks[i] |= delta
            if lists is None and degs is None:
                continue
            added = 0
            lst = lists[i] if lists is not None else None
            while delta:
                low = delta & -delta
                if lst is not None:
                    insort(lst, low.bit_length() - 1)
                added += 1
                delta ^= low
            if degs is not None:
                degs[i] += added

    def add_star(self, var: str, others: Iterable[str]) -> None:
        """Insert *var* conflicting with every name in *others* (*var*
        itself skipped) -- a bulk ``add_edge`` loop: one mask union for
        *var*, one bit OR per counterpart.  Unseen names are interned in
        iteration order, exactly as the equivalent ``add_edge`` sequence
        would, so node order (which feeds downstream tie-breaks) is
        unchanged."""
        self._version += 1
        i = self._intern(var)
        ids = self._ids
        masks = self._masks
        star = 0
        for o in others:
            oi = ids.get(o)
            if oi is None:
                oi = self._intern(o)
            star |= 1 << oi
        star &= ~(1 << i)
        new = star & ~masks[i]
        if not new:
            return
        masks[i] |= new
        vbit = 1 << i
        lists = self._nbr_lists
        degs = self._degs
        vlst = lists[i] if lists is not None else None
        added = 0
        while new:
            low = new & -new
            o = low.bit_length() - 1
            masks[o] |= vbit
            if lists is not None:
                insort(lists[o], i)
                insort(vlst, o)
            if degs is not None:
                degs[o] += 1
            added += 1
            new ^= low
        if degs is not None:
            degs[i] += added

    def add_conflicts_all(self, var: str) -> None:
        """Insert *var* (appended to node order if new) conflicting with
        every node already in the graph -- the phase-2 intruder insertion,
        in bulk: one mask union for *var*, one bit OR per existing node."""
        self._version += 1
        masks = self._masks
        i = self._intern(var)
        vbit = 1 << i
        star = 0
        for o in masks:
            star |= 1 << o
        star &= ~vbit
        new = star & ~masks[i]
        masks[i] |= star
        lists = self._nbr_lists
        degs = self._degs
        vlst = lists[i] if lists is not None else None
        added = 0
        while new:
            low = new & -new
            o = low.bit_length() - 1
            masks[o] |= vbit
            if lists is not None:
                insort(lists[o], i)
                insort(vlst, o)
            if degs is not None:
                degs[o] += 1
            added += 1
            new ^= low
        if degs is not None and added:
            degs[i] += added

    def remove_node(self, var: str) -> None:
        i = self._ids.pop(var, None)
        if i is None:
            return
        self._version += 1
        self._names.pop(i)
        masks = self._masks
        mask = masks.pop(i)
        clear = ~(1 << i)
        lists = self._nbr_lists
        degs = self._degs
        if lists is not None:
            lists.pop(i, None)
        if degs is not None:
            degs.pop(i, None)
        while mask:
            low = mask & -mask
            o = low.bit_length() - 1
            masks[o] &= clear
            if lists is not None:
                lists[o].remove(i)
            if degs is not None:
                degs[o] -= 1
            mask ^= low

    def merge_from(self, other: "InterferenceGraph") -> None:
        for var in other.nodes():
            self.add_node(var)
        for a, b in other.edges():
            self.add_edge(a, b)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def nodes(self) -> List[str]:
        return list(self._ids)

    def __contains__(self, var: str) -> bool:
        return var in self._ids

    def __len__(self) -> int:
        return len(self._ids)

    def _neighbor_names(self, i: int) -> Set[str]:
        names = self._names
        out: Set[str] = set()
        add = out.add
        mask = self._masks[i]
        while mask:
            low = mask & -mask
            add(names[low.bit_length() - 1])
            mask ^= low
        return out

    def neighbors(self, var: str) -> Set[str]:
        i = self._ids.get(var)
        if i is None:
            return set()
        return self._neighbor_names(i)

    def degree(self, var: str) -> int:
        i = self._ids.get(var)
        return 0 if i is None else self._masks[i].bit_count()

    def edges(self) -> Iterator[Tuple[str, str]]:
        # Neighbour masks are decoded and sorted so the yield order
        # depends only on node insertion order, never on the hash salt.
        seen = set()
        for a, i in self._ids.items():
            for b in sorted(self._neighbor_names(i)):
                key = (a, b) if a <= b else (b, a)
                if key not in seen:
                    seen.add(key)
                    yield key

    def edge_count(self) -> int:
        return sum(m.bit_count() for m in self._masks.values()) // 2

    def interferes(self, a: str, b: str) -> bool:
        ids = self._ids
        ia = ids.get(a)
        ib = ids.get(b)
        return (
            ia is not None and ib is not None
            and bool(self._masks[ia] >> ib & 1)
        )

    def clone(self) -> "InterferenceGraph":
        """Independent structural copy (same ids, same node order).

        Mutations on either copy never reach the other; the per-tile
        memoization layer clones a cached pristine graph before phase 2
        adds intruders/temporaries to it.  Memos are left cold -- they
        rebuild on demand.
        """
        out = InterferenceGraph()
        out._ids = dict(self._ids)
        out._names = dict(self._names)
        out._masks = dict(self._masks)
        out._next = self._next
        return out

    def subgraph(self, keep: Set[str]) -> "InterferenceGraph":
        """Induced subgraph on ``keep`` (nodes absent from the graph are
        ignored).  One mask AND per kept node; ids are preserved, and node
        order follows this graph's (canonical) insertion order."""
        out = InterferenceGraph()
        masks = self._masks
        o_ids = out._ids
        o_names = out._names
        o_masks = out._masks
        # ``keep`` is usually a freshly-built (hash-ordered) set, so it
        # must not drive the iteration.  Walking ``self._ids`` instead
        # inherits this graph's insertion order, which construction keeps
        # canonical -- the induced graph's node order (and everything
        # keyed off it downstream) is then canonical without a sort.
        keep_mask = 0
        kept: List[Tuple[str, int]] = []
        for var, i in self._ids.items():
            if var in keep:
                kept.append((var, i))
                keep_mask |= 1 << i
        for var, i in kept:
            o_ids[var] = i
            o_names[i] = var
            o_masks[i] = masks[i] & keep_mask
        out._next = self._next
        # Ids are preserved, so the parent's memos transfer: ranks restricted
        # to the kept subset order exactly like the subset's own sorted-name
        # positions (only kept ids are ever looked up), and neighbour lists
        # filter down instead of re-decoding masks bit by bit.  Computing
        # them *via the parent* memoizes on the parent, so the repeated
        # subgraphs of one recolor loop pay the sort/decode once.
        out._ranks = self.name_ranks()
        out._rank_version = 0
        out._rank_arr = self.name_rank_array()
        out._rank_arr_version = 0
        p_lists = self.neighbor_ids()
        out._nbr_lists = {
            i: [o for o in p_lists[i] if keep_mask >> o & 1]
            for _, i in kept
        }
        out._degs = {i: len(l) for i, l in out._nbr_lists.items()}
        return out

    # ------------------------------------------------------------------
    # id-level access (the flat cold path)
    # ------------------------------------------------------------------
    def node_ids(self) -> Dict[str, int]:
        """name -> local id, in node insertion order -- treat as read-only."""
        return self._ids

    def id_names(self) -> Dict[int, str]:
        """local id -> name -- treat as read-only."""
        return self._names

    def id_masks(self) -> Dict[int, int]:
        """local id -> neighbour bitmask -- treat as read-only."""
        return self._masks

    def neighbor_ids(self) -> Dict[int, List[int]]:
        """local id -> neighbour ids as a list, ascending -- treat as
        read-only.  Decoded from the masks once, then kept exactly in
        sync by the mutators: the coloring engine hits every neighbour of
        every node once per run, and the same graph is colored several
        times (recolor rounds, then phase 2) with a few temp-node
        insertions in between, so the decode is paid once per graph
        instead of once per round."""
        if self._nbr_lists is None:
            out: Dict[int, List[int]] = {}
            for i, mask in self._masks.items():
                lst: List[int] = []
                append = lst.append
                while mask:
                    low = mask & -mask
                    append(low.bit_length() - 1)
                    mask ^= low
                out[i] = lst
            self._nbr_lists = out
        return self._nbr_lists

    def degree_map(self) -> Dict[int, int]:
        """``id -> degree`` for every node -- treat as read-only.  Built
        once, then maintained incrementally by the mutators; the coloring
        engine copies it instead of re-counting mask bits per round."""
        if self._degs is None:
            if self._nbr_lists is not None:
                self._degs = {i: len(l) for i, l in self._nbr_lists.items()}
            else:
                self._degs = {
                    i: m.bit_count() for i, m in self._masks.items()
                }
        return self._degs

    def name_ranks(self) -> Tuple[Dict[int, int], List[int]]:
        """``(id -> rank, rank -> id)`` over all nodes sorted by name.
        Ranks restricted to any subset order exactly like the subset's own
        sorted-name positions (a strictly monotone map), so the coloring
        engine's heaps reuse these across recolor rounds and both phases
        instead of re-sorting per call.  Memoized until the next mutation."""
        if self._ranks is None or self._rank_version != self._version:
            by_rank = [self._ids[name] for name in sorted(self._ids)]
            rank = {i: r for r, i in enumerate(by_rank)}
            self._ranks = (rank, by_rank)
            self._rank_version = self._version
        return self._ranks

    def name_rank_array(self) -> List[int]:
        """``id -> rank`` as a dense list indexed by id (``-1`` in holes
        left by removed nodes; length ``_next``) -- treat as read-only.
        The coloring engine reads a rank per neighbour per decrement, so
        it wants list indexing, not a dict probe.  Like ``name_ranks``
        (whose dict this is built from) the memo survives until the next
        mutation and transfers through :meth:`subgraph` -- ids are
        preserved there, and only kept ids are ever looked up."""
        if self._rank_arr is None or self._rank_arr_version != self._version:
            rank, _ = self.name_ranks()
            arr = [-1] * self._next
            for i, r in rank.items():
                arr[i] = r
            self._rank_arr = arr
            self._rank_arr_version = self._version
        return self._rank_arr

    def csr(self):
        """The graph as CSR arrays ``(indptr, indices, degrees)``.

        Rows follow node insertion order; ``indices`` hold node *positions*
        (row numbers, not internal ids) sorted ascending per row.  All
        three are numpy ``int32`` arrays -- the flat export consumed by
        benches and array-level consumers without materializing per-node
        adjacency dicts.
        """
        import numpy as np

        pos = {i: p for p, i in enumerate(self._ids.values())}
        n = len(pos)
        indptr = np.zeros(n + 1, dtype=np.int32)
        degrees = np.zeros(n, dtype=np.int32)
        cols: List[int] = []
        for p, i in enumerate(self._ids.values()):
            mask = self._masks[i]
            row: List[int] = []
            while mask:
                low = mask & -mask
                row.append(pos[low.bit_length() - 1])
                mask ^= low
            row.sort()
            cols.extend(row)
            degrees[p] = len(row)
            indptr[p + 1] = len(cols)
        return indptr, np.asarray(cols, dtype=np.int32), degrees

    # ------------------------------------------------------------------
    # string facade
    # ------------------------------------------------------------------
    def adjacency(self) -> Dict[str, Set[str]]:
        """The adjacency as a name-keyed dict of neighbour-name sets,
        in node insertion order -- treat as read-only.  Materialized from
        the masks and memoized until the next mutation."""
        if self._str_adj is None or self._str_version != self._version:
            out: Dict[str, Set[str]] = {}
            for var, i in self._ids.items():
                out[var] = self._neighbor_names(i)
            self._str_adj = out
            self._str_version = self._version
        return self._str_adj

    def copy_adjacency(self) -> Dict[str, Set[str]]:
        return {
            var: self._neighbor_names(i) for var, i in self._ids.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InterferenceGraph |V|={len(self)} |E|={self.edge_count()}>"


def build_interference(
    fn: Function,
    liveness: Liveness,
    labels: Optional[Iterable[str]] = None,
    relevant: Optional[Set[str]] = None,
    budget=None,
) -> InterferenceGraph:
    """Chaitin-style conflict graph construction.

    Args:
        fn: the function.
        liveness: precomputed liveness for *fn*.
        labels: restrict construction to these blocks (a tile's
            ``blocks(t)``); defaults to the whole function.
        relevant: if given, only variables in this set become nodes; others
            are ignored entirely (the paper's tile graphs only represent
            variables referenced in the tile, see section 3).
        budget: optional :class:`~repro.core.budget.AllocationBudget`
            charged per visited block (instruction-weighted) and for the
            nodes/edges the finished graph carries.

    Every variable referenced in the visited blocks becomes a node even if
    it never conflicts.  At each definition the defined variables conflict
    with every relevant variable live after the instruction, with the
    classic copy exemption, and multiple definitions of one instruction
    conflict with each other.

    The construction runs over the bitsets of ``liveness``, and the
    resulting vid-space masks *are* the graph: node ids are the liveness
    ``VarIndex`` vids, so no remapping or string materialization happens
    at all -- one dict insert per node.
    """
    if labels is None:
        labels = list(fn.blocks)

    index = liveness.index
    intern = index.intern
    relevant_mask: Optional[int] = (
        None if relevant is None else index.mask_of(relevant)
    )

    node_mask = 0
    adj: Dict[int, int] = {}

    arena = getattr(liveness, "arena", None)
    if arena is not None and (arena.fn is not fn or arena.retired):
        arena = None

    if arena is not None:
        # Flat path: the def-point construction runs entirely over the
        # arena's precomputed per-instruction bitsets -- no operand-name
        # interning, no Instr attribute walks.  Same edges, same order.
        adj_get = adj.get
        block_id = arena.block_id
        block_start = arena.block_start
        i_ref = arena.i_ref
        i_written = arena.i_written
        i_exempt = arena.i_exempt
        i_written_vids = arena.i_written_vids
        for label in labels:
            bid = block_id[label]
            if budget is not None:
                budget.charge(
                    1 + block_start[bid + 1] - block_start[bid], "graph"
                )
            live_out_per_instr = liveness.instr_live_out_bits(label)
            start = block_start[bid]
            for k in range(block_start[bid + 1] - start):
                i = start + k
                referenced = i_ref[i]
                if relevant_mask is not None:
                    referenced &= relevant_mask
                node_mask |= referenced

                sibling_mask = i_written[i]
                if not sibling_mask:
                    continue
                targets = live_out_per_instr[k] & ~i_exempt[i]
                if relevant_mask is not None:
                    targets &= relevant_mask
                    sibling_mask &= relevant_mask
                for vid in i_written_vids[i]:
                    vbit = 1 << vid
                    if relevant_mask is not None and not (
                        vbit & relevant_mask
                    ):
                        continue
                    new = (targets | sibling_mask) & ~vbit
                    if new:
                        adj[vid] = adj_get(vid, 0) | new
    else:
        for label in labels:
            block = fn.blocks[label]
            if budget is not None:
                budget.charge(1 + len(block.instrs), "graph")
            live_out_per_instr = liveness.instr_live_out_bits(label)
            for instr, live_after in zip(block.instrs, live_out_per_instr):
                referenced = 0
                for var in instr.defs:
                    referenced |= 1 << intern(var)
                for var in instr.uses:
                    referenced |= 1 << intern(var)
                # Clobbered registers (calls) are written as a side
                # effect: they conflict with everything live across the
                # instruction.
                for var in instr.clobbers:
                    referenced |= 1 << intern(var)
                if relevant_mask is not None:
                    referenced &= relevant_mask
                node_mask |= referenced

                written = instr.defs + instr.clobbers
                if not written:
                    continue
                exempt_mask = (
                    1 << intern(instr.uses[0]) if instr.is_copy_like else 0
                )
                targets = live_after & ~exempt_mask
                sibling_mask = 0
                for var in written:
                    sibling_mask |= 1 << intern(var)
                if relevant_mask is not None:
                    targets &= relevant_mask
                    sibling_mask &= relevant_mask
                for var in written:
                    vid = intern(var)
                    vbit = 1 << vid
                    if relevant_mask is not None and not (vbit & relevant_mask):
                        continue
                    new = (targets | sibling_mask) & ~vbit
                    if new:
                        adj[vid] = adj.get(vid, 0) | new

    # Live-after edges were recorded def-side only; mirror them so the
    # adjacency is symmetric (sibling cliques are already symmetric).  The
    # bit loops are inlined -- this is the hottest mask-decoding site and
    # generator resumption costs more than the loop body.
    adj_get = adj.get
    for vid in list(adj):
        vbit = 1 << vid
        mask = adj[vid]
        while mask:
            low = mask & -mask
            oid = low.bit_length() - 1
            adj[oid] = adj_get(oid, 0) | vbit
            mask ^= low

    # Lower the vid-space masks into the graph under *dense* local ids:
    # node order is the def-side first-touch order of ``adj`` followed by
    # edge-free referenced variables in vid order -- the same canonical
    # order the dict-of-sets construction produced.  The one-time remap
    # keeps every adjacency mask within a couple of machine words (vids
    # span the whole function, local ids only this graph), which is what
    # makes the coloring engine's bit loops word-cheap.
    graph = InterferenceGraph()
    gids = graph._ids
    gnames = graph._names
    gmasks = graph._masks
    name_of = index.name_of
    local: Dict[int, int] = {}
    vid_order: List[int] = list(adj)
    for vid in vid_order:
        local[vid] = len(local)
    while node_mask:
        low = node_mask & -node_mask
        vid = low.bit_length() - 1
        if vid not in local:
            local[vid] = len(local)
            vid_order.append(vid)
        node_mask ^= low
    local_get = local.__getitem__
    nbr_lists: Dict[int, List[int]] = {}
    for vid in vid_order:
        name = name_of(vid)
        i = local[vid]
        gids[name] = i
        gnames[i] = name
        mask = adj.get(vid, 0)
        new_mask = 0
        # This decode already touches every neighbour bit -- collect the
        # local ids as it goes so the graph is born with its neighbour
        # list / degree caches populated (ascending, same content the
        # lazy ``neighbor_ids`` decode would produce) instead of paying
        # a second bit-by-bit pass on first coloring.
        row: List[int] = []
        append = row.append
        while mask:
            low = mask & -mask
            o = local_get(low.bit_length() - 1)
            new_mask |= 1 << o
            append(o)
            mask ^= low
        row.sort()
        gmasks[i] = new_mask
        nbr_lists[i] = row
    graph._nbr_lists = nbr_lists
    graph._degs = {i: len(l) for i, l in nbr_lists.items()}
    graph._next = len(local)
    if budget is not None:
        # Bulk node/edge accounting: a high-degree clique burns fuel
        # proportional to the edges it actually materialized, even when
        # it came from few blocks.
        budget.charge(
            len(local) + sum(len(l) for l in nbr_lists.values()), "graph"
        )
    return graph
