"""Workloads: the paper's Figure 1, numeric kernels, random programs."""

from repro.workloads.figure1 import figure1, figure1_workload
from repro.workloads.kernels import (
    cond_sum,
    copy_heavy,
    reload_heavy,
    dot,
    hot_cold,
    matmul,
    nested_cond,
    quick_return,
    reduce_minmax,
    saxpy,
    stencil,
    unrolled_dot,
    all_kernel_workloads,
)
from repro.workloads.adversarial import (
    AdversarialCase,
    adversarial_corpus,
    deep_loop_nest,
    deep_minilang_source,
    high_degree_clique,
    irreducible_mesh,
    spill_churn,
)
from repro.workloads.generators import random_program, random_workload
from repro.workloads.minilang_fuzz import (
    random_minilang_source,
    random_minilang_workload,
)

__all__ = [
    "figure1",
    "figure1_workload",
    "dot",
    "saxpy",
    "matmul",
    "stencil",
    "reduce_minmax",
    "cond_sum",
    "copy_heavy",
    "reload_heavy",
    "nested_cond",
    "hot_cold",
    "quick_return",
    "unrolled_dot",
    "all_kernel_workloads",
    "random_program",
    "random_workload",
    "AdversarialCase",
    "adversarial_corpus",
    "deep_loop_nest",
    "deep_minilang_source",
    "high_degree_clique",
    "irreducible_mesh",
    "spill_churn",
    "random_minilang_source",
    "random_minilang_workload",
]
