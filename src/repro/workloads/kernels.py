"""Numeric kernels in the toy IR.

The shapes the paper's introduction motivates: loop nests (register pressure
from unrolling and scheduling), conditionals nested in loops (spill *inside*
the cold branch), values live across cold regions, and a quick-return
function (shrink-wrapping, section 6).

Each builder returns a :class:`~repro.ir.function.Function`;
:func:`all_kernel_workloads` pairs them with concrete inputs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function


def dot() -> Function:
    """Inner product of A and B."""
    b = FunctionBuilder("dot", params=["n"])
    b.block("entry")
    b.const("i", 0)
    b.const("s", 0)
    b.const("one", 1)
    b.br("head")
    b.block("head")
    b.cmplt("c", "i", "n")
    b.cbr("c", "body", "done")
    b.block("body")
    b.load("a", "A", "i")
    b.load("x", "B", "i")
    b.mul("p", "a", "x")
    b.add("s", "s", "p")
    b.add("i", "i", "one")
    b.br("head")
    b.block("done")
    b.ret("s")
    return b.finish()


def saxpy() -> Function:
    """Y[i] = a*X[i] + Y[i]."""
    b = FunctionBuilder("saxpy", params=["n", "a"])
    b.block("entry")
    b.const("i", 0)
    b.const("one", 1)
    b.br("head")
    b.block("head")
    b.cmplt("c", "i", "n")
    b.cbr("c", "body", "done")
    b.block("body")
    b.load("x", "X", "i")
    b.load("y", "Y", "i")
    b.mul("ax", "a", "x")
    b.add("r", "ax", "y")
    b.store("Y", "i", "r")
    b.add("i", "i", "one")
    b.br("head")
    b.block("done")
    b.const("z", 0)
    b.ret("z")
    return b.finish()


def matmul() -> Function:
    """C = A x B for n x n row-major matrices (three nested loops)."""
    b = FunctionBuilder("matmul", params=["n"])
    b.block("entry")
    b.const("i", 0)
    b.const("one", 1)
    b.br("ih")
    b.block("ih")
    b.cmplt("ci", "i", "n")
    b.cbr("ci", "jinit", "done")
    b.block("jinit")
    b.const("j", 0)
    b.br("jh")
    b.block("jh")
    b.cmplt("cj", "j", "n")
    b.cbr("cj", "kinit", "inext")
    b.block("kinit")
    b.const("k", 0)
    b.const("acc", 0)
    b.mul("irow", "i", "n")
    b.br("kh")
    b.block("kh")
    b.cmplt("ck", "k", "n")
    b.cbr("ck", "kbody", "jstore")
    b.block("kbody")
    b.add("ai", "irow", "k")
    b.load("av", "A", "ai")
    b.mul("krow", "k", "n")
    b.add("bi", "krow", "j")
    b.load("bv", "B", "bi")
    b.mul("prod", "av", "bv")
    b.add("acc", "acc", "prod")
    b.add("k", "k", "one")
    b.br("kh")
    b.block("jstore")
    b.add("ci2", "irow", "j")
    b.store("C", "ci2", "acc")
    b.add("j", "j", "one")
    b.br("jh")
    b.block("inext")
    b.add("i", "i", "one")
    b.br("ih")
    b.block("done")
    b.const("z", 0)
    b.ret("z")
    return b.finish()


def stencil() -> Function:
    """B[i] = A[i-1] + A[i] + A[i+1] over the interior."""
    b = FunctionBuilder("stencil", params=["n"])
    b.block("entry")
    b.const("i", 1)
    b.const("one", 1)
    b.sub("lim", "n", "one")
    b.br("head")
    b.block("head")
    b.cmplt("c", "i", "lim")
    b.cbr("c", "body", "done")
    b.block("body")
    b.sub("im1", "i", "one")
    b.add("ip1", "i", "one")
    b.load("l", "A", "im1")
    b.load("m", "A", "i")
    b.load("r", "A", "ip1")
    b.add("lm", "l", "m")
    b.add("sum", "lm", "r")
    b.store("B", "i", "sum")
    b.add("i", "i", "one")
    b.br("head")
    b.block("done")
    b.const("z", 0)
    b.ret("z")
    return b.finish()


def reduce_minmax() -> Function:
    """Simultaneous min and max reduction."""
    b = FunctionBuilder("reduce_minmax", params=["n"])
    b.block("entry")
    b.const("i", 0)
    b.const("one", 1)
    b.const("big", 1 << 30)
    b.const("small", -(1 << 30))
    b.copy("lo", "big")
    b.copy("hi", "small")
    b.br("head")
    b.block("head")
    b.cmplt("c", "i", "n")
    b.cbr("c", "body", "done")
    b.block("body")
    b.load("v", "A", "i")
    b.min_("lo", "lo", "v")
    b.max_("hi", "hi", "v")
    b.add("i", "i", "one")
    b.br("head")
    b.block("done")
    b.sub("range_", "hi", "lo")
    b.ret("range_")
    return b.finish()


def cond_sum() -> Function:
    """Sum positives, subtract negatives (if/else inside a loop)."""
    b = FunctionBuilder("cond_sum", params=["n"])
    b.block("entry")
    b.const("i", 0)
    b.const("s", 0)
    b.const("one", 1)
    b.const("zero", 0)
    b.br("head")
    b.block("head")
    b.cmplt("c", "i", "n")
    b.cbr("c", "body", "done")
    b.block("body")
    b.load("v", "A", "i")
    b.cmplt("neg", "v", "zero")
    b.cbr("neg", "ifneg", "ifpos")
    b.block("ifneg")
    b.sub("s", "s", "v")
    b.br("cont")
    b.block("ifpos")
    b.add("s", "s", "v")
    b.br("cont")
    b.block("cont")
    b.add("i", "i", "one")
    b.br("head")
    b.block("done")
    b.ret("s")
    return b.finish()


def nested_cond() -> Function:
    """The section-2 motivating case: a variable (``rare``) used only in a
    deeply nested, rarely executed conditional inside a hot loop.  A
    structure-aware allocator can keep it in memory in the cold branch
    without penalizing the hot path."""
    b = FunctionBuilder("nested_cond", params=["n"])
    b.block("entry")
    b.const("i", 0)
    b.const("one", 1)
    b.const("s", 0)
    b.const("k", 17)
    b.mul("rare", "n", "k")      # live across the whole loop, used rarely
    b.const("hund", 100)
    b.br("head")
    b.block("head")
    b.cmplt("c", "i", "n")
    b.cbr("c", "body", "done")
    b.block("body")
    b.load("v", "A", "i")
    b.add("s", "s", "v")
    b.mod("m", "v", "hund")
    b.cbr("m", "cont", "coldtest")   # m == 0 is rare
    b.block("coldtest")
    b.load("w", "A", "i")
    b.cmpgt("big", "w", "k")
    b.cbr("big", "cold", "cont")
    b.block("cold")
    b.add("s", "s", "rare")          # the only use of 'rare'
    b.br("cont")
    b.block("cont")
    b.add("i", "i", "one")
    b.br("head")
    b.block("done")
    b.add("out", "s", "rare")
    b.ret("out")
    return b.finish()


def hot_cold() -> Function:
    """A loop whose body branches between a tight hot path and a fat cold
    path needing many registers (spill placement test E5/E9)."""
    b = FunctionBuilder("hot_cold", params=["n"])
    b.block("entry")
    b.const("i", 0)
    b.const("one", 1)
    b.const("s", 0)
    b.const("seven", 7)
    b.br("head")
    b.block("head")
    b.cmplt("c", "i", "n")
    b.cbr("c", "body", "done")
    b.block("body")
    b.load("v", "A", "i")
    b.mod("sel", "v", "seven")
    b.cbr("sel", "hot", "cold")
    b.block("hot")
    b.add("s", "s", "v")
    b.br("cont")
    b.block("cold")
    b.load("a", "B", "i")
    b.load("x", "C", "i")
    b.mul("p1", "a", "v")
    b.mul("p2", "x", "v")
    b.add("p3", "p1", "p2")
    b.add("p4", "p3", "a")
    b.add("s", "s", "p4")
    b.br("cont")
    b.block("cont")
    b.add("i", "i", "one")
    b.br("head")
    b.block("done")
    b.ret("s")
    return b.finish()


def quick_return() -> Function:
    """Quick-return check followed by heavy computation (section 6's
    shrink-wrapping discussion: "a routine first has a quick return check
    and then does lots of computation")."""
    b = FunctionBuilder("quick_return", params=["n"])
    b.block("entry")
    b.const("zero", 0)
    b.cmple("trivial", "n", "zero")
    b.cbr("trivial", "fast", "slowinit")
    b.block("fast")
    b.ret("zero")
    b.block("slowinit")
    b.const("i", 0)
    b.const("one", 1)
    b.const("s0", 0)
    b.const("s1", 0)
    b.const("s2", 0)
    b.br("head")
    b.block("head")
    b.cmplt("c", "i", "n")
    b.cbr("c", "body", "slowdone")
    b.block("body")
    b.load("v", "A", "i")
    b.add("s0", "s0", "v")
    b.mul("vv", "v", "v")
    b.add("s1", "s1", "vv")
    b.mul("vvv", "vv", "v")
    b.add("s2", "s2", "vvv")
    b.add("i", "i", "one")
    b.br("head")
    b.block("slowdone")
    b.add("t01", "s0", "s1")
    b.add("t012", "t01", "s2")
    b.ret("t012")
    return b.finish()


def unrolled_dot() -> Function:
    """Dot product unrolled by four -- the introduction's motivation:
    "aggressive loop unrolling and operation scheduling ... increase
    register pressure"."""
    b = FunctionBuilder("unrolled_dot", params=["n"])
    b.block("entry")
    b.const("i", 0)
    b.const("one", 1)
    b.const("four", 4)
    b.const("s0", 0)
    b.const("s1", 0)
    b.const("s2", 0)
    b.const("s3", 0)
    b.sub("lim", "n", "four")
    b.br("head")
    b.block("head")
    b.cmple("c", "i", "lim")
    b.cbr("c", "body", "tailhead")
    b.block("body")
    for u in range(4):
        idx = "i" if u == 0 else f"iu{u}"
        if u:
            b.const(f"ku{u}", u)
            b.add(idx, "i", f"ku{u}")
        b.load(f"a{u}", "A", idx)
        b.load(f"b{u}", "B", idx)
        b.mul(f"p{u}", f"a{u}", f"b{u}")
        b.add(f"s{u}", f"s{u}", f"p{u}")
    b.add("i", "i", "four")
    b.br("head")
    b.block("tailhead")
    b.cmplt("ct", "i", "n")
    b.cbr("ct", "tail", "done")
    b.block("tail")
    b.load("at", "A", "i")
    b.load("bt", "B", "i")
    b.mul("pt", "at", "bt")
    b.add("s0", "s0", "pt")
    b.add("i", "i", "one")
    b.br("tailhead")
    b.block("done")
    b.add("t01", "s0", "s1")
    b.add("t23", "s2", "s3")
    b.add("tot", "t01", "t23")
    b.ret("tot")
    return b.finish()


def copy_heavy() -> Function:
    """Values shuffled through copies inside a loop: with preferencing the
    copies collapse onto one register and disappear; without it they
    survive as real register moves (section 3, "Preferencing")."""
    b = FunctionBuilder("copy_heavy", params=["n"])
    b.block("entry")
    b.const("i", 0)
    b.const("one", 1)
    b.const("acc", 0)
    b.br("head")
    b.block("head")
    b.cmplt("c", "i", "n")
    b.cbr("c", "body", "done")
    b.block("body")
    b.load("v", "A", "i")
    b.copy("w", "v")          # preference chain w=v, x=w, y=x
    b.copy("x", "w")
    b.copy("y", "x")
    b.add("acc", "acc", "y")
    b.copy("acc2", "acc")     # accumulator renaming through a copy
    b.copy("acc", "acc2")
    b.add("i", "i", "one")
    b.br("head")
    b.block("done")
    b.ret("acc")
    return b.finish()


def reload_heavy() -> Function:
    """An outer loop re-entering a *low-pressure* inner loop that reads a
    coefficient which the high-pressure interlude forces into memory at the
    outer level.  The Reload case fires on every inner-loop entry; with
    store avoidance the matching exit stores vanish because the coefficient
    is never modified inside (paper section 3, "Inserting Spill Code")."""
    b = FunctionBuilder("reload_heavy", params=["n"])
    b.block("entry")
    b.const("one", 1)
    b.const("three", 3)
    b.mul("c1", "n", "three")  # read-only coefficient
    b.copy("oi", "n")
    b.const("acc", 0)
    b.br("oh")
    b.block("oh")              # outer loop head
    b.copy("ii", "n")
    b.br("ih")
    b.block("ih")              # inner loop: exactly four referenced vars
    b.add("acc", "acc", "c1")
    b.sub("ii", "ii", "one")
    b.cbr("ii", "ih", "mid")
    b.block("mid")             # interlude with enough pressure to evict c1
    b.load("m1", "B", "oi")
    b.load("m2", "C", "oi")
    b.mul("m3", "m1", "m2")
    b.add("m4", "m3", "m1")
    b.sub("m5", "m4", "m2")
    b.add("acc", "acc", "m5")
    b.store("B", "oi", "acc")
    b.sub("oi", "oi", "one")
    b.cbr("oi", "oh", "post")
    b.block("post")
    b.ret("acc")
    return b.finish()


def sequential_loops(count: int) -> Function:
    """*count* independent loops in sequence, each with its own handful of
    local variables.  The whole-program conflict graph grows linearly with
    *count*; the largest tile graph stays constant -- the paper's "it is
    not necessary to construct the full conflict graph at any one time"."""
    b = FunctionBuilder("seqloops", params=["n"])
    b.block("entry")
    b.const("one", 1)
    b.const("acc", 0)
    b.br("h0")
    for k in range(count):
        head, body, nxt = f"h{k}", f"b{k}", f"h{k + 1}"
        b.block(head)
        b.copy(f"i{k}", "n")
        b.br(body)
        b.block(body)
        b.load(f"a{k}", "A", f"i{k}")
        b.mul(f"p{k}", f"a{k}", f"a{k}")
        b.add(f"q{k}", f"p{k}", f"a{k}")
        b.add("acc", "acc", f"q{k}")
        b.sub(f"i{k}", f"i{k}", "one")
        b.cbr(f"i{k}", body, nxt)
    b.block(f"h{count}")
    b.ret("acc")
    return b.finish()


def all_kernel_workloads(n: int = 12) -> List:
    """Every kernel paired with runnable inputs."""
    from repro.pipeline import Workload

    data = list(range(1, n + 1))
    alt = [((-1) ** i) * (i + 3) for i in range(n)]
    mat = list(range(1, n * n + 1))
    return [
        Workload(dot(), {"n": n}, {"A": data, "B": alt}, name="dot"),
        Workload(saxpy(), {"n": n, "a": 3}, {"X": data, "Y": alt}, name="saxpy"),
        Workload(matmul(), {"n": 4}, {"A": mat[:16], "B": mat[:16]}, name="matmul"),
        Workload(stencil(), {"n": n}, {"A": data}, name="stencil"),
        Workload(reduce_minmax(), {"n": n}, {"A": alt}, name="reduce_minmax"),
        Workload(cond_sum(), {"n": n}, {"A": alt}, name="cond_sum"),
        Workload(nested_cond(), {"n": n}, {"A": data}, name="nested_cond"),
        Workload(hot_cold(), {"n": n}, {"A": data, "B": alt, "C": data}, name="hot_cold"),
        Workload(quick_return(), {"n": n}, {"A": data}, name="quick_return"),
        Workload(unrolled_dot(), {"n": n}, {"A": data, "B": alt}, name="unrolled_dot"),
        Workload(copy_heavy(), {"n": n}, {"A": data}, name="copy_heavy"),
        Workload(
            reload_heavy(), {"n": min(n, 6)},
            {"A": data, "B": alt, "C": data}, name="reload_heavy",
        ),
    ]
