"""Adversarial workload corpus for the resource-governance harness.

Each family here is a seed-parameterized generator of inputs chosen to
stress one axis the budget layer must survive:

* :func:`deep_loop_nest` -- loop nests far past typical tile depths, so
  tile construction, phase 1/phase 2 walks and boundary planning see
  tall trees.
* :func:`irreducible_mesh` -- multi-entry cycles (irreducible CFGs) with
  cross edges, so tile construction falls back to ``"irreducible"``
  tiles and edge classification sees unstructured boundaries.
* :func:`high_degree_clique` -- many simultaneously-live variables, so
  the interference graph is a dense clique and coloring/spilling churn
  is maximal.
* :func:`spill_churn` -- live ranges threaded through a loop across many
  redefinition phases, so pressure repeatedly exceeds k and boundary
  spill code (Spill/Reload/Transfer) is planned over and over.
* :func:`deep_minilang_source` -- MiniLang sources nested past
  :data:`~repro.minilang.parser.MAX_PARSE_DEPTH`, so the front end must
  reject with a classified error instead of a raw ``RecursionError``.

Every generator is a pure function of its arguments (``random.Random``
seeded explicitly, no global state), so the corpus is bit-reproducible:
the survival harness and the determinism gate both rely on
``adversarial_corpus(seed)`` returning the same inputs every run.

All IR families produce *valid, terminating* functions -- every loop is
counted -- so they can be simulated as well as statically allocated.
The point is not malformed input (the validator owns that) but
well-formed input that is expensive: the budget layer must degrade or
reject it deterministically, never hang or die uncaught.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function

#: Family tags, in corpus order.
FAMILIES = (
    "deep_nest",
    "mesh",
    "clique",
    "churn",
    "minilang_nest",
)


@dataclass(frozen=True)
class AdversarialCase:
    """One corpus entry: either an IR function or a MiniLang source.

    Attributes:
        name: stable unique label (``family/seed`` based).
        family: one of :data:`FAMILIES`.
        fn: the IR function, for IR-level families.
        source: MiniLang text, for front-end families.
        expect_reject: True when a *correct* implementation refuses the
            input with a classified error even with no budget configured
            (currently: sources past the parser depth limit).  The
            survival harness treats a classified rejection of these as
            success, not failure.
    """

    name: str
    family: str
    fn: Optional[Function] = None
    source: Optional[str] = None
    expect_reject: bool = False


# ----------------------------------------------------------------------
# family 1: deep loop nests
# ----------------------------------------------------------------------
def deep_loop_nest(seed: int, depth: int = 24) -> Function:
    """A ``depth``-deep nest of counted single-trip loops.

    Each level defines a value before its loop and uses it after, so
    every tile boundary carries live values and phase 2 must plan
    transfers at every level.  Trip counts are all 1, so the program is
    simulable in O(depth) steps regardless of nesting.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    rng = random.Random(seed)
    b = FunctionBuilder(f"adv_deep_nest_s{seed}_d{depth}", params=["n"])
    b.block("entry")
    b.const("acc", rng.randint(-4, 4))
    heads: List[str] = []
    exits: List[str] = []
    for level in range(depth):
        head = f"head{level}"
        exit_ = f"exit{level}"
        heads.append(head)
        exits.append(exit_)
        counter = f"c{level}"
        b.const(counter, 1)
        b.br(head)
        b.block(head)
        # A value live across this level's backedge and into the exit.
        b.addi(f"lv{level}", "acc", rng.randint(1, 3))
    # Innermost body: fold a few of the level values back into acc.
    one = "one"
    b.const(one, 1)
    for level in rng.sample(range(depth), min(4, depth)):
        b.add("acc", "acc", f"lv{level}")
    # Close the loops innermost-first.
    for level in reversed(range(depth)):
        counter = f"c{level}"
        b.sub(counter, counter, one)
        b.cbr(counter, heads[level], exits[level])
        b.block(exits[level])
        b.add("acc", "acc", f"lv{level}")
    b.ret("acc")
    return b.finish()


# ----------------------------------------------------------------------
# family 2: irreducible meshes
# ----------------------------------------------------------------------
def irreducible_mesh(seed: int, size: int = 12) -> Function:
    """A ``size``-node cycle entered at two distinct points.

    The entry block branches (on a data-dependent condition) into two
    different nodes of one cycle, which makes the cycle irreducible: no
    single header dominates it, so tile construction cannot shape it as
    a loop tile and must fall back to an ``"irreducible"`` region.  Each
    node decrements a shared counter and exits when it hits zero, so the
    walk terminates after exactly ``trips`` node visits from either
    entry.  Accumulators threaded through every node keep values live
    around the whole mesh.
    """
    if size < 3:
        raise ValueError(f"size must be >= 3, got {size}")
    rng = random.Random(seed)
    trips = size + rng.randint(2, 6)
    b = FunctionBuilder(f"adv_mesh_s{seed}_n{size}", params=["n"])
    b.block("entry")
    b.const("c", trips)
    b.const("one", 1)
    b.const("acc", 0)
    b.const("alt", rng.randint(1, 5))
    b.const("two", 2)
    # Data-dependent double entry into the cycle: n < 2 picks m1, else m0.
    b.cmplt("pick", "n", "two")
    b.cbr("pick", "m1", "m0")
    for i in range(size):
        nxt = f"m{(i + 1) % size}"
        b.block(f"m{i}")
        if i % 2 == 0:
            b.add("acc", "acc", "alt")
        else:
            b.sub("alt", "acc", "one")
        b.sub("c", "c", "one")
        b.cbr("c", nxt, "mexit")
    b.block("mexit")
    b.add("acc", "acc", "alt")
    b.ret("acc")
    return b.finish()


# ----------------------------------------------------------------------
# family 3: high-degree cliques
# ----------------------------------------------------------------------
def high_degree_clique(seed: int, width: int = 48) -> Function:
    """``width`` variables all live at once: a width-clique in the
    interference graph.

    All values are defined up front and every one is consumed only by a
    final reduction chain, so between the last definition and the first
    use the live set has exactly ``width`` members -- with k registers,
    ``width - k`` of them must spill, and the conflict graph has
    ``width * (width - 1) / 2`` edges.  A single-trip loop between the
    definitions and the uses forces the live ranges across tile
    boundaries too.
    """
    if width < 2:
        raise ValueError(f"width must be >= 2, got {width}")
    rng = random.Random(seed)
    b = FunctionBuilder(f"adv_clique_s{seed}_w{width}", params=["n"])
    b.block("entry")
    for i in range(width):
        b.const(f"x{i}", rng.randint(-16, 16))
    b.const("lc", 1)
    b.const("lone", 1)
    b.br("lhead")
    b.block("lhead")
    # Touch n inside the loop so the loop tile is not empty of references.
    b.add("x0", "x0", "n")
    b.sub("lc", "lc", "lone")
    b.cbr("lc", "lhead", "reduce")
    b.block("reduce")
    b.copy("s", "x0")
    order = list(range(1, width))
    rng.shuffle(order)
    for i in order:
        b.add("s", "s", f"x{i}")
    b.ret("s")
    return b.finish()


# ----------------------------------------------------------------------
# family 4: spill churn
# ----------------------------------------------------------------------
def spill_churn(seed: int, phases: int = 12, width: int = 10) -> Function:
    """Wave after wave of redefinition inside one loop.

    The loop body runs ``phases`` phases; phase *p* defines ``width``
    fresh values from phase *p-1*'s values, so at every phase boundary
    two full generations overlap and pressure spikes past k.  All of the
    last phase's values are also live around the backedge (they feed
    phase 0 of the next iteration), so boundary spill code is planned at
    the loop entry and exit on every allocation, and recoloring sees a
    graph that shifts phase by phase.
    """
    if phases < 2:
        raise ValueError(f"phases must be >= 2, got {phases}")
    if width < 2:
        raise ValueError(f"width must be >= 2, got {width}")
    rng = random.Random(seed)
    trips = rng.randint(2, 4)
    b = FunctionBuilder(f"adv_churn_s{seed}_p{phases}_w{width}", params=["n"])
    b.block("entry")
    for i in range(width):
        b.const(f"g{i}", rng.randint(-8, 8))
    b.const("cc", trips)
    b.const("cone", 1)
    b.br("chead")
    b.block("chead")
    prev = [f"g{i}" for i in range(width)]
    for p in range(phases):
        cur = [f"p{p}_{i}" for i in range(width)]
        for i, dst in enumerate(cur):
            a = prev[i]
            c = prev[(i + 1 + rng.randrange(width - 1)) % width]
            if rng.random() < 0.5:
                b.add(dst, a, c)
            else:
                b.sub(dst, a, c)
        prev = cur
    # Feed the last generation back into the loop-carried names.
    for i in range(width):
        b.copy(f"g{i}", prev[i])
    b.sub("cc", "cc", "cone")
    b.cbr("cc", "chead", "cexit")
    b.block("cexit")
    b.copy("out", "g0")
    for i in range(1, width):
        b.add("out", "out", f"g{i}")
    b.ret("out")
    return b.finish()


# ----------------------------------------------------------------------
# family 5: deep MiniLang nesting (front-end attack)
# ----------------------------------------------------------------------
def deep_minilang_source(seed: int, depth: int = 200) -> str:
    """MiniLang source with ``depth`` nested statements.

    Alternates ``if`` and (never-executing) ``while`` nesting by seed.
    At ``depth`` past :data:`~repro.minilang.parser.MAX_PARSE_DEPTH` the
    parser must raise a classified ``MiniLangError``; below it, the
    program compiles and runs normally (the whiles guard on a condition
    that is false at runtime, so execution cost stays trivial).
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    rng = random.Random(seed)
    opens: List[str] = []
    closes: List[str] = []
    for _ in range(depth):
        if rng.random() < 0.5:
            opens.append("if (a + 1) {")
        else:
            opens.append("while (a < 0 - 1) {")
        closes.append("}")
    body = "\n".join(opens) + "\na = a + 1;\n" + "\n".join(closes)
    return f"func adv_nest_s{seed}_d{depth}(a) {{\n{body}\nreturn a;\n}}\n"


# ----------------------------------------------------------------------
# the corpus
# ----------------------------------------------------------------------
def adversarial_corpus(seed: int, scale: int = 1) -> List[AdversarialCase]:
    """The full survival corpus for one seed.

    ``scale`` multiplies the size knobs (nest depth, mesh size, clique
    width, churn phases); ``scale=1`` is sized so an *unbudgeted* run
    still finishes in seconds -- the harness proves governance, and a
    corpus that only a budget can survive would make failures ambiguous.
    Deterministic: same ``(seed, scale)``, same corpus, bit for bit.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    rng = random.Random(seed)
    sub = [rng.randrange(1 << 30) for _ in range(len(FAMILIES))]
    cases = [
        AdversarialCase(
            name=f"deep_nest/s{sub[0]}",
            family="deep_nest",
            fn=deep_loop_nest(sub[0], depth=16 * scale),
        ),
        AdversarialCase(
            name=f"mesh/s{sub[1]}",
            family="mesh",
            fn=irreducible_mesh(sub[1], size=10 * scale),
        ),
        AdversarialCase(
            name=f"clique/s{sub[2]}",
            family="clique",
            fn=high_degree_clique(sub[2], width=32 * scale),
        ),
        AdversarialCase(
            name=f"churn/s{sub[3]}",
            family="churn",
            fn=spill_churn(sub[3], phases=8 * scale, width=8),
        ),
        # One source below the parser limit (must compile) and one past
        # it (must be rejected with a classified MiniLangError).
        AdversarialCase(
            name=f"minilang_nest/s{sub[4]}/shallow",
            family="minilang_nest",
            source=deep_minilang_source(sub[4], depth=24),
        ),
        AdversarialCase(
            name=f"minilang_nest/s{sub[4]}/deep",
            family="minilang_nest",
            source=deep_minilang_source(sub[4], depth=300),
            expect_reject=True,
        ),
    ]
    return cases
