"""The paper's Figure 1 example.

Two sequential loops and four interesting variables: ``g1`` is used in the
first loop and after the second; ``g2`` is used in the second loop and at
the end; ``t1``/``t2`` are loop-local temporaries.  On a machine without
enough registers, "Chaitin's allocator will spill either g1 or g2 for the
entire program resulting in the poor execution of one of the loops", while
the optimal allocation "requires g2 to be spilled before B2 and reloaded
before B3; g1 should be spilled after B2".

The paper draws the example for a two-register machine over schematic code
with no loop plumbing.  Our concrete IR must materialize loop counters and
the constant 1, so the register-starved configuration is **four** registers
(see DESIGN.md): each loop body references exactly four variables, and the
variables live across a loop but unreferenced inside it (``g2`` and ``n``
across the first loop, ``g1`` across the second) are the ones a structure-
aware allocator should spill *around* the loop rather than everywhere.
"""

from __future__ import annotations

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function

#: Register count at which Figure 1's dilemma appears in our IR.
FIGURE1_REGISTERS = 4


def figure1() -> Function:
    """Build the Figure 1 program."""
    b = FunctionBuilder("figure1", params=["n"])
    b.block("B1")
    b.const("one", 1)
    b.add("g1", "n", "one")       # g1 = ...
    b.mul("g2", "n", "n")         # g2 = ...
    b.copy("i1", "n")
    b.br("B2")

    # First loop (tile T1): references g1, t1, i1, one.
    # g2 and n are live through but unreferenced.
    b.block("B2")
    b.mul("t1", "g1", "i1")       # ... g1 ...; t1 = ...
    b.store("A", "i1", "t1")      # ... t1 ...
    b.add("g1", "g1", "t1")
    b.sub("i1", "i1", "one")
    b.cbr("i1", "B2", "MID")

    b.block("MID")
    b.copy("i2", "n")
    b.br("B3")

    # Second loop (tile T2): references g2, t2, i2, one.
    # g1 is live through but unreferenced.
    b.block("B3")
    b.mul("t2", "g2", "i2")       # ... g2 ...; t2 = ...
    b.store("B", "i2", "t2")      # ... t2 ...
    b.add("g2", "g2", "t2")
    b.sub("i2", "i2", "one")
    b.cbr("i2", "B3", "B4")

    b.block("B4")
    b.add("r", "g1", "g2")        # ... g1 ... g2 ...
    b.ret("r")
    return b.finish()


def figure1_workload(n: int = 10):
    """The Figure 1 program with inputs (avoids a circular import by
    creating the Workload lazily)."""
    from repro.pipeline import Workload

    return Workload(figure1(), args={"n": n}, arrays={}, name="figure1")
