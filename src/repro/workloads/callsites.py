"""Caller/callee pairs for the call-related experiments (E13, tests)."""

from __future__ import annotations

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function


def make_callee() -> Function:
    """``clampv(x, lim) = min(x, lim)`` via a conditional -- a small leaf
    function whose body contains control structure, so inlining it brings
    a tile of its own."""
    b = FunctionBuilder("clampv", params=["x", "lim"])
    b.block("c_entry")
    b.cmplt("lt", "x", "lim")
    b.cbr("lt", "c_low", "c_high")
    b.block("c_low")
    b.ret("x")
    b.block("c_high")
    b.ret("lim")
    return b.finish()


def make_caller(calls: int = 1) -> Function:
    """A hot loop applying ``clampv`` *calls* times per iteration."""
    b = FunctionBuilder("caller", params=["n"])
    b.block("entry")
    b.const("i", 0)
    b.const("s", 0)
    b.const("one", 1)
    b.const("lim", 5)
    b.br("head")
    b.block("head")
    b.cmplt("c", "i", "n")
    b.cbr("c", "body", "done")
    b.block("body")
    b.load("v", "A", "i")
    prev = "v"
    for k in range(calls):
        b.call([f"cv{k}"], "clampv", [prev, "lim"])
        prev = f"cv{k}"
    b.add("s", "s", prev)
    b.add("i", "i", "one")
    b.br("head")
    b.block("done")
    b.ret("s")
    return b.finish()
