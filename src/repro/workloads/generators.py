"""Random structured program generator.

Produces *executable, always-terminating* programs for property-based
testing and scaling benches: every loop is a counted do-while on a fresh
counter, every use refers to an already-defined variable, and every array
index is taken modulo a small bound so memory accesses stay in range.

The generator emits the same structural repertoire the tile tree is built
from -- sequences, counted loops (nestable), and if/else diamonds -- so it
exercises tile construction, fix-up, and spill placement broadly.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instructions import Opcode

_BIN_OPS = [
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.ADD,
    Opcode.MIN,
    Opcode.MAX,
]


class _Gen:
    def __init__(self, rng: random.Random, max_blocks: int, max_vars: int,
                 max_depth: int, break_prob: float = 0.0) -> None:
        self.rng = rng
        self.max_blocks = max_blocks
        self.max_vars = max_vars
        self.max_depth = max_depth
        self.break_prob = break_prob
        self.builder: Optional[FunctionBuilder] = None
        self.defined: set = set()
        self.counter = 0
        self.blocks = 0
        #: exit labels of the enclosing loops, innermost last; breaks jump
        #: to one of them (possibly several levels out, which is exactly
        #: what the Figure 3 fix-up exists for).
        self.loop_exits: List[str] = []
        #: per enclosing loop: the defined-variable snapshots taken at each
        #: break targeting that loop's exit (a break bypasses the rest of
        #: the body, so only these variables are definite at the exit).
        self.break_snapshots: List[List[set]] = []

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def new_label(self, prefix: str) -> str:
        self.blocks += 1
        return f"{prefix}_{self.blocks}"

    def pick_var(self) -> str:
        return self.rng.choice(sorted(self.defined))

    def def_var(self) -> str:
        # Reuse an existing variable name sometimes so webs appear.
        if self.defined and len(self.defined) >= self.max_vars:
            return self.pick_var()
        if self.defined and self.rng.random() < 0.3:
            return self.pick_var()
        var = self.fresh("v")
        self.defined.add(var)
        return var

    def emit_straight(self, count: int) -> None:
        b = self.builder
        for _ in range(count):
            roll = self.rng.random()
            if roll < 0.15:
                b.const(self.def_var(), self.rng.randint(-8, 8))
            elif roll < 0.30:
                idx = self.fresh("ix")
                b.mod(idx, self.pick_var(), self.modulus)
                sink = self.def_var()
                b.load(sink, "A", idx)
            elif roll < 0.42:
                idx = self.fresh("ix")
                b.mod(idx, self.pick_var(), self.modulus)
                b.store("B", idx, self.pick_var())
            elif roll < 0.5:
                # Pick the source before creating the destination, or a
                # fresh destination could name its own operand.
                src = self.pick_var()
                b.copy(self.def_var(), src)
            else:
                op = self.rng.choice(_BIN_OPS)
                from repro.ir.instructions import make_binary

                lhs = self.pick_var()
                rhs = self.pick_var()
                b.emit(make_binary(op, self.def_var(), lhs, rhs))

    def emit_region(self, depth: int) -> None:
        """A sequence of statements / loops / conditionals."""
        b = self.builder
        pieces = self.rng.randint(1, 3)
        for _ in range(pieces):
            if self.blocks >= self.max_blocks:
                self.emit_straight(1)
                continue
            roll = self.rng.random()
            if depth < self.max_depth and roll < 0.35:
                self.emit_loop(depth)
            elif depth < self.max_depth and roll < 0.65:
                self.emit_cond(depth)
            else:
                self.emit_straight(self.rng.randint(1, 4))

    def emit_loop(self, depth: int) -> None:
        b = self.builder
        counter = self.fresh("lc")
        one = self.fresh("k")
        trips = self.rng.randint(1, 4)
        head = self.new_label("loop")
        exit_ = self.new_label("lexit")
        b.const(counter, trips)
        b.const(one, 1)
        b.br(head)
        b.block(head)
        self.loop_exits.append(exit_)
        self.break_snapshots.append([])
        self.emit_straight(self.rng.randint(1, 3))
        if depth + 1 < self.max_depth and self.rng.random() < 0.4:
            self.emit_region(depth + 1)
        self.loop_exits.pop()
        snapshots = self.break_snapshots.pop()
        b.sub(counter, counter, one)
        b.cbr(counter, head, exit_)
        b.block(exit_)
        for snapshot in snapshots:
            self.defined &= snapshot

    def emit_cond(self, depth: int) -> None:
        # Definedness is path-sensitive: a variable first defined in only
        # one branch may not be used after the join.
        b = self.builder
        cond = self.fresh("cd")
        then_l = self.new_label("then")
        else_l = self.new_label("else")
        join_l = self.new_label("join")
        b.cmplt(cond, self.pick_var(), self.pick_var())
        b.cbr(cond, then_l, else_l)
        before = set(self.defined)
        b.block(then_l)
        breaks = (
            self.loop_exits
            and self.rng.random() < self.break_prob
        )
        if breaks:
            # A break: jump straight to the exit of some enclosing loop --
            # potentially several tile levels out.
            self.emit_straight(1)
            index = self.rng.randrange(len(self.loop_exits))
            self.break_snapshots[index].append(set(self.defined))
            b.br(self.loop_exits[index])
            after_then = None
        else:
            self.emit_region(depth + 1)
            b.br(join_l)
            after_then = set(self.defined)
        self.defined = set(before)
        b.block(else_l)
        self.emit_region(depth + 1)
        b.br(join_l)
        after_else = set(self.defined)
        b.block(join_l)
        if after_then is None:
            # The break path never reaches the join.
            self.defined = after_else
        else:
            self.defined = before | (after_then & after_else)

    def generate(self, name: str) -> Function:
        self.modulus = "md"
        b = FunctionBuilder(name, params=["n"])
        self.builder = b
        b.block(self.new_label("entry"))
        b.const("md", 8)
        self.defined = {"n", "md"}
        b.const(self.def_var(), 1)
        b.const(self.def_var(), 2)
        self.emit_region(0)
        # Return a value derived from several live variables.
        total = self.fresh("ret")
        b.const(total, 0)
        picks = self.rng.sample(
            sorted(self.defined), k=min(3, len(self.defined))
        )
        acc = total
        for var in picks:
            nxt = self.fresh("ret")
            b.add(nxt, acc, var)
            acc = nxt
        b.ret(acc)
        return b.finish()


def random_program(
    seed: int,
    max_blocks: int = 24,
    max_vars: int = 14,
    max_depth: int = 3,
    break_prob: float = 0.0,
    name: Optional[str] = None,
) -> Function:
    """A random structured, terminating, executable program.

    With ``break_prob > 0`` conditionals inside loops sometimes branch
    straight to an enclosing loop's exit (possibly several levels out),
    producing the edge shapes that require Figure 3 fix-up blocks.
    """
    rng = random.Random(seed)
    gen = _Gen(
        rng,
        max_blocks=max_blocks,
        max_vars=max_vars,
        max_depth=max_depth,
        break_prob=break_prob,
    )
    return gen.generate(name or f"rand{seed}")


def random_workload(seed: int, **kwargs):
    """A random program paired with inputs."""
    from repro.pipeline import Workload

    fn = random_program(seed, **kwargs)
    rng = random.Random(seed ^ 0x5EED)
    arrays = {"A": [rng.randint(-9, 9) for _ in range(8)], "B": [0] * 8}
    return Workload(fn, {"n": rng.randint(1, 9)}, arrays, name=fn.name)
