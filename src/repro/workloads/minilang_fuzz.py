"""Random MiniLang source generator.

Complements :mod:`repro.workloads.generators` (which builds IR directly):
fuzzing at the source level additionally exercises the front end, lexical
scoping/shadowing, logical operators, and the optimizer, and produces IR
shapes the direct generator never emits (deep temp chains from expression
lowering).

All generated programs terminate: loops count a fresh variable down from a
small constant, and `while` conditions are exactly those counters.
"""

from __future__ import annotations

import random
from typing import List, Optional

_BINOPS = ["+", "-", "*", "+", "%"]
_CMPOPS = ["<", "<=", "==", "!=", ">", ">="]


class _SourceGen:
    def __init__(self, rng: random.Random, max_depth: int, max_stmts: int) -> None:
        self.rng = rng
        self.max_depth = max_depth
        self.max_stmts = max_stmts
        self.counter = 0
        self.scopes: List[List[str]] = [["n"]]
        #: loop counters; never reassigned, so loops always terminate.
        self.protected: set = set()
        self.loop_depth = 0
        self.lines: List[str] = []
        self.emitted = 0

    # ------------------------------------------------------------------
    def fresh(self) -> str:
        self.counter += 1
        return f"v{self.counter}"

    def visible(self) -> List[str]:
        out: List[str] = []
        for scope in self.scopes:
            out.extend(scope)
        return out

    def pick(self) -> str:
        return self.rng.choice(self.visible())

    def pick_assignable(self) -> Optional[str]:
        candidates = [
            v for v in self.visible()
            if v not in self.protected and v != "n"
        ]
        return self.rng.choice(candidates) if candidates else None

    def emit(self, depth: int, text: str) -> None:
        self.lines.append("    " * (depth + 1) + text)
        self.emitted += 1

    # ------------------------------------------------------------------
    def expr(self, depth: int = 0) -> str:
        roll = self.rng.random()
        if depth >= 2 or roll < 0.3:
            if self.rng.random() < 0.5:
                return str(self.rng.randint(0, 9))
            return self.pick()
        if roll < 0.45:
            index = self.pick()
            return f"A[{index} % 8]"
        if roll < 0.62:
            return f"(-{self.expr(depth + 1)})"
        if roll < 0.72:
            op = self.rng.choice(_CMPOPS)
            return f"({self.expr(depth + 1)} {op} {self.expr(depth + 1)})"
        if roll < 0.78:
            gate = self.rng.choice(["&&", "||"])
            return f"({self.expr(depth + 1)} {gate} {self.expr(depth + 1)})"
        op = self.rng.choice(_BINOPS)
        if op == "%":
            return f"({self.expr(depth + 1)} % 7)"
        return f"({self.expr(depth + 1)} {op} {self.expr(depth + 1)})"

    # ------------------------------------------------------------------
    def statement(self, depth: int) -> None:
        roll = self.rng.random()
        if self.emitted >= self.max_stmts:
            roll = 1.0  # force a simple statement
        if depth < self.max_depth and roll < 0.2:
            self.while_loop(depth)
        elif depth < self.max_depth and roll < 0.45:
            self.if_stmt(depth)
        elif roll < 0.6:
            # Initializer first: the new name is not in scope inside it.
            init = self.expr()
            name = self.fresh()
            self.scopes[-1].append(name)
            self.emit(depth, f"var {name} = {init};")
        elif roll < 0.75:
            target = self.pick_assignable()
            if target is None:
                self.emit(depth, f"B[{self.pick()} % 8] = {self.expr()};")
            else:
                self.emit(depth, f"{target} = {self.expr()};")
        else:
            self.emit(depth, f"B[{self.pick()} % 8] = {self.expr()};")

    def body(self, depth: int, min_stmts: int = 1) -> None:
        self.scopes.append([])
        for _ in range(self.rng.randint(min_stmts, 3)):
            self.statement(depth)
        self.scopes.pop()

    def while_loop(self, depth: int) -> None:
        counter = self.fresh()
        trips = self.rng.randint(1, 4)
        self.emit(depth, f"var {counter} = {trips};")
        self.scopes[-1].append(counter)
        self.protected.add(counter)
        self.emit(depth, f"while ({counter} > 0) {{")
        self.loop_depth += 1
        self.body(depth + 1)
        # Optional conditional break.
        if self.rng.random() < 0.3:
            self.emit(
                depth + 1,
                f"if ({self.expr()} == 0) {{ break; }}",
            )
        self.emit(depth + 1, f"{counter} = {counter} - 1;")
        self.loop_depth -= 1
        self.emit(depth, "}")

    def if_stmt(self, depth: int) -> None:
        self.emit(depth, f"if ({self.expr()}) {{")
        self.body(depth + 1)
        if self.rng.random() < 0.6:
            self.emit(depth, "} else {")
            self.body(depth + 1)
        self.emit(depth, "}")

    # ------------------------------------------------------------------
    def generate(self, name: str) -> str:
        self.emit(-1, "var acc = 0;")
        self.scopes[0].append("acc")
        for _ in range(self.rng.randint(2, 4)):
            self.statement(0)
        result = " + ".join(
            self.rng.sample(self.visible(), k=min(2, len(self.visible())))
        )
        self.emit(-1, f"return acc + {result};")
        body = "\n".join(self.lines)
        return f"func {name}(n) {{\n{body}\n}}\n"


def random_minilang_source(
    seed: int, max_depth: int = 3, max_stmts: int = 30
) -> str:
    """A random, terminating MiniLang program as source text."""
    rng = random.Random(seed)
    gen = _SourceGen(rng, max_depth=max_depth, max_stmts=max_stmts)
    return gen.generate(f"fuzz{seed}")


def random_minilang_workload(seed: int, **kwargs):
    """Compile a random MiniLang program and pair it with inputs."""
    from repro.minilang import compile_source
    from repro.pipeline import Workload

    source = random_minilang_source(seed, **kwargs)
    fn = compile_source(source)
    rng = random.Random(seed ^ 0xABCD)
    arrays = {"A": [rng.randint(-9, 9) for _ in range(8)], "B": [0] * 8}
    return Workload(fn, {"n": rng.randint(0, 9)}, arrays, name=fn.name)
