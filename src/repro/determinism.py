"""Cross-process reproducibility fingerprints for the allocation pipeline.

The allocator promises bit-identical output regardless of Python's
per-process string-hash salt (``PYTHONHASHSEED``), the number of parallel
workers, or the platform.  This module is the proof harness:

* :func:`allocation_fingerprint` compiles one workload end-to-end and
  condenses everything observable -- the allocated program text, the set
  of spilled variables, and the simulator's dynamic cost counters -- into
  a small JSON-friendly dict;
* the ``fingerprint`` CLI command prints those dicts for a list of
  workloads, so a *fresh interpreter* can be asked for its view;
* the ``check`` CLI command re-runs ``fingerprint`` in subprocesses under
  several distinct ``PYTHONHASHSEED`` values and worker counts and fails
  loudly on any divergence;
* the ``--incremental`` flag extends both commands with the memoization
  proof: allocate each workload with a tile store attached, apply a
  deterministic single-block edit, re-allocate warm (clean subtrees come
  from the store) and compare bit-for-bit against a fresh full
  allocation of the edited function -- with the per-tile reuse counters
  joining the fingerprint, so a combination that silently recomputed
  everything (or reused a stale tile) fails the check.

``tests/determinism/``, ``benchmarks/bench_determinism.py`` and the CI
determinism gate all drive the same code paths, so "deterministic" means
one thing everywhere.

Tile ids and instruction uids come from process-global counters, but the
allocator renumbers both on its private clone before any derived name is
minted (see ``HierarchicalAllocator.allocate``), so fingerprints -- and
the per-tile cache keys the incremental mode exercises -- are pure
functions of (text, config, machine), not of process history.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.core.budget import BudgetLimits
from repro.ir.function import Function
from repro.ir.printer import format_function
from repro.machine.target import Machine
from repro.pipeline import Workload, compile_function
from repro.workloads.generators import random_program
from repro.workloads.kernels import sequential_loops

#: Hash seeds the ``check`` command uses by default -- three distinct
#: salts (0 disables randomization; the others are arbitrary but fixed).
DEFAULT_HASH_SEEDS: Tuple[str, ...] = ("0", "1", "12345")

#: Worker settings the ``check`` command uses by default: 0 means the
#: sequential driver, anything else the dependency-driven scheduler.
DEFAULT_WORKER_COUNTS: Tuple[int, ...] = (0, 4)

_ARRAYS = {
    "A": [3, -1, 4, 1, -5, 9, 2, -6],
    "B": [0] * 8,
    "C": [2, 7, 1, 8, 2, 8, 1, 8],
}
_ARGS = {"n": 6}


def _bench_workloads() -> List[Tuple[str, Callable[[], Function]]]:
    """The bench workload set (mirrors ``bench_analysis_speed.WORKLOADS``,
    including the 428-block random program)."""
    return [
        ("seq_loops_100", lambda: sequential_loops(100)),
        ("rand_struct_327", lambda: random_program(
            seed=1, max_blocks=400, max_vars=40, max_depth=6, break_prob=0.05
        )),
        ("seq_loops_200", lambda: sequential_loops(200)),
        ("rand_struct_428", lambda: random_program(
            seed=3, max_blocks=800, max_vars=48, max_depth=7, break_prob=0.04
        )),
    ]


def workload_names() -> List[str]:
    return [name for name, _ in _bench_workloads()]


def build_workload(name: str) -> Workload:
    """A runnable :class:`Workload` for one bench workload name."""
    for candidate, factory in _bench_workloads():
        if candidate == name:
            return Workload(factory(), dict(_ARGS), dict(_ARRAYS), name=name)
    raise ValueError(
        f"unknown workload {name!r}; choose from {workload_names()}"
    )


def allocation_fingerprint(
    workload: Workload,
    config: Optional[HierarchicalConfig] = None,
    machine: Optional[Machine] = None,
) -> Dict[str, object]:
    """Compile *workload* end-to-end and fingerprint the result.

    The fingerprint covers everything the determinism guarantee promises:
    the full allocated program text (assignments *and* inserted spill
    code, hashed), the spilled-variable set, and the simulator's dynamic
    cost counters.  ``compile_function`` also verifies the allocated
    program differentially against the original, so a fingerprint is only
    produced for a *correct* allocation.
    """
    machine = machine or Machine.simple(8)
    allocator = HierarchicalAllocator(config or HierarchicalConfig())
    result = compile_function(workload, allocator, machine)
    return _result_fingerprint(workload.label(), result)


def _result_fingerprint(label: str, result) -> Dict[str, object]:
    """The determinism fingerprint of one ``compile_function`` result."""
    text = format_function(result.fn)
    return {
        "workload": label,
        "blocks": len(result.fn.blocks),
        "program_sha256": hashlib.sha256(text.encode()).hexdigest(),
        "spilled": sorted(result.stats.spilled_vars),
        "costs": {
            "spill_loads": result.allocated_run.spill_loads,
            "spill_stores": result.allocated_run.spill_stores,
            "moves": result.allocated_run.register_moves,
            "program_refs": result.allocated_run.program_memory_refs,
        },
    }


def edit_one_block(fn: Function) -> str:
    """Apply a deterministic single-block edit to *fn* in place.

    Bumps the immediate of one ``CONST`` instruction (the middle one in
    block order, skipping the start block when possible) by 1 and returns
    the edited block's label.  The edit is a pure function of the input,
    so two independently-built copies of the same workload receive the
    same edit -- which is what lets the incremental check compare a warm
    re-allocation against a fresh allocation of "the same edit".
    """
    from repro.ir.instructions import Opcode

    sites = [
        (block.label, i)
        for block in fn
        for i, instr in enumerate(block.instrs)
        if instr.op is Opcode.CONST and isinstance(instr.imm, int)
    ]
    inner = [s for s in sites if s[0] != fn.start_label]
    sites = inner or sites
    if not sites:
        raise RuntimeError(f"{fn.name}: no CONST instruction to edit")
    label, index = sites[len(sites) // 2]
    fn.block(label).instrs[index].imm += 1
    return label


def incremental_fingerprints(
    names: Sequence[str],
    workers: int = 0,
    registers: int = 8,
) -> Dict[str, Dict[str, object]]:
    """The per-tile memoization proof for *names* (tentpole determinism).

    For each workload: allocate cold with a tile store attached (filling
    it), apply the deterministic single-block edit of
    :func:`edit_one_block`, re-allocate *warm* against the same store,
    and allocate the same edited function *fresh* with no store.  Raises
    unless the warm incremental result is bit-identical to the fresh full
    one AND the reuse counters prove clean subtrees actually came from
    the store (at least one subtree reused, at least one dirty tile
    recomputed).  Returns, per workload, the cold/warm/full fingerprints
    plus the reuse counters -- all deterministic, so they join the
    cross-process comparison matrix.
    """
    from repro.core.incremental import TileCacheStore

    machine = Machine.simple(registers)
    config = _config_for(workers)
    out: Dict[str, Dict[str, object]] = {}
    for name in names:
        base = build_workload(name)
        edited = build_workload(name)
        edited_label = edit_one_block(edited.fn)

        store = TileCacheStore()
        allocator = HierarchicalAllocator(config, tile_store=store)
        cold = compile_function(base, allocator, machine)
        base_fp = _result_fingerprint(base.label(), cold)
        warm = compile_function(edited, allocator, machine)
        counters = dict(allocator.last_tile_cache or {})
        warm_fp = _result_fingerprint(edited.label(), warm)

        fresh = build_workload(name)
        edit_one_block(fresh.fn)
        full_fp = allocation_fingerprint(fresh, config=config, machine=machine)

        if warm_fp != full_fp:
            raise RuntimeError(
                f"{name}: warm incremental re-allocation diverges from the "
                f"fresh full allocation of the same edit:\n"
                f"  full:        {json.dumps(full_fp, sort_keys=True)}\n"
                f"  incremental: {json.dumps(warm_fp, sort_keys=True)}"
            )
        if counters.get("subtrees_reused", 0) < 1:
            raise RuntimeError(
                f"{name}: warm re-allocation reused no clean subtree "
                f"(counters: {counters}) -- the tile cache is not hitting"
            )
        if counters.get("tile_misses", 0) < 1:
            raise RuntimeError(
                f"{name}: warm re-allocation recomputed nothing "
                f"(counters: {counters}) -- the edit did not dirty a tile"
            )
        out[name] = {
            "edited_block": edited_label,
            "base": base_fp,
            "full": full_fp,
            "incremental": warm_fp,
            "reuse": counters,
        }
    return out


def _config_for(workers: int) -> HierarchicalConfig:
    if workers <= 0:
        return HierarchicalConfig()
    # parallel_min_tiles=1 forces the dependency-driven scheduler even on
    # trees below the auto-fallback threshold -- the determinism matrix
    # exists to prove the *scheduler* is deterministic, so it must not be
    # quietly replaced by the sequential driver.
    return HierarchicalConfig(
        parallel=True, parallel_workers=workers, parallel_min_tiles=1
    )


def batch_fingerprints(
    names: Sequence[str],
    batch_workers: int = 0,
    registers: int = 8,
) -> Dict[str, Dict[str, object]]:
    """Cold- and warm-cache batch-engine fingerprints for *names*.

    Runs the module twice through one :class:`~repro.batch.BatchEngine`
    (first pass computes -- in worker processes when ``batch_workers > 0``
    -- and fills the content-addressed cache; second pass must be served
    entirely from it) and returns, per workload, the determinism
    fingerprint of both passes.  Raises if the warm pass missed the cache
    or any record diverged, so a passing ``check`` really does cover the
    cached path bit-for-bit.
    """
    from repro.batch import BatchConfig, BatchEngine

    workloads = [build_workload(name) for name in names]
    batch = BatchConfig(batch_workers=batch_workers, registers=registers)
    with BatchEngine(batch=batch) as engine:
        cold = engine.allocate_module(workloads)
        warm = engine.allocate_module(workloads)

    out: Dict[str, Dict[str, object]] = {}
    for name, c, w in zip(names, cold, warm):
        if c.cached:
            raise RuntimeError(f"{name}: cold batch pass hit the cache")
        if not w.cached:
            raise RuntimeError(f"{name}: warm batch pass missed the cache")
        if c.record != w.record:
            raise RuntimeError(
                f"{name}: cached record diverges from computed record"
            )
        out[name] = {
            "cold": c.record.fingerprint_dict(),
            "warm": w.record.fingerprint_dict(),
        }
    return out


def service_fingerprints(
    names: Sequence[str],
    registers: int = 8,
) -> Dict[str, Dict[str, object]]:
    """Fingerprints of *names* served over HTTP by the allocation service.

    Starts a real :class:`~repro.service.AllocationService` on a loopback
    ephemeral port, submits the workloads twice through the real client
    (functions as text, simulator inputs attached) and rebuilds the
    determinism fingerprint from the wire payloads.  Raises if any
    request fails, if the warm pass missed the service's shared cache, or
    if cold and warm payloads diverge -- so a passing ``check --service``
    proves the serving layer transports allocations bit-for-bit.
    """
    import asyncio

    from repro.batch import BatchConfig
    from repro.service import AllocationService, ServiceClient, ServiceConfig

    workloads = [build_workload(name) for name in names]
    specs = [
        {
            "text": format_function(workload.fn),
            "name": workload.label(),
            "args": dict(workload.args),
            "arrays": {k: list(v) for k, v in workload.arrays.items()},
        }
        for workload in workloads
    ]

    async def _serve_and_allocate():
        config = ServiceConfig(batch=BatchConfig(
            batch_workers=0, registers=registers, simulate=True,
        ))
        async with AllocationService(config) as service:
            async with ServiceClient("127.0.0.1", service.port) as client:
                cold = await client.allocate(specs)
                warm = await client.allocate(specs)
                return cold, warm

    cold, warm = asyncio.run(_serve_and_allocate())
    for reply, label in ((cold, "cold"), (warm, "warm")):
        if reply.status != 200:
            raise RuntimeError(
                f"service {label} request failed: {reply.status} "
                f"{reply.data}"
            )

    def _payload_fingerprint(payload: Dict[str, object]) -> Dict[str, object]:
        return {
            "workload": payload["name"],
            "blocks": payload["blocks"],
            "program_sha256": payload["allocated_sha256"],
            "spilled": list(payload["spilled"]),
            "costs": dict(payload["costs"]),
        }

    out: Dict[str, Dict[str, object]] = {}
    for name, c, w in zip(names, cold.data["results"],
                          warm.data["results"]):
        if not (c["ok"] and w["ok"]):
            raise RuntimeError(
                f"{name}: service allocation failed: "
                f"{c['error'] or w['error']}"
            )
        if not w["cached"]:
            raise RuntimeError(
                f"{name}: warm served request missed the shared cache"
            )
        cold_fp = _payload_fingerprint(c)
        warm_fp = _payload_fingerprint(w)
        if cold_fp != warm_fp:
            raise RuntimeError(
                f"{name}: warm served payload diverges from cold:\n"
                f"  cold: {json.dumps(cold_fp, sort_keys=True)}\n"
                f"  warm: {json.dumps(warm_fp, sort_keys=True)}"
            )
        out[name] = cold_fp
    return out


def budgeted_fingerprints(
    names: Sequence[str],
    fuel: int,
    workers: int = 0,
    registers: int = 8,
) -> Dict[str, Dict[str, object]]:
    """Fingerprints of *names* allocated under a ``max_fuel`` budget.

    Proves the budget layer's determinism contract: charges only count
    and abort, they never alter decisions, so a budgeted run that
    completes is bit-identical to the unbudgeted run -- and the fuel
    spend itself is a pure function of the input.  Each dict carries the
    full allocation fingerprint plus a ``"budget"`` section (``fuel``,
    ``spent``, per-counter breakdown), so the cross-process ``check``
    also fails if two processes *charge* differently, even when they
    allocate identically.

    *fuel* must be generous enough for every named workload to complete;
    a workload that exhausts it raises (this is a determinism proof, not
    the survival harness -- ``benchmarks/bench_guard.py`` owns aborts).
    """
    machine = Machine.simple(registers)
    config = _config_for(workers)
    out: Dict[str, Dict[str, object]] = {}
    for name in names:
        allocator = HierarchicalAllocator(
            config, budget_limits=BudgetLimits(max_fuel=fuel)
        )
        result = compile_function(build_workload(name), allocator, machine)
        fp = _result_fingerprint(name, result)
        snap = allocator.last_budget or {}
        fp["budget"] = {
            "fuel": fuel,
            "spent": snap.get("spent"),
            "counters": snap.get("counters", {}),
        }
        out[name] = fp
    return out


def fingerprint_workloads(
    names: Sequence[str],
    workers: int = 0,
    registers: int = 8,
    batch_workers: Optional[int] = None,
    service: bool = False,
    incremental: bool = False,
    budget_fuel: Optional[int] = None,
) -> Dict[str, Dict[str, object]]:
    """Fingerprints for *names*, in order, under one allocator config.

    With *batch_workers* set (``>= 0``), each workload's dict also
    carries a ``"batch"`` section -- the cold/warm batch-engine
    fingerprints -- after asserting the cold batch result is identical to
    the directly-computed fingerprint, so ``check`` compares cached,
    pooled and direct allocations across all its (seed, workers) combos.

    With *service* set, the workloads are additionally round-tripped over
    HTTP through a live :class:`~repro.service.AllocationService`; each
    served payload must be bit-identical to the direct fingerprint and
    joins the dict under ``"service"``.

    With *incremental* set, each workload also runs the edit-and-reuse
    proof of :func:`incremental_fingerprints`; the cold store-attached
    fingerprint must match the direct one and the whole section joins the
    dict under ``"incremental"`` (reuse counters included).

    With *budget_fuel* set, each workload is additionally allocated under
    a ``max_fuel`` budget of that many units; the budgeted result must be
    bit-identical to the unbudgeted fingerprint (charges never change
    decisions) and the fuel-spend section joins the dict under
    ``"budget"``.
    """
    machine = Machine.simple(registers)
    config = _config_for(workers)
    prints = {
        name: allocation_fingerprint(
            build_workload(name), config=config, machine=machine
        )
        for name in names
    }
    served: Optional[Dict[str, Dict[str, object]]] = None
    if service:
        served = service_fingerprints(names, registers=registers)
        for name in names:
            if served[name] != prints[name]:
                raise RuntimeError(
                    f"{name}: served fingerprint diverges from the direct "
                    f"pipeline:\n"
                    f"  direct: {json.dumps(prints[name], sort_keys=True)}\n"
                    f"  served: {json.dumps(served[name], sort_keys=True)}"
                )
    if batch_workers is not None:
        batched = batch_fingerprints(
            names, batch_workers=batch_workers, registers=registers
        )
        for name in names:
            if batched[name]["cold"] != prints[name]:
                raise RuntimeError(
                    f"{name}: batch-engine fingerprint diverges from the "
                    f"direct pipeline:\n"
                    f"  direct: {json.dumps(prints[name], sort_keys=True)}\n"
                    f"  batch:  "
                    f"{json.dumps(batched[name]['cold'], sort_keys=True)}"
                )
            prints[name]["batch"] = batched[name]
    if incremental:
        incr = incremental_fingerprints(
            names, workers=workers, registers=registers
        )
        for name in names:
            # The batch section may already be attached; compare against
            # the bare direct fingerprint.
            bare = {
                k: v for k, v in prints[name].items() if k != "batch"
            }
            if incr[name]["base"] != bare:
                raise RuntimeError(
                    f"{name}: cold store-attached allocation diverges from "
                    f"the direct pipeline:\n"
                    f"  direct: {json.dumps(bare, sort_keys=True)}\n"
                    f"  store:  "
                    f"{json.dumps(incr[name]['base'], sort_keys=True)}"
                )
            prints[name]["incremental"] = incr[name]
    if budget_fuel is not None:
        budgeted = budgeted_fingerprints(
            names, budget_fuel, workers=workers, registers=registers
        )
        for name in names:
            bare = {
                k: v for k, v in prints[name].items()
                if k not in ("batch", "incremental")
            }
            got = {k: v for k, v in budgeted[name].items() if k != "budget"}
            if got != bare:
                raise RuntimeError(
                    f"{name}: budgeted allocation diverges from the "
                    f"unbudgeted pipeline (charges must never alter "
                    f"decisions):\n"
                    f"  unbudgeted: {json.dumps(bare, sort_keys=True)}\n"
                    f"  budgeted:   {json.dumps(got, sort_keys=True)}"
                )
            prints[name]["budget"] = budgeted[name]["budget"]
    if served is not None:
        # Attached last: the batch comparison above matches against the
        # bare direct fingerprint.
        for name in names:
            prints[name]["service"] = served[name]
    return prints


# ----------------------------------------------------------------------
# subprocess plumbing
# ----------------------------------------------------------------------
def _src_pythonpath() -> str:
    """PYTHONPATH that makes ``import repro`` work in a child process."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    return src + (os.pathsep + existing if existing else "")


def fingerprint_in_subprocess(
    names: Sequence[str],
    hash_seed: str,
    workers: int = 0,
    registers: int = 8,
    batch_workers: Optional[int] = None,
    service: bool = False,
    incremental: bool = False,
    budget_fuel: Optional[int] = None,
) -> Dict[str, Dict[str, object]]:
    """Run ``fingerprint`` in a fresh interpreter under *hash_seed*."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = _src_pythonpath()
    cmd = [
        sys.executable,
        "-m",
        "repro.determinism",
        "fingerprint",
        "--workloads",
        ",".join(names),
        "--workers",
        str(workers),
        "--registers",
        str(registers),
    ]
    if batch_workers is not None:
        cmd += ["--batch", str(batch_workers)]
    if service:
        cmd += ["--service"]
    if incremental:
        cmd += ["--incremental"]
    if budget_fuel is not None:
        cmd += ["--budget", str(budget_fuel)]
    proc = subprocess.run(
        cmd, env=env, capture_output=True, text=True, timeout=600
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"fingerprint subprocess failed (seed={hash_seed}, "
            f"workers={workers}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def cross_process_check(
    names: Sequence[str],
    hash_seeds: Sequence[str] = DEFAULT_HASH_SEEDS,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    registers: int = 8,
    batch_workers: Optional[int] = None,
    service: bool = False,
    incremental: bool = False,
    budget_fuel: Optional[int] = None,
) -> List[str]:
    """Compare fingerprints across every (hash seed, workers) combination.

    With *batch_workers* set, each subprocess additionally pushes the
    module through the batch engine twice (cold compute + warm cache) and
    the batch fingerprints join the comparison -- one divergent cached
    byte anywhere in the matrix fails the check.  With *service* set,
    each subprocess also serves the module over HTTP through a live
    allocation service and the served payloads join the comparison --
    one divergent served byte anywhere in the matrix fails the check.
    With *incremental* set, each subprocess additionally runs the
    edit-and-reuse proof (warm incremental re-allocation must be
    bit-identical to a fresh full allocation of the same edit, with the
    reuse counters in the compared fingerprints).  With *budget_fuel*
    set, each subprocess additionally allocates under a fuel budget and
    the spend counters join the comparison -- a process that charges
    differently fails even if it allocates identically.

    Returns a list of human-readable mismatch descriptions; empty means
    every combination produced bit-identical results.
    """
    runs: Dict[Tuple[str, int], Dict[str, Dict[str, object]]] = {}
    for seed in hash_seeds:
        for workers in worker_counts:
            runs[(seed, workers)] = fingerprint_in_subprocess(
                names, seed, workers=workers, registers=registers,
                batch_workers=batch_workers, service=service,
                incremental=incremental, budget_fuel=budget_fuel,
            )

    baseline_key = (hash_seeds[0], worker_counts[0])
    baseline = runs[baseline_key]
    problems: List[str] = []
    for key, run in runs.items():
        if key == baseline_key:
            continue
        for name in names:
            if run[name] != baseline[name]:
                problems.append(
                    f"{name}: seed={key[0]} workers={key[1]} diverges from "
                    f"seed={baseline_key[0]} workers={baseline_key[1]}:\n"
                    f"  baseline: {json.dumps(baseline[name], sort_keys=True)}\n"
                    f"  got:      {json.dumps(run[name], sort_keys=True)}"
                )
    return problems


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _parse_names(spec: str) -> List[str]:
    if spec == "all":
        return workload_names()
    return [part for part in spec.split(",") if part]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.determinism",
        description="allocation reproducibility fingerprints",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fp = sub.add_parser("fingerprint", help="print fingerprints as JSON")
    fp.add_argument("--workloads", default="all")
    fp.add_argument("--workers", type=int, default=0)
    fp.add_argument("--registers", type=int, default=8)
    fp.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="also fingerprint via the batch engine (cold + warm cache) "
        "with N pool workers (0 = in-process)",
    )
    fp.add_argument(
        "--service", action="store_true",
        help="also round-trip the workloads over HTTP through a live "
        "allocation service; served payloads must match the direct "
        "pipeline bit-for-bit",
    )
    fp.add_argument(
        "--incremental", action="store_true",
        help="also run the per-tile memoization proof: edit one block, "
        "re-allocate warm against the tile store, compare bit-for-bit "
        "against a fresh full allocation of the same edit",
    )
    fp.add_argument(
        "--budget", type=int, default=None, metavar="FUEL",
        help="also allocate each workload under a max_fuel budget of "
        "FUEL units; the budgeted result must be bit-identical to the "
        "unbudgeted one and the fuel-spend counters join the fingerprint",
    )

    ck = sub.add_parser(
        "check",
        help="compare fingerprints across hash seeds and worker counts",
    )
    ck.add_argument("--workloads", default="all")
    ck.add_argument(
        "--seeds", default=",".join(DEFAULT_HASH_SEEDS),
        help="comma-separated PYTHONHASHSEED values",
    )
    ck.add_argument(
        "--workers", default=",".join(str(w) for w in DEFAULT_WORKER_COUNTS),
        help="comma-separated worker counts (0 = sequential driver)",
    )
    ck.add_argument("--registers", type=int, default=8)
    ck.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="include batch-engine cold/warm cache fingerprints (N pool "
        "workers, 0 = in-process) in every combination",
    )
    ck.add_argument(
        "--service", action="store_true",
        help="include HTTP-served fingerprints (a live allocation "
        "service per subprocess) in every combination",
    )
    ck.add_argument(
        "--incremental", action="store_true",
        help="include the per-tile memoization proof (warm incremental "
        "== fresh full, reuse counters compared) in every combination",
    )
    ck.add_argument(
        "--budget", type=int, default=None, metavar="FUEL",
        help="include budgeted-allocation fingerprints (max_fuel=FUEL; "
        "fuel-spend counters compared) in every combination",
    )

    args = parser.parse_args(argv)
    names = _parse_names(args.workloads)

    if args.command == "fingerprint":
        prints = fingerprint_workloads(
            names, workers=args.workers, registers=args.registers,
            batch_workers=args.batch, service=args.service,
            incremental=args.incremental, budget_fuel=args.budget,
        )
        json.dump(prints, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0

    seeds = [s for s in args.seeds.split(",") if s]
    workers = [int(w) for w in args.workers.split(",") if w != ""]
    problems = cross_process_check(
        names, hash_seeds=seeds, worker_counts=workers,
        registers=args.registers, batch_workers=args.batch,
        service=args.service, incremental=args.incremental,
        budget_fuel=args.budget,
    )
    combos = len(seeds) * len(workers)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(
            f"FAIL: {len(problems)} divergence(s) across {combos} "
            f"(seed, workers) combinations",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: {len(names)} workload(s) bit-identical across {combos} "
        f"(seed, workers) combinations"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
