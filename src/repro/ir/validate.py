"""Structural validation of IR functions.

Checks the CFG invariants the paper's program model requires (section 2)
plus general well-formedness.  Allocator outputs are additionally validated
by :mod:`repro.machine.rewrite` (physical-register-only, pressure bounds).
"""

from __future__ import annotations

from typing import List

from repro.ir.function import Function
from repro.ir.instructions import Opcode


class IRValidationError(ValueError):
    """Raised when a function violates a structural invariant."""


def validate_function(fn: Function, allow_unreachable: bool = False) -> None:
    """Raise :class:`IRValidationError` on the first violated invariant.

    Invariants:

    * start and stop blocks exist; start has no predecessors; stop has no
      successors (unique entry/exit, paper section 2);
    * every successor label resolves to a block;
    * terminator arity matches successor count (CBR has exactly two
      successors, RET none or an edge to stop, others at most one);
    * non-terminator instructions do not appear after a terminator;
    * every block except stop has at least one successor;
    * all blocks are reachable from start (unless *allow_unreachable*).
    """
    if fn.start_label not in fn.blocks:
        raise IRValidationError(f"missing start block {fn.start_label!r}")
    if fn.stop_label not in fn.blocks:
        raise IRValidationError(f"missing stop block {fn.stop_label!r}")

    preds = fn.predecessors_map()
    if preds[fn.start_label]:
        raise IRValidationError(
            f"start block has predecessors: {preds[fn.start_label]}"
        )
    if fn.blocks[fn.stop_label].succ_labels:
        raise IRValidationError("stop block has successors")

    for block in fn:
        for succ in block.succ_labels:
            if succ not in fn.blocks:
                raise IRValidationError(
                    f"block {block.label} branches to unknown label {succ!r}"
                )
        term = block.terminator
        for instr in block.instrs[:-1]:
            if instr.is_terminator:
                raise IRValidationError(
                    f"terminator {instr.op} not last in block {block.label}"
                )
        if term is not None and term.op is Opcode.CBR:
            if len(block.succ_labels) != 2:
                raise IRValidationError(
                    f"CBR block {block.label} must have 2 successors, has "
                    f"{len(block.succ_labels)}"
                )
        elif block.label != fn.stop_label:
            if len(block.succ_labels) != 1:
                raise IRValidationError(
                    f"block {block.label} must have exactly 1 successor, has "
                    f"{len(block.succ_labels)}"
                )

    if not allow_unreachable:
        unreachable = set(fn.blocks) - fn.reachable()
        if unreachable:
            raise IRValidationError(
                f"unreachable blocks: {sorted(unreachable)}"
            )


def check_stop_reachable(fn: Function) -> bool:
    """True if stop is reachable from start (termination prerequisite)."""
    return fn.stop_label in fn.reachable()


def collect_warnings(fn: Function) -> List[str]:
    """Non-fatal oddities useful in tests and examples."""
    warnings: List[str] = []
    defined = set(fn.params)
    for block in fn:
        defined.update(block.defs())
    for block in fn:
        for instr in block.instrs:
            for use in instr.uses:
                if use not in defined:
                    warnings.append(
                        f"{block.label}: use of never-defined variable {use!r}"
                    )
    if not check_stop_reachable(fn):
        warnings.append("stop block unreachable from start")
    return warnings
