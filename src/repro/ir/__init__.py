"""Toy three-address intermediate representation.

The IR models exactly what the paper assumes of a program: a control flow
graph of basic blocks, each a sequence of instructions with explicit use and
definition lists over an unbounded set of virtual registers (variables).

Public surface:

* :class:`~repro.ir.instructions.Opcode`, :class:`~repro.ir.instructions.Instr`
* :class:`~repro.ir.basic_block.BasicBlock`
* :class:`~repro.ir.function.Function`
* :class:`~repro.ir.builder.FunctionBuilder` -- ergonomic construction DSL
* :func:`~repro.ir.parser.parse_function` / :func:`~repro.ir.printer.format_function`
* :func:`~repro.ir.validate.validate_function`
"""

from repro.ir.instructions import Instr, Opcode, is_phys, phys_reg, phys_index
from repro.ir.basic_block import BasicBlock
from repro.ir.function import Function
from repro.ir.builder import FunctionBuilder
from repro.ir.printer import format_function, format_instr
from repro.ir.parser import parse_function
from repro.ir.validate import validate_function, IRValidationError

__all__ = [
    "Instr",
    "Opcode",
    "BasicBlock",
    "Function",
    "FunctionBuilder",
    "format_function",
    "format_instr",
    "parse_function",
    "validate_function",
    "IRValidationError",
    "is_phys",
    "phys_reg",
    "phys_index",
]
