"""Basic blocks: straight-line instruction sequences with a label."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.ir.instructions import Instr, Opcode, TERMINATORS


class BasicBlock:
    """A labelled sequence of instructions.

    Successor labels are stored on the block itself (``succ_labels``); the
    owning :class:`~repro.ir.function.Function` derives the edge sets from
    them.  Control transfer semantics:

    * If the block ends in ``CBR``, ``succ_labels[0]`` is taken when the
      condition is truthy and ``succ_labels[1]`` otherwise.
    * Any other block with successors falls through (or ``BR``-jumps) to
      ``succ_labels[0]``.
    * The unique stop block has no successors.
    """

    __slots__ = ("label", "instrs", "succ_labels")

    def __init__(
        self,
        label: str,
        instrs: Optional[Iterable[Instr]] = None,
        succ_labels: Optional[Iterable[str]] = None,
    ) -> None:
        self.label = label
        self.instrs: List[Instr] = list(instrs) if instrs is not None else []
        self.succ_labels: List[str] = list(succ_labels) if succ_labels is not None else []

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def terminator(self) -> Optional[Instr]:
        """The trailing branch/return instruction, if present."""
        if self.instrs and self.instrs[-1].op in TERMINATORS:
            return self.instrs[-1]
        return None

    @property
    def body(self) -> List[Instr]:
        """Instructions excluding the terminator."""
        if self.terminator is not None:
            return self.instrs[:-1]
        return list(self.instrs)

    def append(self, instr: Instr) -> None:
        """Append *instr*, keeping any terminator last."""
        if self.terminator is not None and not instr.is_terminator:
            self.instrs.insert(len(self.instrs) - 1, instr)
        else:
            self.instrs.append(instr)

    def prepend(self, instr: Instr) -> None:
        self.instrs.insert(0, instr)

    def insert_before_terminator(self, instrs: Iterable[Instr]) -> None:
        """Insert *instrs* immediately before the terminator (or at the end)."""
        instrs = list(instrs)
        if self.terminator is not None:
            pos = len(self.instrs) - 1
            self.instrs[pos:pos] = instrs
        else:
            self.instrs.extend(instrs)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def variables(self) -> set:
        """All variables referenced anywhere in this block (clobbered
        registers included -- they participate in interference)."""
        out = set()
        for instr in self.instrs:
            out.update(instr.defs)
            out.update(instr.uses)
            out.update(instr.clobbers)
        return out

    def defs(self) -> set:
        out = set()
        for instr in self.instrs:
            out.update(instr.defs)
        return out

    def uses(self) -> set:
        out = set()
        for instr in self.instrs:
            out.update(instr.uses)
        return out

    def ref_count(self, var: str) -> int:
        """Number of static references to *var* (defs + uses), the paper's
        ``Refs_b(v)`` quantity."""
        count = 0
        for instr in self.instrs:
            count += instr.defs.count(var)
            count += instr.uses.count(var)
        return count

    def is_empty(self) -> bool:
        """True if the block contains no instructions or only a bare branch."""
        return all(i.op in (Opcode.BR, Opcode.NOP) for i in self.instrs)

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.label}: {len(self.instrs)} instrs -> {self.succ_labels}>"

    def clone(self) -> "BasicBlock":
        """Deep-ish copy: instructions cloned (uids preserved), labels shared."""
        return BasicBlock(
            self.label,
            [i.clone() for i in self.instrs],
            list(self.succ_labels),
        )
