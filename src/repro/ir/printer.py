"""Textual rendering of the toy IR (inverse of :mod:`repro.ir.parser`)."""

from __future__ import annotations

from typing import List

from repro.ir.instructions import (
    BINARY_EVAL_BY_VALUE,
    Instr,
    Opcode,
    UNARY_EVAL_BY_VALUE,
)

# Membership on string values: str hashing is C-level, ``Enum.__hash__``
# is a Python call -- and the canonical-text renderer runs once per
# instruction per fingerprint.
_BINARY_VALUES = frozenset(BINARY_EVAL_BY_VALUE)
_UNARY_VALUES = frozenset(UNARY_EVAL_BY_VALUE)


def format_instr(instr: Instr) -> str:
    """One-line textual form of an instruction."""
    op = instr.op
    opv = op._value_
    if op is Opcode.CONST:
        return f"{instr.defs[0]} = const {instr.imm!r}"
    if op in (Opcode.COPY, Opcode.MOVE):
        return f"{instr.defs[0]} = {opv} {instr.uses[0]}"
    if opv in _BINARY_VALUES:
        return f"{instr.defs[0]} = {opv} {instr.uses[0]}, {instr.uses[1]}"
    if opv in _UNARY_VALUES:
        return f"{instr.defs[0]} = {opv} {instr.uses[0]}"
    if op is Opcode.LOAD:
        return f"{instr.defs[0]} = load {instr.imm}[{instr.uses[0]}]"
    if op is Opcode.STORE:
        return f"store {instr.imm}[{instr.uses[0]}], {instr.uses[1]}"
    if op is Opcode.CALL:
        dsts = ", ".join(instr.defs)
        args = ", ".join(instr.uses)
        prefix = f"{dsts} = " if dsts else ""
        return f"{prefix}call {instr.imm}({args})"
    if op is Opcode.BR:
        return "br"
    if op is Opcode.CBR:
        return f"cbr {instr.uses[0]}"
    if op is Opcode.RET:
        return "ret " + ", ".join(instr.uses) if instr.uses else "ret"
    if op is Opcode.SPILL_ST:
        return f"spillst [{instr.imm}], {instr.uses[0]}"
    if op is Opcode.SPILL_LD:
        return f"{instr.defs[0]} = spillld [{instr.imm}]"
    if op is Opcode.NOP:
        return "nop"
    raise AssertionError(f"unhandled opcode {op}")


def format_block(block) -> str:
    lines: List[str] = [f"{block.label}:"]
    for instr in block.instrs:
        lines.append(f"  {format_instr(instr)}")
    if block.succ_labels:
        lines.append(f"  -> {', '.join(block.succ_labels)}")
    return "\n".join(lines)


def format_function(fn) -> str:
    """Multi-line textual form of a whole function, blocks in RPO."""
    header = f"func {fn.name}({', '.join(fn.params)}) start={fn.start_label} stop={fn.stop_label}"
    order = fn.rpo()
    # Unreachable blocks follow the RPO body in sorted order so the text
    # never depends on block-dict insertion history.
    reachable = set(order)
    leftover = sorted(label for label in fn.blocks if label not in reachable)
    parts = [header]
    for label in order + leftover:
        parts.append(format_block(fn.blocks[label]))
    return "\n".join(parts) + "\n"
