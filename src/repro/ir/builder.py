"""Ergonomic construction of IR functions.

The builder keeps a *current block* cursor and exposes one helper per
opcode.  Example (the inner product kernel)::

    b = FunctionBuilder("dot", params=["n"])
    b.block("entry")
    b.const("i", 0)
    b.const("s", 0)
    b.br("head")
    b.block("head")
    b.cmplt("c", "i", "n")
    b.cbr("c", "body", "done")
    b.block("body")
    b.load("a", "A", "i")
    b.load("x", "B", "i")
    b.mul("p", "a", "x")
    b.add("s", "s", "p")
    b.addi("i", "i", 1)
    b.br("head")
    b.block("done")
    b.ret("s")
    fn = b.finish()

``finish()`` wires the unique start/stop structure the paper requires: the
first block created becomes ``start`` and a synthetic ``stop`` block is
appended; every ``ret`` is routed through it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.ir.basic_block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Instr,
    Opcode,
    make_binary,
    make_unary,
)


class FunctionBuilder:
    """Incremental :class:`~repro.ir.function.Function` constructor."""

    def __init__(self, name: str, params: Iterable[str] = ()) -> None:
        self._fn = Function(name, params, start_label="start", stop_label="stop")
        self._current: Optional[BasicBlock] = None
        self._finished = False
        self._first_label: Optional[str] = None
        self._ret_blocks: List[str] = []
        self._tmp = 0

    # ------------------------------------------------------------------
    # blocks and control flow
    # ------------------------------------------------------------------
    def block(self, label: str) -> "FunctionBuilder":
        """Start (or switch to) block *label*; subsequent emits target it.

        If the previous block has no terminator and no successors yet, it
        falls through to this one.
        """
        prev = self._current
        if label in self._fn.blocks:
            self._current = self._fn.blocks[label]
        else:
            self._current = self._fn.add_block(BasicBlock(label))
            if self._first_label is None:
                self._first_label = label
            if prev is not None and prev.terminator is None and not prev.succ_labels:
                prev.succ_labels.append(label)
        return self

    def emit(self, instr: Instr) -> "FunctionBuilder":
        if self._current is None:
            raise RuntimeError("no current block; call .block(label) first")
        if self._current.terminator is not None:
            raise RuntimeError(
                f"block {self._current.label} already terminated"
            )
        self._current.instrs.append(instr)
        return self

    def br(self, target: str) -> "FunctionBuilder":
        self.emit(Instr(Opcode.BR))
        self._current.succ_labels = [target]
        return self

    def cbr(self, cond: str, if_true: str, if_false: str) -> "FunctionBuilder":
        self.emit(Instr(Opcode.CBR, uses=(cond,)))
        self._current.succ_labels = [if_true, if_false]
        return self

    def ret(self, *values: str) -> "FunctionBuilder":
        self.emit(Instr(Opcode.RET, uses=tuple(values)))
        self._ret_blocks.append(self._current.label)
        self._current.succ_labels = []
        return self

    # ------------------------------------------------------------------
    # value instructions
    # ------------------------------------------------------------------
    def const(self, dst: str, value) -> "FunctionBuilder":
        return self.emit(Instr(Opcode.CONST, defs=(dst,), imm=value))

    def copy(self, dst: str, src: str) -> "FunctionBuilder":
        return self.emit(Instr(Opcode.COPY, defs=(dst,), uses=(src,)))

    def load(self, dst: str, array: str, idx: str) -> "FunctionBuilder":
        return self.emit(Instr(Opcode.LOAD, defs=(dst,), uses=(idx,), imm=array))

    def store(self, array: str, idx: str, src: str) -> "FunctionBuilder":
        return self.emit(Instr(Opcode.STORE, uses=(idx, src), imm=array))

    def call(
        self, dsts: Sequence[str], callee: str, args: Sequence[str]
    ) -> "FunctionBuilder":
        return self.emit(
            Instr(Opcode.CALL, defs=tuple(dsts), uses=tuple(args), imm=callee)
        )

    def addi(self, dst: str, src: str, value) -> "FunctionBuilder":
        """Add an immediate: materializes the constant into a fresh temp.

        The toy IR has no immediate operands on arithmetic, matching the
        paper's model where every operand occupies a register.
        """
        tmp = self._fresh("k")
        self.const(tmp, value)
        return self.add(dst, src, tmp)

    def _fresh(self, prefix: str) -> str:
        self._tmp += 1
        return f".{prefix}{self._tmp}"

    # Binary helpers generated explicitly for discoverability.
    def add(self, dst, a, b):
        return self.emit(make_binary(Opcode.ADD, dst, a, b))

    def sub(self, dst, a, b):
        return self.emit(make_binary(Opcode.SUB, dst, a, b))

    def mul(self, dst, a, b):
        return self.emit(make_binary(Opcode.MUL, dst, a, b))

    def div(self, dst, a, b):
        return self.emit(make_binary(Opcode.DIV, dst, a, b))

    def mod(self, dst, a, b):
        return self.emit(make_binary(Opcode.MOD, dst, a, b))

    def min_(self, dst, a, b):
        return self.emit(make_binary(Opcode.MIN, dst, a, b))

    def max_(self, dst, a, b):
        return self.emit(make_binary(Opcode.MAX, dst, a, b))

    def and_(self, dst, a, b):
        return self.emit(make_binary(Opcode.AND, dst, a, b))

    def or_(self, dst, a, b):
        return self.emit(make_binary(Opcode.OR, dst, a, b))

    def cmplt(self, dst, a, b):
        return self.emit(make_binary(Opcode.CMP_LT, dst, a, b))

    def cmple(self, dst, a, b):
        return self.emit(make_binary(Opcode.CMP_LE, dst, a, b))

    def cmpeq(self, dst, a, b):
        return self.emit(make_binary(Opcode.CMP_EQ, dst, a, b))

    def cmpne(self, dst, a, b):
        return self.emit(make_binary(Opcode.CMP_NE, dst, a, b))

    def cmpgt(self, dst, a, b):
        return self.emit(make_binary(Opcode.CMP_GT, dst, a, b))

    def cmpge(self, dst, a, b):
        return self.emit(make_binary(Opcode.CMP_GE, dst, a, b))

    def neg(self, dst, a):
        return self.emit(make_unary(Opcode.NEG, dst, a))

    def not_(self, dst, a):
        return self.emit(make_unary(Opcode.NOT, dst, a))

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def finish(self) -> Function:
        """Seal the function: wire start/stop and return it.

        * A ``start`` block is prepended that falls through to the first
          user block (so the start block has no predecessors even if the
          first user block is a loop header).
        * All return blocks are given the synthetic ``stop`` block as their
          single successor; the ``RET`` instruction is moved into ``stop``
          when there is exactly one ret, otherwise ``stop`` stays empty and
          each ret block keeps its own ``RET`` with an edge to ``stop``.
        """
        if self._finished:
            raise RuntimeError("finish() called twice")
        if self._first_label is None:
            raise RuntimeError("function has no blocks")
        self._finished = True
        fn = self._fn

        start = fn.add_block(BasicBlock("start", [], [self._first_label]))
        stop = fn.add_block(BasicBlock("stop", [], []))

        for label in self._ret_blocks:
            fn.blocks[label].succ_labels = ["stop"]
        if not self._ret_blocks:
            # No explicit ret: route every successor-less block to stop.
            for block in list(fn.blocks.values()):
                if block.label not in ("stop",) and not block.succ_labels:
                    if block is not start:
                        block.succ_labels = ["stop"]
        fn.invalidate_caches()
        return fn
