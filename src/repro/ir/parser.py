"""Parser for the textual IR produced by :mod:`repro.ir.printer`.

The grammar is line-oriented::

    func NAME(p1, p2) start=LBL stop=LBL
    LBL:
      x = const 3
      y = add x, x
      z = load A[i]
      store A[i], z
      cbr c
      -> then_lbl, else_lbl
    ...

Successor lists follow the block body on a ``->`` line.  Round-tripping
``parse_function(format_function(fn))`` reproduces an equivalent function.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional

from repro.ir.basic_block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    BINARY_OPS,
    Instr,
    Opcode,
    UNARY_OPS,
    opcode_from_mnemonic,
)

_FUNC_RE = re.compile(
    r"^func\s+(\w[\w.]*)\((.*?)\)\s+start=(\S+)\s+stop=(\S+)\s*$"
)
_LABEL_RE = re.compile(r"^([\w.$%]+):\s*$")
_SUCC_RE = re.compile(r"^->\s*(.*)$")
_ASSIGN_RE = re.compile(r"^(.*?)\s*=\s*(.*)$")
_LOAD_RE = re.compile(r"^load\s+([\w.$%]+)\[([\w.$%]+)\]$")
_STORE_RE = re.compile(r"^store\s+([\w.$%]+)\[([\w.$%]+)\],\s*([\w.$%]+)$")
_CALL_RE = re.compile(r"^call\s+([\w.$%]+)\((.*?)\)$")
_SPILL_ST_RE = re.compile(r"^spillst\s+\[(.*?)\],\s*([\w.$%]+)$")
_SPILL_LD_RE = re.compile(r"^spillld\s+\[(.*?)\]$")


class IRParseError(ValueError):
    """Raised on malformed IR text."""


def _split_names(text: str) -> List[str]:
    text = text.strip()
    if not text:
        return []
    return [part.strip() for part in text.split(",")]


# Fast-path table for rhs forms that are just ``mnemonic operand, ...``:
# one dict probe on the leading token beats attempting the load/call/spill
# regexes on the arithmetic lines that dominate real programs.  Opcodes
# with structured operands (load/call/spill) stay on the regex chain.
_SIMPLE_RHS_OPS = {
    op.value: op
    for op in (Opcode.CONST, Opcode.COPY, Opcode.MOVE, *BINARY_OPS, *UNARY_OPS)
}


def _parse_rhs(dsts: List[str], rhs: str) -> Instr:
    rhs = rhs.strip()
    parts = rhs.split(None, 1)
    if parts:
        op = _SIMPLE_RHS_OPS.get(parts[0])
        if op is not None:
            rest = parts[1] if len(parts) > 1 else ""
            if op is Opcode.CONST:
                return Instr(op, defs=tuple(dsts), imm=ast.literal_eval(rest))
            operands = _split_names(rest)
            if op in (Opcode.COPY, Opcode.MOVE):
                return Instr(op, defs=tuple(dsts), uses=(operands[0],))
            return Instr(op, defs=tuple(dsts), uses=tuple(operands))
    m = _LOAD_RE.match(rhs)
    if m:
        return Instr(Opcode.LOAD, defs=tuple(dsts), uses=(m.group(2),), imm=m.group(1))
    m = _CALL_RE.match(rhs)
    if m:
        return Instr(
            Opcode.CALL, defs=tuple(dsts), uses=tuple(_split_names(m.group(2))), imm=m.group(1)
        )
    m = _SPILL_LD_RE.match(rhs)
    if m:
        return Instr(Opcode.SPILL_LD, defs=tuple(dsts), imm=ast.literal_eval(m.group(1)) if m.group(1)[:1] in "'\"([0123456789-" else m.group(1))
    parts = rhs.split(None, 1)
    if not parts:
        raise IRParseError(f"empty right-hand side in {rhs!r}")
    mnemonic = parts[0]
    rest = parts[1] if len(parts) > 1 else ""
    op = opcode_from_mnemonic(mnemonic)
    if op is Opcode.CONST:
        return Instr(op, defs=tuple(dsts), imm=ast.literal_eval(rest))
    operands = _split_names(rest)
    if op in (Opcode.COPY, Opcode.MOVE):
        return Instr(op, defs=tuple(dsts), uses=(operands[0],))
    if op in BINARY_OPS or op in UNARY_OPS:
        return Instr(op, defs=tuple(dsts), uses=tuple(operands))
    raise IRParseError(f"cannot parse rhs {rhs!r}")


def _parse_instr(line: str) -> Instr:
    m = _ASSIGN_RE.match(line)
    if m and "[" not in m.group(1):
        dsts = _split_names(m.group(1))
        return _parse_rhs(dsts, m.group(2))
    m = _STORE_RE.match(line)
    if m:
        return Instr(Opcode.STORE, uses=(m.group(2), m.group(3)), imm=m.group(1))
    m = _SPILL_ST_RE.match(line)
    if m:
        slot = m.group(1)
        try:
            slot = ast.literal_eval(slot)
        except (ValueError, SyntaxError):
            pass
        return Instr(Opcode.SPILL_ST, uses=(m.group(2),), imm=slot)
    m = _CALL_RE.match(line)
    if m:
        return Instr(Opcode.CALL, uses=tuple(_split_names(m.group(2))), imm=m.group(1))
    if line == "br":
        return Instr(Opcode.BR)
    if line == "nop":
        return Instr(Opcode.NOP)
    if line.startswith("cbr"):
        cond = line[3:].strip()
        return Instr(Opcode.CBR, uses=(cond,))
    if line == "ret":
        return Instr(Opcode.RET)
    if line.startswith("ret"):
        return Instr(Opcode.RET, uses=tuple(_split_names(line[3:])))
    raise IRParseError(f"cannot parse instruction {line!r}")


def parse_function(text: str) -> Function:
    """Parse a single function from *text*."""
    lines = [ln.strip() for ln in text.splitlines()]
    lines = [ln for ln in lines if ln and not ln.startswith("#")]
    if not lines:
        raise IRParseError("empty input")
    m = _FUNC_RE.match(lines[0])
    if not m:
        raise IRParseError(f"bad function header {lines[0]!r}")
    name, params_text, start_label, stop_label = m.groups()
    fn = Function(name, _split_names(params_text), start_label, stop_label)

    current: Optional[BasicBlock] = None
    for line in lines[1:]:
        lm = _LABEL_RE.match(line)
        if lm:
            current = fn.add_block(BasicBlock(lm.group(1)))
            continue
        sm = _SUCC_RE.match(line)
        if sm:
            if current is None:
                raise IRParseError("successor list before any block")
            current.succ_labels = _split_names(sm.group(1))
            continue
        if current is None:
            raise IRParseError(f"instruction outside block: {line!r}")
        current.instrs.append(_parse_instr(line))

    if fn.start_label not in fn.blocks or fn.stop_label not in fn.blocks:
        raise IRParseError("missing start or stop block")
    fn.invalidate_caches()
    return fn
