"""Functions: control flow graphs of basic blocks.

Matches the paper's program model: ``G = (B, E, start, stop)`` with a unique
``start`` block with no predecessors and a unique ``stop`` block with no
successors (section 2).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.ir.basic_block import BasicBlock
from repro.ir.instructions import Instr, Opcode


class Function:
    """A named CFG with parameters and a designated start/stop block pair.

    Blocks are held in an insertion-ordered dict keyed by label.  Edges are
    derived from each block's ``succ_labels``.  Mutating helpers
    (:meth:`insert_block_on_edge`, :meth:`add_block`) keep the successor
    lists consistent and invalidate the CFG-derived caches (:meth:`rpo`,
    :meth:`predecessors_map`, :meth:`edges`); code that edits
    ``succ_labels`` directly must call :meth:`invalidate_caches` itself.
    ``cfg_version`` increments on every invalidation, so downstream caches
    (tile boundary edges, liveness memos) can detect staleness cheaply.
    """

    def __init__(
        self,
        name: str,
        params: Iterable[str] = (),
        start_label: str = "start",
        stop_label: str = "stop",
    ) -> None:
        self.name = name
        self.params: List[str] = list(params)
        self.blocks: Dict[str, BasicBlock] = {}
        self.start_label = start_label
        self.stop_label = stop_label
        self._label_counter = itertools.count(1)
        #: bumped by :meth:`invalidate_caches`; external caches key on it.
        self.cfg_version = 0
        self._cfg_cache: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # CFG-derived caches
    # ------------------------------------------------------------------
    def invalidate_caches(self) -> None:
        """Drop cached CFG queries after a structural mutation.

        The mutating helpers on this class call it automatically; callers
        that edit ``succ_labels`` in place or delete blocks directly must
        invoke it before the next :meth:`rpo`/:meth:`predecessors_map`/
        :meth:`edges` query.
        """
        self.cfg_version += 1
        self._cfg_cache.clear()

    # ------------------------------------------------------------------
    # block management
    # ------------------------------------------------------------------
    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.label in self.blocks:
            raise ValueError(f"duplicate block label {block.label!r}")
        self.blocks[block.label] = block
        self.invalidate_caches()
        return block

    def new_label(self, prefix: str = "bb") -> str:
        """A label not yet used in this function."""
        while True:
            label = f"{prefix}.{next(self._label_counter)}"
            if label not in self.blocks:
                return label

    def block(self, label: str) -> BasicBlock:
        return self.blocks[label]

    @property
    def start(self) -> BasicBlock:
        return self.blocks[self.start_label]

    @property
    def stop(self) -> BasicBlock:
        return self.blocks[self.stop_label]

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks.values())

    def __len__(self) -> int:
        return len(self.blocks)

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def successors(self, label: str) -> List[str]:
        return list(self.blocks[label].succ_labels)

    def predecessors_map(self) -> Dict[str, List[str]]:
        """Label -> list of predecessor labels (in deterministic order).

        Cached until the next :meth:`invalidate_caches`; callers must not
        mutate the returned structure.
        """
        cached = self._cfg_cache.get("preds")
        if cached is None:
            preds: Dict[str, List[str]] = {label: [] for label in self.blocks}
            for block in self.blocks.values():
                for succ in block.succ_labels:
                    preds[succ].append(block.label)
            self._cfg_cache["preds"] = cached = preds
        return cached

    def edges(self) -> List[Tuple[str, str]]:
        """All control flow edges as (src, dst) label pairs (cached; do not
        mutate the returned list)."""
        cached = self._cfg_cache.get("edges")
        if cached is None:
            out: List[Tuple[str, str]] = []
            for block in self.blocks.values():
                label = block.label
                for succ in block.succ_labels:
                    out.append((label, succ))
            self._cfg_cache["edges"] = cached = out
        return cached

    # ------------------------------------------------------------------
    # mutation helpers
    # ------------------------------------------------------------------
    def insert_block_on_edge(
        self,
        src: str,
        dst: str,
        label: Optional[str] = None,
        all_occurrences: bool = False,
    ) -> BasicBlock:
        """Split edge ``src -> dst`` with a fresh empty block.

        This is the paper's "inserted on an edge" operation: "a new basic
        block is created which is executed only when this edge is traversed;
        fix-up code is placed in this block."  If the edge occurs several
        times in the successor list (a CBR whose arms coincide), only the
        first occurrence is redirected unless ``all_occurrences`` is set.
        Spill-code placement must set it: code on the edge has to run on
        *every* traversal, whichever arm the branch takes.
        """
        if label is None:
            label = self.new_label("fix")
        new_block = BasicBlock(label, [], [dst])
        src_block = self.blocks[src]
        try:
            idx = src_block.succ_labels.index(dst)
        except ValueError:
            raise ValueError(f"no edge {src} -> {dst}") from None
        if all_occurrences:
            src_block.succ_labels = [
                label if s == dst else s for s in src_block.succ_labels
            ]
        else:
            src_block.succ_labels[idx] = label
        self.add_block(new_block)
        return new_block

    def remove_empty_block(self, label: str) -> None:
        """Unlink an empty pass-through block with a single successor.

        Used to clean fix-up blocks that received no spill code.
        """
        block = self.blocks[label]
        if label in (self.start_label, self.stop_label):
            raise ValueError("cannot remove start/stop block")
        if not block.is_empty() or len(block.succ_labels) != 1:
            raise ValueError(f"block {label} is not an empty pass-through block")
        target = block.succ_labels[0]
        for other in self.blocks.values():
            other.succ_labels = [
                target if s == label else s for s in other.succ_labels
            ]
        del self.blocks[label]
        self.invalidate_caches()

    # ------------------------------------------------------------------
    # whole-function queries
    # ------------------------------------------------------------------
    def variables(self) -> Set[str]:
        out: Set[str] = set(self.params)
        for block in self.blocks.values():
            out.update(block.variables())
        return out

    def instructions(self) -> Iterator[Tuple[BasicBlock, Instr]]:
        for block in self.blocks.values():
            for instr in block.instrs:
                yield block, instr

    def instr_count(self) -> int:
        return sum(len(b) for b in self.blocks.values())

    def rpo(self) -> List[str]:
        """Reverse postorder over block labels from the start block
        (cached; do not mutate the returned list)."""
        cached = self._cfg_cache.get("rpo")
        if cached is not None:
            return cached
        seen: Set[str] = set()
        order: List[str] = []
        stack: List[Tuple[str, Iterator[str]]] = []

        def push(label: str) -> None:
            seen.add(label)
            stack.append((label, iter(self.blocks[label].succ_labels)))

        push(self.start_label)
        while stack:
            label, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in seen:
                    push(succ)
                    advanced = True
                    break
            if not advanced:
                order.append(label)
                stack.pop()
        order.reverse()
        self._cfg_cache["rpo"] = order
        return order

    def reachable(self) -> Set[str]:
        return set(self.rpo())

    def renumber_uids(self) -> None:
        """Reassign instruction uids to function-local ordinals (1-based).

        Uids normally come from a process-global counter, so their absolute
        values depend on how many instructions the process has already
        parsed or cloned.  Operand-temporary names
        (``tmp:{uid}:{var}:{kind}``) embed the uid, which would make
        allocation results -- and the per-tile fingerprints of
        :mod:`repro.core.incremental` -- a function of process history.
        Renumbering in block/instruction order makes uids a pure function
        of the program text.  Only call on a private clone **before** any
        uid-keyed analysis (arena, liveness memos) is built.
        """
        uid = 1
        for block in self.blocks.values():
            for instr in block.instrs:
                instr.uid = uid
                uid += 1

    def clone(self) -> "Function":
        """Deep copy (instruction uids preserved)."""
        fn = Function(self.name, self.params, self.start_label, self.stop_label)
        for block in self.blocks.values():
            fn.add_block(block.clone())
        fn._label_counter = itertools.count(self._next_counter_start())
        return fn

    def _next_counter_start(self) -> int:
        best = 1
        for label in self.blocks:
            parts = label.rsplit(".", 1)
            if len(parts) == 2 and parts[1].isdigit():
                best = max(best, int(parts[1]) + 1)
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Function {self.name}: {len(self.blocks)} blocks>"
