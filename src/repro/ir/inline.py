"""Function inlining (paper section 6).

"Inline expansion ... can have a detrimental effect on traditional register
allocators since a natural spill point (the call site) has been removed.
Since our method retains natural spill points such as loop boundaries and
nested control we should not suffer any side effects.  Further, since the
local variables of the inlined function will all be local to the function's
tile, the cost of coloring after inline expansion should be proportional to
the combined cost of coloring each function separately."

:func:`inline_call` splices a callee's CFG into a caller at one call site;
experiment E13 measures the claim.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.ir.basic_block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instr, Opcode

_inline_counter = itertools.count(1)


class InlineError(ValueError):
    """Raised when a call site cannot be inlined."""


def find_call(caller: Function, callee_name: str):
    """Locate the first CALL to *callee_name*: (block label, instr index)."""
    for label, block in caller.blocks.items():
        for idx, instr in enumerate(block.instrs):
            if instr.op is Opcode.CALL and instr.imm == callee_name:
                return label, idx
    raise InlineError(f"no call to {callee_name!r} in {caller.name!r}")


def inline_call(
    caller: Function,
    callee: Function,
    site: Optional[tuple] = None,
) -> Function:
    """Return a copy of *caller* with one call to *callee* expanded inline.

    The callee's variables and labels are renamed apart (prefix
    ``inlN.``); parameters become copies of the argument variables;
    each return becomes copies into the call's destinations plus a jump to
    the code after the call.  Array state is shared (both functions address
    the same memory), matching the simulator's semantics.
    """
    if site is None:
        site = find_call(caller, callee.name)
    label, idx = site
    out = caller.clone()
    call = out.blocks[label].instrs[idx]
    if call.op is not Opcode.CALL:
        raise InlineError(f"instruction at {site} is not a call")
    if len(call.uses) != len(callee.params):
        raise InlineError(
            f"call passes {len(call.uses)} args, callee takes "
            f"{len(callee.params)}"
        )

    tag = f"inl{next(_inline_counter)}"

    def var_of(name: str) -> str:
        return f"{tag}.{name}"

    def label_of(name: str) -> str:
        return f"{tag}.{name}"

    # Split the call block: head keeps everything before the call, tail
    # receives everything after it (including the terminator).
    head = out.blocks[label]
    before = head.instrs[:idx]
    after = head.instrs[idx + 1:]
    tail_label = out.new_label(f"{tag}.ret")
    tail = BasicBlock(tail_label, after, list(head.succ_labels))
    out.add_block(tail)

    head.instrs = before
    for param, arg in zip(callee.params, call.uses):
        head.instrs.append(
            Instr(Opcode.COPY, defs=(var_of(param),), uses=(arg,))
        )
    callee_entry = callee.blocks[callee.start_label].succ_labels[0]
    head.succ_labels = [label_of(callee_entry)]

    # Splice the callee body (excluding its start/stop blocks).
    for cb_label, cb in callee.blocks.items():
        if cb_label in (callee.start_label, callee.stop_label):
            continue
        new_block = BasicBlock(label_of(cb_label))
        for instr in cb.instrs:
            if instr.op is Opcode.RET:
                for dst, src in zip(call.defs, instr.uses):
                    new_block.instrs.append(
                        Instr(Opcode.COPY, defs=(dst,), uses=(var_of(src),))
                    )
                new_block.instrs.append(Instr(Opcode.BR))
            else:
                new_block.instrs.append(
                    instr.fresh_clone().rewrite(var_of)
                )
        new_block.succ_labels = [
            tail_label if succ == callee.stop_label else label_of(succ)
            for succ in cb.succ_labels
        ]
        out.add_block(new_block)

    out.invalidate_caches()
    return out


def inline_all(caller: Function, callee: Function) -> Function:
    """Inline every call to *callee* (fixed point)."""
    out = caller
    while True:
        try:
            site = find_call(out, callee.name)
        except InlineError:
            return out
        out = inline_call(out, callee, site)
