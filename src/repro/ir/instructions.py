"""Instruction set of the toy IR.

Instructions are three-address operations over *virtual registers*
(arbitrary identifier strings).  After register allocation the same
instruction classes are reused with *physical register* names, which by
convention are spelled ``R0``, ``R1``, ... (see :func:`phys_reg`).

Every instruction carries explicit ``defs`` and ``uses`` tuples; the
allocators consume nothing else about an instruction except its opcode
(for spill-cost and preference special cases such as :attr:`Opcode.COPY`).
"""

from __future__ import annotations

import enum
import itertools
import re
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Tuple


class Opcode(enum.Enum):
    """Operation codes for the toy IR.

    The set is intentionally small but sufficient to express the numeric
    kernels and control-flow shapes used throughout the paper: arithmetic,
    comparisons, array loads/stores, branches, calls and the spill
    instructions inserted by register allocation.
    """

    # Value-producing operations.
    CONST = "const"     # dst = imm
    COPY = "copy"       # dst = src  (source of preferences, paper section 3)
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"         # integer division semantics in the simulator
    MOD = "mod"
    NEG = "neg"
    MIN = "min"
    MAX = "max"
    AND = "and"
    OR = "or"
    NOT = "not"
    CMP_LT = "cmplt"
    CMP_LE = "cmple"
    CMP_EQ = "cmpeq"
    CMP_NE = "cmpne"
    CMP_GT = "cmpgt"
    CMP_GE = "cmpge"

    # Program-level memory traffic (distinct from spill traffic).
    LOAD = "load"       # dst = array[idx]      (imm = array name)
    STORE = "store"     # array[idx] = src      (imm = array name)

    # Calls (lowered before allocation by repro.machine.calls).
    CALL = "call"       # dsts = call imm(uses)

    # Control flow (block terminators).
    BR = "br"           # unconditional; successor taken from the block
    CBR = "cbr"         # conditional on single use; successors[0]=true
    RET = "ret"         # return uses; only legal in the stop block

    # Inserted by register allocation.
    SPILL_ST = "spillst"   # slot(imm) = src   -- store to a spill slot
    SPILL_LD = "spillld"   # dst = slot(imm)   -- reload from a spill slot
    MOVE = "move"          # dst = src         -- register-to-register transfer
    NOP = "nop"


#: Opcodes that terminate a basic block.
TERMINATORS = frozenset({Opcode.BR, Opcode.CBR, Opcode.RET})

#: Opcodes whose execution touches memory (the quantity the paper minimizes
#: is *dynamic memory references*; spill traffic and program traffic are
#: tallied separately by the simulator).
MEMORY_OPS = frozenset({Opcode.LOAD, Opcode.STORE, Opcode.SPILL_ST, Opcode.SPILL_LD})

#: Spill instructions specifically (inserted by allocators).
SPILL_OPS = frozenset({Opcode.SPILL_ST, Opcode.SPILL_LD})

_BINARY_EVAL = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: lambda a, b: int(a / b) if b != 0 else 0,
    Opcode.MOD: lambda a, b: a % b if b != 0 else 0,
    Opcode.MIN: min,
    Opcode.MAX: max,
    Opcode.AND: lambda a, b: int(bool(a) and bool(b)),
    Opcode.OR: lambda a, b: int(bool(a) or bool(b)),
    Opcode.CMP_LT: lambda a, b: int(a < b),
    Opcode.CMP_LE: lambda a, b: int(a <= b),
    Opcode.CMP_EQ: lambda a, b: int(a == b),
    Opcode.CMP_NE: lambda a, b: int(a != b),
    Opcode.CMP_GT: lambda a, b: int(a > b),
    Opcode.CMP_GE: lambda a, b: int(a >= b),
}

_UNARY_EVAL = {
    Opcode.NEG: lambda a: -a,
    Opcode.NOT: lambda a: int(not a),
}

BINARY_OPS = frozenset(_BINARY_EVAL)
UNARY_OPS = frozenset(_UNARY_EVAL)

#: Evaluator tables keyed by the opcode's string value: the simulator's
#: inner loop dispatches on ``op._value_`` because str hashing is C-level
#: while ``Enum.__hash__`` is a Python call per dynamic instruction.
BINARY_EVAL_BY_VALUE = {op.value: fn for op, fn in _BINARY_EVAL.items()}
UNARY_EVAL_BY_VALUE = {op.value: fn for op, fn in _UNARY_EVAL.items()}

_BY_MNEMONIC = {op.value: op for op in Opcode}

_PHYS_RE = re.compile(r"^R(\d+)$")

_instr_counter = itertools.count(1)


def phys_reg(index: int) -> str:
    """Return the canonical name of physical register *index* (``R0`` ...)."""
    return f"R{index}"


def is_phys(name: str) -> bool:
    """True if *name* is a physical register name (``R<digits>``)."""
    # Equivalent to the regex (isdecimal == Unicode Nd == ``\d``) without
    # the per-call regex-engine cost; this predicate runs per reference in
    # several hot loops.
    return len(name) > 1 and name[0] == "R" and name[1:].isdecimal()


def phys_index(name: str) -> int:
    """Inverse of :func:`phys_reg`; raises ``ValueError`` on non-physical names."""
    m = _PHYS_RE.match(name)
    if m is None:
        raise ValueError(f"{name!r} is not a physical register name")
    return int(m.group(1))


@dataclass
class Instr:
    """A single three-address instruction.

    Attributes:
        op: the :class:`Opcode`.
        defs: variables defined (written) by this instruction.
        uses: variables used (read) by this instruction, in operand order.
        imm: opcode-specific payload -- the literal for ``CONST``, the array
            name for ``LOAD``/``STORE``, the callee name for ``CALL``, the
            spill-slot key for ``SPILL_LD``/``SPILL_ST``.
        clobbers: physical registers destroyed as a side effect (calls).
        uid: unique id, stable across copies made with :meth:`clone`, used
            to key per-instruction analysis results.
    """

    op: Opcode
    defs: Tuple[str, ...] = ()
    uses: Tuple[str, ...] = ()
    imm: Any = None
    clobbers: Tuple[str, ...] = ()
    uid: int = field(default_factory=lambda: next(_instr_counter))

    def __post_init__(self) -> None:
        self.defs = tuple(self.defs)
        self.uses = tuple(self.uses)
        self.clobbers = tuple(self.clobbers)

    @property
    def is_terminator(self) -> bool:
        return self.op in TERMINATORS

    @property
    def is_memory(self) -> bool:
        return self.op in MEMORY_OPS

    @property
    def is_spill(self) -> bool:
        return self.op in SPILL_OPS

    @property
    def is_copy_like(self) -> bool:
        """Copies and moves generate preferences (paper section 3)."""
        return self.op in (Opcode.COPY, Opcode.MOVE)

    def variables(self) -> Tuple[str, ...]:
        """All variables referenced (defs then uses)."""
        return self.defs + self.uses

    def rewrite(self, mapping) -> "Instr":
        """Return a copy with defs/uses substituted through *mapping*.

        *mapping* is any callable ``old_name -> new_name``; names absent
        from the mapping should be returned unchanged by the callable.
        The ``uid`` is preserved so analysis keyed on uids stays valid.
        """
        # Same direct-assignment construction as :meth:`clone` -- the
        # substituted defs/uses are built as tuples right here.
        new = Instr.__new__(Instr)
        new.op = self.op
        new.defs = tuple(mapping(d) for d in self.defs)
        new.uses = tuple(mapping(u) for u in self.uses)
        new.imm = self.imm
        new.clobbers = self.clobbers
        new.uid = self.uid
        return new

    def clone(self) -> "Instr":
        """Structural copy preserving the uid."""
        # Direct attribute assignment: the source's fields are already
        # normalized tuples (``__post_init__`` ran when it was built), so
        # the dataclass ``__init__``/``__post_init__`` round would only
        # re-tuple tuples -- and clones are made per instruction in the
        # spill-rewrite and web-renaming loops.
        new = Instr.__new__(Instr)
        new.op = self.op
        new.defs = self.defs
        new.uses = self.uses
        new.imm = self.imm
        new.clobbers = self.clobbers
        new.uid = self.uid
        return new

    def fresh_clone(self) -> "Instr":
        """Structural copy with a brand-new uid."""
        return replace(self, uid=next(_instr_counter))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.ir.printer import format_instr

        return f"<Instr {format_instr(self)}>"


def make_binary(op: Opcode, dst: str, lhs: str, rhs: str) -> Instr:
    """Construct a binary arithmetic/comparison instruction."""
    if op not in BINARY_OPS:
        raise ValueError(f"{op} is not a binary opcode")
    return Instr(op, defs=(dst,), uses=(lhs, rhs))


def make_unary(op: Opcode, dst: str, src: str) -> Instr:
    """Construct a unary instruction."""
    if op not in UNARY_OPS:
        raise ValueError(f"{op} is not a unary opcode")
    return Instr(op, defs=(dst,), uses=(src,))


def eval_binary(op: Opcode, a, b):
    """Evaluate a binary opcode on concrete values (simulator hook)."""
    return _BINARY_EVAL[op](a, b)


def eval_unary(op: Opcode, a):
    """Evaluate a unary opcode on a concrete value (simulator hook)."""
    return _UNARY_EVAL[op](a)


def opcode_from_mnemonic(mnemonic: str) -> Opcode:
    """Look up an :class:`Opcode` by its textual mnemonic."""
    op = _BY_MNEMONIC.get(mnemonic)
    if op is None:
        raise ValueError(f"unknown opcode mnemonic {mnemonic!r}")
    return op
