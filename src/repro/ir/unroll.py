"""Loop unrolling.

The paper's introduction motivates structure-aware allocation with exactly
this transformation: "aggressive loop unrolling and operation scheduling
are required, both of which increase register pressure at various points in
the program."

:func:`unroll_loop` replicates a loop body *factor* times, chaining each
copy's back edge to the next copy's header (the last copy closes the loop).
Every copy keeps its own exit tests, so the transformation is correct for
any trip count -- no prologue or remainder loop is needed.  Variables are
shared between copies (the IR is not SSA), so behaviour is preserved
verbatim; pressure effects appear once renaming or scheduling runs over
the enlarged body, or simply through the enlarged tiles the allocator must
color (bench E16).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.loops import build_loop_forest
from repro.ir.function import Function


class UnrollError(ValueError):
    """Raised when a loop cannot be unrolled."""


def unroll_loop(
    fn: Function, header: Optional[str] = None, factor: int = 2
) -> Function:
    """Return a copy of *fn* with one loop unrolled *factor* times.

    Args:
        fn: the function.
        header: loop-top label; defaults to (one of) the innermost loops.
        factor: total number of body copies (2 = doubled).
    """
    if factor < 2:
        return fn.clone()
    forest = build_loop_forest(fn)
    if not len(forest):
        raise UnrollError("function has no loops")
    if header is None:
        loop = max(forest, key=lambda l: l.depth)
    else:
        matches = [l for l in forest if l.header == header]
        if not matches:
            raise UnrollError(f"no loop with header {header!r}")
        loop = max(matches, key=lambda l: l.depth)
    if loop.irreducible:
        raise UnrollError("cannot unroll an irreducible loop")

    out = fn.clone()
    loop_blocks = sorted(loop.blocks)

    def copy_label(label: str, k: int) -> str:
        return label if k == 0 else f"{label}.u{k}"

    # Create the copies.
    for k in range(1, factor):
        for label in loop_blocks:
            block = out.blocks[label].clone()
            block.label = copy_label(label, k)
            block.instrs = [i.fresh_clone() for i in block.instrs]
            out.add_block(block)

    # Rewire successors: within copy k, internal edges stay in copy k,
    # except edges to the header (back edges), which advance to copy k+1;
    # the last copy returns to the original header.  Exit edges are left
    # pointing outside the loop.
    for k in range(factor):
        for label in loop_blocks:
            block = out.blocks[copy_label(label, k)]
            new_succs = []
            for succ in block.succ_labels:
                if succ == loop.header:
                    nxt = (k + 1) % factor
                    new_succs.append(copy_label(loop.header, nxt))
                elif succ in loop.blocks:
                    new_succs.append(copy_label(succ, k))
                else:
                    new_succs.append(succ)
            block.succ_labels = new_succs

    out.invalidate_caches()
    return out


def unroll_innermost(fn: Function, factor: int = 2) -> Function:
    """Unroll every innermost loop of *fn* by *factor*."""
    forest = build_loop_forest(fn)
    headers = [l.header for l in forest if not l.children and not l.irreducible]
    out = fn
    for header in headers:
        out = unroll_loop(out, header=header, factor=factor)
    return out
