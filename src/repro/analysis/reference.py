"""Reference (pre-bitset) analysis implementations.

The seed repository computed liveness and interference over Python string
sets; ``repro.analysis.liveness`` and ``repro.graph.interference`` now run
over interned bitsets.  This module preserves the original algorithms
verbatim as an *oracle*: the property tests assert the bitset
implementations produce exactly the same sets and edges on random
structured programs, and ``benchmarks/bench_analysis_speed.py`` uses them
to report the analysis-layer speedup.  Nothing in the allocator imports
this module.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.liveness import block_use_def
from repro.graph.interference import InterferenceGraph
from repro.ir.function import Function


class ReferenceLiveness:
    """String-set liveness result mirroring the seed's ``Liveness``."""

    def __init__(
        self,
        fn: Function,
        live_in: Dict[str, FrozenSet[str]],
        live_out: Dict[str, FrozenSet[str]],
    ) -> None:
        self._fn = fn
        self.live_in = live_in
        self.live_out = live_out

    def live_on_edge(self, src: str, dst: str) -> FrozenSet[str]:
        return self.live_in[dst]

    def instr_live_out(self, label: str) -> List[FrozenSet[str]]:
        block = self._fn.blocks[label]
        live: Set[str] = set(self.live_out[label])
        out: List[FrozenSet[str]] = [frozenset()] * len(block.instrs)
        for i in range(len(block.instrs) - 1, -1, -1):
            instr = block.instrs[i]
            out[i] = frozenset(live)
            live.difference_update(instr.defs)
            live.update(instr.uses)
        return out

    def instr_live_in(self, label: str) -> List[FrozenSet[str]]:
        block = self._fn.blocks[label]
        live: Set[str] = set(self.live_out[label])
        result: List[FrozenSet[str]] = [frozenset()] * len(block.instrs)
        for i in range(len(block.instrs) - 1, -1, -1):
            instr = block.instrs[i]
            live.difference_update(instr.defs)
            live.update(instr.uses)
            result[i] = frozenset(live)
        return result


def reference_liveness(fn: Function) -> ReferenceLiveness:
    """The seed's iterative backward dataflow over string sets."""
    use_map: Dict[str, Set[str]] = {}
    def_map: Dict[str, Set[str]] = {}
    for label, block in fn.blocks.items():
        uses, defs = block_use_def(block)
        use_map[label] = uses
        def_map[label] = defs

    live_in: Dict[str, Set[str]] = {label: set() for label in fn.blocks}
    live_out: Dict[str, Set[str]] = {label: set() for label in fn.blocks}

    order = list(fn.rpo())
    order_set = set(order)
    order += [label for label in fn.blocks if label not in order_set]
    worklist = list(reversed(order))
    in_worklist = set(worklist)
    preds = fn.predecessors_map()

    while worklist:
        label = worklist.pop()
        in_worklist.discard(label)
        block = fn.blocks[label]
        new_out: Set[str] = set()
        for succ in block.succ_labels:
            new_out.update(live_in[succ])
        new_in = use_map[label] | (new_out - def_map[label])
        if new_out != live_out[label] or new_in != live_in[label]:
            live_out[label] = new_out
            live_in[label] = new_in
            for pred in preds[label]:
                if pred not in in_worklist:
                    worklist.append(pred)
                    in_worklist.add(pred)

    return ReferenceLiveness(
        fn,
        {label: frozenset(s) for label, s in live_in.items()},
        {label: frozenset(s) for label, s in live_out.items()},
    )


def reference_interference(
    fn: Function,
    liveness: ReferenceLiveness,
    labels=None,
    relevant=None,
) -> InterferenceGraph:
    """The seed's Chaitin-style construction over string sets."""
    graph = InterferenceGraph()
    if labels is None:
        labels = list(fn.blocks)

    def keep(var: str) -> bool:
        return relevant is None or var in relevant

    for label in labels:
        block = fn.blocks[label]
        live_out_per_instr = liveness.instr_live_out(label)
        for instr, live_after in zip(block.instrs, live_out_per_instr):
            for var in instr.defs:
                if keep(var):
                    graph.add_node(var)
            for var in instr.uses:
                if keep(var):
                    graph.add_node(var)
            exempt: Set[str] = set()
            if instr.is_copy_like:
                exempt.add(instr.uses[0])
            written = instr.defs + instr.clobbers
            for var in instr.clobbers:
                if keep(var):
                    graph.add_node(var)
            for var in written:
                if not keep(var):
                    continue
                for other in live_after:
                    if other == var or other in exempt or not keep(other):
                        continue
                    graph.add_edge(var, other)
                for sibling in written:
                    if sibling != var and keep(sibling):
                        graph.add_edge(var, sibling)
    return graph
