"""Block and edge execution probabilities.

All of the paper's spill analysis "is based on the probability of being in a
particular basic block or flowing along a particular control flow edge"
(``Prob(b)`` and ``Prob(e)`` in section 4), and "profiling information can be
trivially incorporated".  This module provides both sources:

* :func:`estimate_frequencies` -- a static estimator.  Branch arms split
  probability evenly except that loop back edges receive
  ``LOOP_BACK_PROB``, giving the conventional expected trip count of 10;
  block frequencies are then the exact expected visit counts of the
  resulting Markov chain, solved as a sparse-ish linear system.
* :func:`frequencies_from_profile` -- exact frequencies from simulator
  :class:`~repro.machine.simulator.Profile` counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy

from repro.analysis.dominators import compute_dominators
from repro.analysis.loops import build_loop_forest
from repro.ir.function import Function

#: Probability of taking a loop back edge (expected trip count of 10).
LOOP_BACK_PROB = 0.9

#: Probability floor/damping keeping the chain absorbing even for loops the
#: static view believes are exitless.
_DAMPING = 1e-9


@dataclass
class FrequencyInfo:
    """Execution frequency estimates for one function.

    ``block_freq[b]`` is the paper's ``Prob(b)`` and ``edge_freq[(u, v)]``
    its ``Prob(e)`` -- expected executions per entry of the function (the
    paper's "probability" is relative frequency; using expected counts
    keeps loop bodies weighted more than their surroundings, which is what
    the spill formulas need).
    """

    block_freq: Dict[str, float]
    edge_freq: Dict[Tuple[str, str], float]
    source: str = "static"

    def prob_block(self, label: str) -> float:
        return self.block_freq.get(label, 0.0)

    def prob_edge(self, edge: Tuple[str, str]) -> float:
        return self.edge_freq.get(edge, 0.0)

    def with_block(self, label: str, freq: float) -> None:
        self.block_freq[label] = freq


def _branch_probabilities(fn: Function) -> Dict[Tuple[str, str], float]:
    """Static per-edge transition probabilities.

    At a multi-way branch inside a loop, arms that remain in the block's
    innermost loop collectively receive :data:`LOOP_BACK_PROB` (loop
    continuation) and arms that leave it share the rest, which yields the
    conventional expected trip count of ``1 / (1 - LOOP_BACK_PROB)``.
    Branches with no loop-exit distinction split evenly.
    """
    forest = build_loop_forest(fn)
    probs: Dict[Tuple[str, str], float] = {}
    for label, block in fn.blocks.items():
        succs = block.succ_labels
        if not succs:
            continue
        if len(succs) == 1:
            probs[(label, succs[0])] = 1.0
            continue
        loop = forest.innermost_loop(label)
        staying = [
            s for s in succs if loop is not None and s in loop.blocks
        ]
        weights: List[float] = []
        if staying and len(staying) < len(succs):
            for s in succs:
                if s in staying:
                    weights.append(LOOP_BACK_PROB / len(staying))
                else:
                    weights.append(
                        (1.0 - LOOP_BACK_PROB) / (len(succs) - len(staying))
                    )
        else:
            weights = [1.0 / len(succs)] * len(succs)
        for s, w in zip(succs, weights):
            probs[(label, s)] = probs.get((label, s), 0.0) + w
    return probs


def estimate_frequencies(fn: Function) -> FrequencyInfo:
    """Expected visit counts assuming the static branch model.

    Solves ``f = e_start + P^T f`` restricted to reachable blocks, where
    ``P`` is the transition matrix (stop is absorbing).  This is exact for
    the assumed probabilities, handles arbitrary reducible and irreducible
    control flow, and needs no heuristics beyond the branch model.
    """
    labels = fn.rpo()
    index = {label: i for i, label in enumerate(labels)}
    n = len(labels)
    probs = _branch_probabilities(fn)

    # f = e + P^T f  =>  (I - P^T) f = e
    matrix = numpy.eye(n)
    for (u, v), p in probs.items():
        if u in index and v in index and u != fn.stop_label:
            matrix[index[v], index[u]] -= p * (1.0 - _DAMPING)
    rhs = numpy.zeros(n)
    rhs[index[fn.start_label]] = 1.0
    try:
        freq = numpy.linalg.solve(matrix, rhs)
    except numpy.linalg.LinAlgError:  # pragma: no cover - damped, singularity unlikely
        freq, *_ = numpy.linalg.lstsq(matrix, rhs, rcond=None)

    block_freq = {label: max(float(freq[index[label]]), 0.0) for label in labels}
    edge_freq = {
        (u, v): block_freq.get(u, 0.0) * p
        for (u, v), p in probs.items()
        if u in index
    }
    return FrequencyInfo(block_freq, edge_freq, source="static")


def frequencies_from_profile(fn: Function, profile) -> FrequencyInfo:
    """Frequencies from measured execution counts.

    Counts are normalized by the number of function entries so they are
    comparable with :func:`estimate_frequencies` output.
    """
    entries = max(profile.block_counts.get(fn.start_label, 1), 1)
    block_freq = {
        label: profile.block_counts.get(label, 0) / entries
        for label in fn.blocks
    }
    edge_freq = {
        (u, v): count / entries for (u, v), count in profile.edge_counts.items()
    }
    # Edges never taken still need an entry so spill placement can reason
    # about them (zero cost -- ideal spill locations).
    for u, v in fn.edges():
        edge_freq.setdefault((u, v), 0.0)
    return FrequencyInfo(block_freq, edge_freq, source="profile")


def loop_depth_weights(fn: Function, base: float = 10.0) -> Dict[str, float]:
    """The textbook ``base**depth`` weighting, exposed for comparison
    benches (Chaitin's original spill-cost estimate)."""
    forest = build_loop_forest(fn)
    return {
        label: base ** forest.loop_depth(label) for label in fn.blocks
    }
