"""Loop nesting forest (the paper's interval structure).

Appendix A builds tiles starting "with a tile graph corresponding to the
control flow graph" and identifies "the loop structure based on intervals in
the flow graph".  We compute an equivalent nesting forest with an SCC-based
recursion (Bourdoncle-style) that handles irreducible regions the way the
paper prescribes: all blocks of an irreducible loop reached by forward edges
are "combined in the tile tree and treated as a single summary loop top".

Each non-trivial strongly connected region becomes a :class:`Loop`; nesting
is discovered by deleting the edges entering the loop's header(s) and
recursing on the remainder.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

Node = Hashable


class Loop:
    """A (possibly irreducible) loop.

    Attributes:
        header: the loop-top block.  For irreducible loops this is the
            summary entry chosen among the multiple entries (first in RPO);
            ``entries`` lists them all.
        blocks: all blocks belonging to the loop, including inner loops.
        entries: blocks inside the loop targeted by edges from outside.
        parent: enclosing loop or ``None`` for top-level loops.
        children: directly nested loops.
        depth: nesting depth, 1 for top-level loops.
        irreducible: True when the region has multiple entries.
    """

    def __init__(
        self,
        header: Node,
        blocks: FrozenSet[Node],
        entries: Tuple[Node, ...],
        irreducible: bool,
    ) -> None:
        self.header = header
        self.blocks = blocks
        self.entries = entries
        self.irreducible = irreducible
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []
        self.depth = 1

    def own_blocks(self) -> Set[Node]:
        """Blocks in this loop but not in any child loop."""
        out = set(self.blocks)
        for child in self.children:
            out -= child.blocks
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "irreducible " if self.irreducible else ""
        return f"<{kind}Loop header={self.header} depth={self.depth} |blocks|={len(self.blocks)}>"


class LoopForest:
    """All loops of a function, with nesting resolved."""

    def __init__(self, loops: List[Loop], fn_blocks: Sequence[Node]) -> None:
        self.loops = loops
        self.top_level = [l for l in loops if l.parent is None]
        self._depth: Dict[Node, int] = {b: 0 for b in fn_blocks}
        self._innermost: Dict[Node, Optional[Loop]] = {b: None for b in fn_blocks}
        for loop in loops:
            for block in loop.blocks:
                if loop.depth > self._depth.get(block, 0):
                    self._depth[block] = loop.depth
                    self._innermost[block] = loop

    def loop_depth(self, block: Node) -> int:
        """Nesting depth of *block* (0 if in no loop)."""
        return self._depth.get(block, 0)

    def innermost_loop(self, block: Node) -> Optional[Loop]:
        return self._innermost.get(block)

    def headers(self) -> Set[Node]:
        return {l.header for l in self.loops}

    def __len__(self) -> int:
        return len(self.loops)

    def __iter__(self):
        return iter(self.loops)


def _tarjan_sccs(
    nodes: Sequence[Node], succs: Mapping[Node, Sequence[Node]]
) -> List[List[Node]]:
    """Strongly connected components (iterative Tarjan), in reverse
    topological order of the condensation."""
    index: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    result: List[List[Node]] = []
    counter = [0]
    node_set = set(nodes)
    # A node is revisited once per recursion into a child; filtering its
    # successor list against ``node_set`` on every resume re-ran the
    # comprehension O(edges) times.  Filter once per node.
    children_of: Dict[Node, List[Node]] = {}

    for root in nodes:
        if root in index:
            continue
        work: List[Tuple[Node, int]] = [(root, 0)]
        while work:
            node, child_idx = work.pop()
            if child_idx == 0:
                index[node] = counter[0]
                lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = children_of.get(node)
            if children is None:
                children = [s for s in succs.get(node, ()) if s in node_set]
                children_of[node] = children
            for i in range(child_idx, len(children)):
                child = children[i]
                if child not in index:
                    work.append((node, i + 1))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                scc: List[Node] = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    scc.append(top)
                    if top == node:
                        break
                result.append(scc)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return result


def _find_loops(
    nodes: Sequence[Node],
    succs: Mapping[Node, Sequence[Node]],
    preds: Mapping[Node, Sequence[Node]],
    rpo_index: Mapping[Node, int],
    parent: Optional[Loop],
    out: List[Loop],
) -> None:
    node_set = set(nodes)
    for scc in _tarjan_sccs(nodes, succs):
        scc_set = set(scc)
        if len(scc) == 1:
            node = scc[0]
            if node not in succs.get(node, ()):
                # Not a self-loop: trivial SCC, not a loop.
                continue
        # Entries: targets of edges from outside the SCC (or the subgraph
        # root, which has no preds inside this node set).
        entries = sorted(
            {
                n
                for n in scc_set
                if any(p not in scc_set for p in preds.get(n, ()))
                or not list(preds.get(n, ()))
            },
            key=lambda n: rpo_index.get(n, 1 << 30),
        )
        if not entries:
            entries = sorted(scc_set, key=lambda n: rpo_index.get(n, 1 << 30))[:1]
        irreducible = len(entries) > 1
        loop = Loop(entries[0], frozenset(scc_set), tuple(entries), irreducible)
        loop.parent = parent
        if parent is not None:
            parent.children.append(loop)
            loop.depth = parent.depth + 1
        out.append(loop)

        # Recurse into the loop body with edges entering the header(s)
        # removed, exposing inner loops.
        entry_set = set(entries)
        inner_nodes = [n for n in nodes if n in scc_set]
        inner_succs = {
            n: [s for s in succs.get(n, ()) if s in scc_set and s not in entry_set]
            for n in inner_nodes
        }
        inner_preds: Dict[Node, List[Node]] = {n: [] for n in inner_nodes}
        for n, ss in inner_succs.items():
            for s in ss:
                inner_preds[s].append(n)
        _find_loops(inner_nodes, inner_succs, inner_preds, rpo_index, loop, out)


def build_loop_forest(fn) -> LoopForest:
    """Loop nesting forest of a :class:`~repro.ir.function.Function`."""
    rpo = fn.rpo()
    rpo_index = {label: i for i, label in enumerate(rpo)}
    labels = list(fn.blocks)
    succs = {label: list(fn.blocks[label].succ_labels) for label in labels}
    preds = fn.predecessors_map()
    loops: List[Loop] = []
    _find_loops(labels, succs, preds, rpo_index, None, loops)
    return LoopForest(loops, labels)


def back_edges(fn, dom_tree) -> List[Tuple[Node, Node]]:
    """Edges ``u -> v`` where *v* dominates *u* (reducible back edges)."""
    out = []
    for u, v in fn.edges():
        if u in dom_tree.idom and v in dom_tree.idom and dom_tree.dominates(v, u):
            out.append((u, v))
    return out
