"""Dominator and post-dominator trees.

Implements the Cooper-Harvey-Kennedy iterative algorithm ("A Simple, Fast
Dominance Algorithm") over arbitrary successor maps so the same code serves
both the whole CFG and the per-interval graphs used by tile construction
(paper Appendix A computes dominators of coalesced interval graphs).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Set

Node = Hashable


class DomTree:
    """An (immediate-)dominator tree over a node set.

    ``idom[root] == root`` by convention.  Unreachable nodes are absent.
    """

    def __init__(self, root: Node, idom: Dict[Node, Node], rpo: Sequence[Node]):
        self.root = root
        self.idom = idom
        self.rpo_order: List[Node] = list(rpo)
        self._rpo_index = {n: i for i, n in enumerate(self.rpo_order)}
        self._children: Dict[Node, List[Node]] = {n: [] for n in idom}
        for node, parent in idom.items():
            if node != root:
                self._children[parent].append(node)
        self._depth: Dict[Node, int] = {}
        # Euler-tour interval labels make dominates() O(1): a dominates b
        # iff a's [tin, tout) interval contains b's tin.
        self._tin: Dict[Node, int] = {}
        self._tout: Dict[Node, int] = {}
        self._compute_depths_and_intervals()

    def _compute_depths_and_intervals(self) -> None:
        self._depth[self.root] = 0
        clock = 0
        stack: List[tuple] = [(self.root, False)]
        while stack:
            node, leaving = stack.pop()
            if leaving:
                self._tout[node] = clock
                continue
            self._tin[node] = clock
            clock += 1
            stack.append((node, True))
            for child in self._children[node]:
                self._depth[child] = self._depth[node] + 1
                stack.append((child, False))

    def children(self, node: Node) -> List[Node]:
        return list(self._children.get(node, ()))

    def depth(self, node: Node) -> int:
        return self._depth[node]

    def __contains__(self, node: Node) -> bool:
        return node in self.idom

    def dominates(self, a: Node, b: Node) -> bool:
        """True if *a* dominates *b* (reflexive); O(1) via tour intervals."""
        return self._tin[a] <= self._tin[b] < self._tout[a]

    def strictly_dominates(self, a: Node, b: Node) -> bool:
        return a != b and self.dominates(a, b)

    def walk_up(self, node: Node) -> Iterable[Node]:
        """Yield node, idom(node), ... up to and including the root."""
        while True:
            yield node
            parent = self.idom[node]
            if parent == node:
                return
            node = parent


def _generic_rpo(root: Node, succs: Mapping[Node, Sequence[Node]]) -> List[Node]:
    seen: Set[Node] = {root}
    order: List[Node] = []
    stack = [(root, iter(succs.get(root, ())))]
    while stack:
        node, it = stack[-1]
        advanced = False
        for nxt in it:
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, iter(succs.get(nxt, ()))))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    order.reverse()
    return order


def compute_idoms(
    root: Node, succs: Mapping[Node, Sequence[Node]]
) -> DomTree:
    """Dominator tree of the graph given by *succs*, rooted at *root*.

    Nodes unreachable from *root* are ignored.
    """
    rpo = _generic_rpo(root, succs)
    index = {n: i for i, n in enumerate(rpo)}
    preds: Dict[Node, List[Node]] = {n: [] for n in rpo}
    for node in rpo:
        for nxt in succs.get(node, ()):
            if nxt in index:
                preds[nxt].append(node)

    idom: Dict[Node, Optional[Node]] = {n: None for n in rpo}
    idom[root] = root

    def intersect(a: Node, b: Node) -> Node:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == root:
                continue
            candidates = [p for p in preds[node] if idom[p] is not None]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom[node] != new_idom:
                idom[node] = new_idom
                changed = True

    final = {n: d for n, d in idom.items() if d is not None}
    return DomTree(root, final, rpo)


def compute_dominators(fn) -> DomTree:
    """Dominator tree of a :class:`~repro.ir.function.Function`."""
    succs = {label: list(block.succ_labels) for label, block in fn.blocks.items()}
    return compute_idoms(fn.start_label, succs)


def compute_postdominators(fn) -> DomTree:
    """Post-dominator tree (dominators of the reversed CFG from stop)."""
    preds: Dict[Node, List[Node]] = {label: [] for label in fn.blocks}
    for label, block in fn.blocks.items():
        for succ in block.succ_labels:
            preds[succ].append(label)
    return compute_idoms(fn.stop_label, preds)
