"""Live-variable analysis.

Classic backward iterative dataflow over the CFG.  Besides block-level
``live_in``/``live_out`` sets the module exposes per-instruction live sets
(needed by interference construction) and per-edge liveness (needed to place
spill code on tile entry/exit edges, where the paper's ``Live_e(v)`` term is
evaluated).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Instr


class Liveness:
    """Result of live-variable analysis on one function."""

    def __init__(
        self,
        fn: Function,
        live_in: Dict[str, FrozenSet[str]],
        live_out: Dict[str, FrozenSet[str]],
    ) -> None:
        self._fn = fn
        self.live_in = live_in
        self.live_out = live_out

    def live_on_edge(self, src: str, dst: str) -> FrozenSet[str]:
        """Variables live along control edge ``src -> dst``.

        Without phi nodes this is exactly ``live_in(dst)``; the paper's
        ``Live_e(v)`` predicate is membership in this set.
        """
        return self.live_in[dst]

    def instr_live_out(self, label: str) -> List[FrozenSet[str]]:
        """For each instruction in block *label*, the set of variables live
        immediately *after* it (the set interference construction needs at
        each definition point)."""
        block = self._fn.blocks[label]
        live: Set[str] = set(self.live_out[label])
        out: List[FrozenSet[str]] = [frozenset()] * len(block.instrs)
        for i in range(len(block.instrs) - 1, -1, -1):
            instr = block.instrs[i]
            out[i] = frozenset(live)
            live.difference_update(instr.defs)
            live.update(instr.uses)
        return out

    def instr_live_in(self, label: str) -> List[FrozenSet[str]]:
        """Variables live immediately *before* each instruction."""
        block = self._fn.blocks[label]
        live: Set[str] = set(self.live_out[label])
        result: List[FrozenSet[str]] = [frozenset()] * len(block.instrs)
        for i in range(len(block.instrs) - 1, -1, -1):
            instr = block.instrs[i]
            live.difference_update(instr.defs)
            live.update(instr.uses)
            result[i] = frozenset(live)
        return result

    def live_through_blocks(self, labels) -> FrozenSet[str]:
        """Variables live into or out of any block in *labels*."""
        out: Set[str] = set()
        for label in labels:
            out.update(self.live_in[label])
            out.update(self.live_out[label])
        return frozenset(out)


def block_use_def(block) -> Tuple[Set[str], Set[str]]:
    """(upward-exposed uses, defs) of a block."""
    uses: Set[str] = set()
    defs: Set[str] = set()
    for instr in block.instrs:
        for u in instr.uses:
            if u not in defs:
                uses.add(u)
        defs.update(instr.defs)
    return uses, defs


def compute_liveness(fn: Function) -> Liveness:
    """Iterative backward live-variable analysis."""
    use_map: Dict[str, Set[str]] = {}
    def_map: Dict[str, Set[str]] = {}
    for label, block in fn.blocks.items():
        uses, defs = block_use_def(block)
        use_map[label] = uses
        def_map[label] = defs

    live_in: Dict[str, Set[str]] = {label: set() for label in fn.blocks}
    live_out: Dict[str, Set[str]] = {label: set() for label in fn.blocks}

    # Process in reverse RPO for fast convergence; include unreachable
    # blocks afterwards so partially-built functions still analyze.
    order = fn.rpo()
    order_set = set(order)
    order += [label for label in fn.blocks if label not in order_set]
    worklist = list(reversed(order))
    in_worklist = set(worklist)
    preds = fn.predecessors_map()

    while worklist:
        label = worklist.pop()
        in_worklist.discard(label)
        block = fn.blocks[label]
        new_out: Set[str] = set()
        for succ in block.succ_labels:
            new_out.update(live_in[succ])
        new_in = use_map[label] | (new_out - def_map[label])
        if new_out != live_out[label] or new_in != live_in[label]:
            live_out[label] = new_out
            live_in[label] = new_in
            for pred in preds[label]:
                if pred not in in_worklist:
                    worklist.append(pred)
                    in_worklist.add(pred)

    return Liveness(
        fn,
        {label: frozenset(s) for label, s in live_in.items()},
        {label: frozenset(s) for label, s in live_out.items()},
    )
