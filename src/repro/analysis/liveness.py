"""Live-variable analysis.

Classic backward iterative dataflow over the CFG.  Besides block-level
``live_in``/``live_out`` sets the module exposes per-instruction live sets
(needed by interference construction) and per-edge liveness (needed to place
spill code on tile entry/exit edges, where the paper's ``Live_e(v)`` term is
evaluated).

Internally the analysis runs over Python-int **bitsets**: variable names are
interned into a dense :class:`~repro.perf.VarIndex` and every live set is a
single int, so the transfer function of a block is two machine-word
operations (``use | (out & ~def)``) instead of Python set algebra.  The
string-facing API (frozensets keyed by label) is a façade materialized from
the bitsets; hot callers can use the ``*_bits`` twins directly.
Per-instruction sets are memoized per block -- tiles revisit the same blocks
many times per coloring round -- with :meth:`Liveness.invalidate` as the
explicit escape hatch should a caller mutate instructions in place.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Instr
from repro.perf.varindex import VarIndex


class Liveness:
    """Result of live-variable analysis on one function.

    ``index`` is the interning table shared by every bitset this object
    hands out; ``live_in_bits``/``live_out_bits`` map block label to the
    block-level bitsets.  The classic ``live_in``/``live_out`` frozenset
    dicts are kept for compatibility and convenience.
    """

    def __init__(
        self,
        fn: Function,
        index: VarIndex,
        live_in_bits: Dict[str, int],
        live_out_bits: Dict[str, int],
        arena=None,
    ) -> None:
        self._fn = fn
        self.index = index
        #: optional :class:`~repro.perf.arena.FunctionArena` backing the
        #: per-instruction scans with precomputed operand bitsets; ignored
        #: once the arena is retired (function mutated).
        self.arena = arena
        self.live_in_bits = live_in_bits
        self.live_out_bits = live_out_bits
        self.live_in: Dict[str, FrozenSet[str]] = {
            label: index.frozenset_of(bits)
            for label, bits in live_in_bits.items()
        }
        self.live_out: Dict[str, FrozenSet[str]] = {
            label: index.frozenset_of(bits)
            for label, bits in live_out_bits.items()
        }
        # Per-instruction memos, filled lazily per block label.
        self._instr_out_bits: Dict[str, List[int]] = {}
        self._instr_in_bits: Dict[str, List[int]] = {}
        self._instr_out_sets: Dict[str, List[FrozenSet[str]]] = {}
        self._instr_in_sets: Dict[str, List[FrozenSet[str]]] = {}

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate(self, label: Optional[str] = None) -> None:
        """Drop memoized per-instruction sets (for *label*, or all).

        Block-level results are *not* recomputed -- a CFG mutation needs a
        fresh :func:`compute_liveness`; this only covers in-place edits to a
        block's instruction list that keep block-level liveness intact.
        """
        if label is None:
            self._instr_out_bits.clear()
            self._instr_in_bits.clear()
            self._instr_out_sets.clear()
            self._instr_in_sets.clear()
        else:
            self._instr_out_bits.pop(label, None)
            self._instr_in_bits.pop(label, None)
            self._instr_out_sets.pop(label, None)
            self._instr_in_sets.pop(label, None)

    # ------------------------------------------------------------------
    # edge-level liveness
    # ------------------------------------------------------------------
    def live_on_edge(self, src: str, dst: str) -> FrozenSet[str]:
        """Variables live along control edge ``src -> dst``.

        Without phi nodes this is exactly ``live_in(dst)``; the paper's
        ``Live_e(v)`` predicate is membership in this set.
        """
        return self.live_in[dst]

    def live_on_edge_bits(self, src: str, dst: str) -> int:
        return self.live_in_bits[dst]

    # ------------------------------------------------------------------
    # instruction-level liveness
    # ------------------------------------------------------------------
    def instr_live_out_bits(self, label: str) -> List[int]:
        """For each instruction in block *label*, the bitset of variables
        live immediately *after* it (memoized)."""
        cached = self._instr_out_bits.get(label)
        if cached is None:
            cached = self._scan_block(label)[0]
        return cached

    def instr_live_in_bits(self, label: str) -> List[int]:
        """Bitsets of variables live immediately *before* each instruction
        (memoized)."""
        cached = self._instr_in_bits.get(label)
        if cached is None:
            cached = self._scan_block(label)[1]
        return cached

    def _scan_block(self, label: str) -> Tuple[List[int], List[int]]:
        """One backward pass filling both per-instruction memo lists."""
        arena = self.arena
        if arena is not None and not arena.retired:
            # Same backward recurrence over the arena's precomputed
            # per-instruction bitsets -- no interning, no object walk.
            outs, ins = arena.scan_block(arena.block_id[label])
            self._instr_out_bits[label] = outs
            self._instr_in_bits[label] = ins
            return outs, ins
        block = self._fn.blocks[label]
        index = self.index
        live = self.live_out_bits[label]
        n = len(block.instrs)
        outs: List[int] = [0] * n
        ins: List[int] = [0] * n
        for i in range(n - 1, -1, -1):
            instr = block.instrs[i]
            outs[i] = live
            if instr.defs:
                live &= ~index.mask_of(instr.defs)
            if instr.uses:
                live |= index.mask_of(instr.uses)
            ins[i] = live
        self._instr_out_bits[label] = outs
        self._instr_in_bits[label] = ins
        return outs, ins

    def instr_live_out(self, label: str) -> List[FrozenSet[str]]:
        """For each instruction in block *label*, the set of variables live
        immediately *after* it (the set interference construction needs at
        each definition point)."""
        cached = self._instr_out_sets.get(label)
        if cached is None:
            index = self.index
            cached = [
                index.frozenset_of(bits)
                for bits in self.instr_live_out_bits(label)
            ]
            self._instr_out_sets[label] = cached
        return cached

    def instr_live_in(self, label: str) -> List[FrozenSet[str]]:
        """Variables live immediately *before* each instruction."""
        cached = self._instr_in_sets.get(label)
        if cached is None:
            index = self.index
            cached = [
                index.frozenset_of(bits)
                for bits in self.instr_live_in_bits(label)
            ]
            self._instr_in_sets[label] = cached
        return cached

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def live_through_blocks(self, labels) -> FrozenSet[str]:
        """Variables live into or out of any block in *labels*."""
        mask = 0
        for label in labels:
            mask |= self.live_in_bits[label] | self.live_out_bits[label]
        return self.index.frozenset_of(mask)


def block_use_def(block) -> Tuple[Set[str], Set[str]]:
    """(upward-exposed uses, defs) of a block."""
    uses: Set[str] = set()
    defs: Set[str] = set()
    for instr in block.instrs:
        for u in instr.uses:
            if u not in defs:
                uses.add(u)
        defs.update(instr.defs)
    return uses, defs


def _block_use_def_bits(block, index: VarIndex) -> Tuple[int, int]:
    """(upward-exposed uses, defs) of a block as bitsets."""
    use_mask = 0
    def_mask = 0
    intern = index.intern
    for instr in block.instrs:
        for u in instr.uses:
            bit = 1 << intern(u)
            if not def_mask & bit:
                use_mask |= bit
        for d in instr.defs:
            def_mask |= 1 << intern(d)
    return use_mask, def_mask


def compute_liveness(
    fn: Function, index: Optional[VarIndex] = None
) -> Liveness:
    """Iterative backward live-variable analysis (bitset worklist).

    Pass *index* to share an interning table across analyses of the same
    function; by default a fresh one is built (deterministically: names are
    interned in block/instruction order).
    """
    if index is None:
        index = VarIndex()
    use_map: Dict[str, int] = {}
    def_map: Dict[str, int] = {}
    for label, block in fn.blocks.items():
        use_map[label], def_map[label] = _block_use_def_bits(block, index)

    live_in: Dict[str, int] = {label: 0 for label in fn.blocks}
    live_out: Dict[str, int] = {label: 0 for label in fn.blocks}

    # Process in reverse RPO for fast convergence; include unreachable
    # blocks afterwards so partially-built functions still analyze.
    order = list(fn.rpo())
    order_set = set(order)
    order += [label for label in fn.blocks if label not in order_set]
    worklist = list(reversed(order))
    in_worklist = set(worklist)
    preds = fn.predecessors_map()
    blocks = fn.blocks

    while worklist:
        label = worklist.pop()
        in_worklist.discard(label)
        new_out = 0
        for succ in blocks[label].succ_labels:
            new_out |= live_in[succ]
        new_in = use_map[label] | (new_out & ~def_map[label])
        if new_out != live_out[label] or new_in != live_in[label]:
            live_out[label] = new_out
            live_in[label] = new_in
            for pred in preds[label]:
                if pred not in in_worklist:
                    worklist.append(pred)
                    in_worklist.add(pred)

    return Liveness(fn, index, live_in, live_out)


def liveness_from_arena(arena) -> Liveness:
    """Block-level liveness computed over a prepared
    :class:`~repro.perf.arena.FunctionArena` (the flat cold path).

    Equivalent to :func:`compute_liveness` on the arena's function -- the
    dataflow equations have a unique least fixed point, so the engine
    choice (scalar worklist vs batched numpy sweep, see
    ``FunctionArena.compute_liveness``) cannot change the result.  The
    returned object carries the arena so per-instruction scans skip the
    interning walk.
    """
    if not arena.live_in and arena.instrs:
        arena.compute_liveness()
    elif not arena.live_in:
        arena.live_in = [0] * len(arena.labels)
        arena.live_out = [0] * len(arena.labels)
    labels = arena.labels
    live_in = {label: arena.live_in[bid] for bid, label in enumerate(labels)}
    live_out = {label: arena.live_out[bid] for bid, label in enumerate(labels)}
    return Liveness(arena.fn, arena.index, live_in, live_out, arena=arena)
