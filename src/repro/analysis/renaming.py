"""Live-range renaming: split variables into *webs*.

The paper assumes "each program variable has been fully renamed [9]" so a
variable with distinct live ranges receives distinct registers per range
(footnote 2).  We implement the classic web construction: a web is a maximal
set of definitions and uses connected through def-use chains.  Each web of a
variable with more than one web is renamed ``v%k``.

Webs are computed from reaching definitions with a union-find over
definition sites; every use unions all definitions reaching it.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Tuple

from repro.ir.function import Function

# A definition site: (block label, instruction uid, def slot index).
# Parameters are modelled as definitions at a synthetic entry site.
DefSite = Tuple[str, int, int]


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}

    def find(self, x: Hashable) -> Hashable:
        parent = self._parent.setdefault(x, x)
        if parent == x:
            return x
        root = self.find(parent)
        self._parent[x] = root
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def _reaching_definitions(fn: Function):
    """Block-level reaching definitions.

    Returns ``(reach_in, def_sites)`` where ``reach_in[label]`` maps each
    variable to the set of :data:`DefSite` reaching the block entry, and
    ``def_sites`` is every definition site keyed by variable.
    """
    # gen[label]: var -> last def site in block (downward-exposed defs).
    gen: Dict[str, Dict[str, DefSite]] = {}
    all_defs: Dict[str, Set[DefSite]] = {}
    for label, block in fn.blocks.items():
        local: Dict[str, DefSite] = {}
        for instr in block.instrs:
            for slot, var in enumerate(instr.defs):
                site: DefSite = (label, instr.uid, slot)
                local[var] = site
                all_defs.setdefault(var, set()).add(site)
        gen[label] = local

    param_sites: Dict[str, DefSite] = {}
    for i, param in enumerate(fn.params):
        site = (fn.start_label, -1, i)
        param_sites[param] = site
        all_defs.setdefault(param, set()).add(site)

    reach_in: Dict[str, Dict[str, Set[DefSite]]] = {
        label: {} for label in fn.blocks
    }
    reach_in[fn.start_label] = {p: {s} for p, s in param_sites.items()}

    preds = fn.predecessors_map()
    order = fn.rpo()
    changed = True
    while changed:
        changed = False
        for label in order:
            if label == fn.start_label:
                in_map = reach_in[label]
            else:
                in_map: Dict[str, Set[DefSite]] = {}
                for pred in preds[label]:
                    pred_out = _block_out(reach_in[pred], gen[pred])
                    for var, sites in pred_out.items():
                        in_map.setdefault(var, set()).update(sites)
                if in_map != reach_in[label]:
                    reach_in[label] = in_map
                    changed = True
    return reach_in, all_defs


def _block_out(
    in_map: Dict[str, Set[DefSite]], gen_map: Dict[str, DefSite]
) -> Dict[str, Set[DefSite]]:
    out = dict(in_map)
    for var, site in gen_map.items():
        out[var] = {site}
    return out


def rename_webs(fn: Function) -> Tuple[Function, Dict[str, str]]:
    """Return a copy of *fn* with every web given a distinct name.

    Also returns the mapping ``new_name -> original_name`` so results can
    be reported against source variables.  Functions already in web form
    round-trip unchanged (modulo the fresh copy).
    """
    reach_in, all_defs = _reaching_definitions(fn)
    uf = _UnionFind()

    # Union defs that reach a common use.
    for label, block in fn.blocks.items():
        current: Dict[str, Set[DefSite]] = {
            var: set(sites) for var, sites in reach_in[label].items()
        }
        for instr in block.instrs:
            for var in instr.uses:
                sites = current.get(var)
                if sites:
                    first = None
                    for site in sites:
                        if first is None:
                            first = site
                        else:
                            uf.union(first, site)
            for slot, var in enumerate(instr.defs):
                current[var] = {(label, instr.uid, slot)}

    # Defs of the same variable never reaching a common use but also uses
    # of a variable live at stop (return side effects) stay separate webs.
    # Assign web names.
    web_name: Dict[DefSite, str] = {}
    reverse: Dict[str, str] = {}
    for var, sites in all_defs.items():
        roots: Dict[Hashable, List[DefSite]] = {}
        for site in sites:
            roots.setdefault(uf.find(site), []).append(site)
        if len(roots) == 1:
            for site in sites:
                web_name[site] = var
            reverse[var] = var
            continue
        # Deterministic ordering of webs by first site.  The web containing
        # a parameter's entry definition keeps the original name so callers
        # can still pass arguments by source name.
        ordered = sorted(roots.values(), key=lambda group: sorted(group))
        k = 0
        for group in ordered:
            if any(uid == -1 for (_, uid, _) in group):
                name = var
            else:
                name = f"{var}%{k}"
                k += 1
            for site in group:
                web_name[site] = name
            reverse[name] = var

    # Parameters keep their original name (the entry web).
    out = fn.clone()
    for label, block in out.blocks.items():
        current: Dict[str, Set[DefSite]] = {
            var: set(sites) for var, sites in reach_in[label].items()
        }
        new_instrs = []
        for instr in block.instrs:
            use_names = []
            for var in instr.uses:
                sites = current.get(var)
                if sites:
                    use_names.append(web_name[next(iter(sites))])
                else:
                    use_names.append(var)  # never-defined: keep as-is
            def_names = []
            for slot, var in enumerate(instr.defs):
                site = (label, instr.uid, slot)
                def_names.append(web_name.get(site, var))
                current[var] = {site}
            renamed = instr.clone()
            renamed.uses = tuple(use_names)
            renamed.defs = tuple(def_names)
            new_instrs.append(renamed)
        block.instrs = new_instrs

    # Parameter renaming: if a parameter's entry web got renamed, keep the
    # param list pointing at the new name of its entry web.
    new_params = []
    for i, param in enumerate(fn.params):
        site = (fn.start_label, -1, i)
        new_params.append(web_name.get(site, param))
    out.params = new_params
    return out, reverse
