"""Live-range renaming: split variables into *webs*.

The paper assumes "each program variable has been fully renamed [9]" so a
variable with distinct live ranges receives distinct registers per range
(footnote 2).  We implement the classic web construction: a web is a maximal
set of definitions and uses connected through def-use chains.  Each web of a
variable with more than one web is renamed ``v%k``.

Webs are computed from reaching definitions with a union-find over
definition sites; every use unions all definitions reaching it.

The dataflow runs over **dense site-id bitmasks**: every definition site
gets an integer id, each block's reaching-in state is a single Python-int
bitset over those ids, and the transfer function is two word operations
(``(in & ~kill) | gen``).  Each site belongs to exactly one variable, so
one combined mask carries what the classic per-variable dict-of-sets
lattice did, and per-variable slices come back via ``mask &
var_sites_mask[var]``.  The fixed point is the same (the equations have a
unique LFP), and so is every downstream decision: all sites reaching a
common use land in one web, so picking *any* reaching site as the web
representative is order-independent.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.function import Function

# A definition site: (block label, instruction uid, def slot index).
# Parameters are modelled as definitions at a synthetic entry site.
DefSite = Tuple[str, int, int]


def _find(parent: List[int], x: int) -> int:
    root = x
    while parent[root] != root:
        root = parent[root]
    while parent[x] != root:  # path compression
        parent[x], x = root, parent[x]
    return root


def _reaching_definitions(fn: Function):
    """Block-level reaching definitions over site-id bitmasks.

    Returns ``(reach_in, sites, site_id, var_mask, var_site_ids)``:
    ``reach_in[label]`` is the bitset of site ids reaching the block
    entry, ``sites[i]`` the :data:`DefSite` tuple of id *i*, ``site_id``
    maps ``(uid, slot)`` to the id (instruction uids are function-unique;
    parameters use uid ``-1``), ``var_mask[var]`` the bitset of all of
    *var*'s sites and ``var_site_ids[var]`` those ids in first-seen
    order.
    """
    sites: List[DefSite] = []
    site_id: Dict[Tuple[int, int], int] = {}
    var_mask: Dict[str, int] = {}
    var_site_ids: Dict[str, List[int]] = {}

    # gen[label]: var -> last def site id in block (downward-exposed).
    gen_last: Dict[str, Dict[str, int]] = {}
    for label, block in fn.blocks.items():
        local: Dict[str, int] = {}
        for instr in block.instrs:
            uid = instr.uid
            for slot, var in enumerate(instr.defs):
                sid = len(sites)
                sites.append((label, uid, slot))
                site_id[(uid, slot)] = sid
                local[var] = sid
                var_mask[var] = var_mask.get(var, 0) | (1 << sid)
                var_site_ids.setdefault(var, []).append(sid)
        gen_last[label] = local

    start = fn.start_label
    entry_mask = 0
    for i, param in enumerate(fn.params):
        sid = len(sites)
        sites.append((start, -1, i))
        site_id[(-1, i)] = sid
        var_mask[param] = var_mask.get(param, 0) | (1 << sid)
        var_site_ids.setdefault(param, []).append(sid)
        entry_mask |= 1 << sid

    # Per-block transfer masks: gen = last site per defined var, kill =
    # every site of every var defined in the block.
    gen_mask: Dict[str, int] = {}
    kill_mask: Dict[str, int] = {}
    for label, local in gen_last.items():
        g = k = 0
        for var, sid in local.items():
            g |= 1 << sid
            k |= var_mask[var]
        gen_mask[label] = g
        kill_mask[label] = k

    reach_in: Dict[str, int] = {label: 0 for label in fn.blocks}
    reach_in[start] = entry_mask

    preds = fn.predecessors_map()
    succs = {label: fn.blocks[label].succ_labels for label in fn.blocks}
    order = fn.rpo()
    # Forward worklist; the start block's in-state is pinned to the
    # parameter sites (never recomputed from predecessors), matching the
    # classic formulation.
    worklist = list(reversed(order))
    pending = set(worklist)
    out_state: Dict[str, int] = {}
    while worklist:
        label = worklist.pop()
        pending.discard(label)
        if label == start:
            new_in = entry_mask
        else:
            new_in = 0
            for pred in preds[label]:
                o = out_state.get(pred)
                if o is not None:
                    new_in |= o
        reach_in[label] = new_in
        new_out = (new_in & ~kill_mask[label]) | gen_mask[label]
        if out_state.get(label) != new_out:
            out_state[label] = new_out
            for s in succs[label]:
                if s not in pending and s in reach_in:
                    pending.add(s)
                    worklist.append(s)

    # A final sweep recomputes every in-state from the converged outs so
    # blocks whose predecessors changed after their last visit are exact.
    for label in order:
        if label != start:
            new_in = 0
            for pred in preds[label]:
                o = out_state.get(pred)
                if o is not None:
                    new_in |= o
            reach_in[label] = new_in

    return reach_in, sites, site_id, var_mask, var_site_ids


def rename_webs(fn: Function) -> Tuple[Function, Dict[str, str]]:
    """Return a copy of *fn* with every web given a distinct name.

    Also returns the mapping ``new_name -> original_name`` so results can
    be reported against source variables.  Functions already in web form
    round-trip unchanged (modulo the fresh copy).
    """
    reach_in, sites, site_id, var_mask, var_site_ids = (
        _reaching_definitions(fn)
    )
    parent = list(range(len(sites)))

    # Union defs that reach a common use.
    for label, block in fn.blocks.items():
        cur = reach_in[label]
        for instr in block.instrs:
            for var in instr.uses:
                m = cur & var_mask.get(var, 0)
                if m:
                    low = m & -m
                    first = _find(parent, low.bit_length() - 1)
                    m ^= low
                    while m:
                        low = m & -m
                        rb = _find(parent, low.bit_length() - 1)
                        if first != rb:
                            parent[first] = rb
                            first = rb
                        m ^= low
            uid = instr.uid
            for slot, var in enumerate(instr.defs):
                cur = (cur & ~var_mask[var]) | (
                    1 << site_id[(uid, slot)]
                )

    # Defs of the same variable never reaching a common use but also uses
    # of a variable live at stop (return side effects) stay separate webs.
    # Assign web names.
    web_name: List[str] = [""] * len(sites)
    reverse: Dict[str, str] = {}
    for var, ids in var_site_ids.items():
        roots: Dict[int, List[int]] = {}
        for sid in ids:
            roots.setdefault(_find(parent, sid), []).append(sid)
        if len(roots) == 1:
            for sid in ids:
                web_name[sid] = var
            reverse[var] = var
            continue
        # Deterministic ordering of webs by first site.  The web containing
        # a parameter's entry definition keeps the original name so callers
        # can still pass arguments by source name.
        ordered = sorted(
            roots.values(),
            key=lambda group: sorted(sites[sid] for sid in group),
        )
        k = 0
        for group in ordered:
            if any(sites[sid][1] == -1 for sid in group):
                name = var
            else:
                name = f"{var}%{k}"
                k += 1
            for sid in group:
                web_name[sid] = name
            reverse[name] = var

    # Parameters keep their original name (the entry web).
    out = fn.clone()
    for label, block in out.blocks.items():
        cur = reach_in[label]
        new_instrs = []
        for instr in block.instrs:
            use_names = []
            for var in instr.uses:
                m = cur & var_mask.get(var, 0)
                if m:
                    # All sites reaching a common use were unioned above,
                    # so any reaching site names the web.
                    use_names.append(web_name[(m & -m).bit_length() - 1])
                else:
                    use_names.append(var)  # never-defined: keep as-is
            uid = instr.uid
            def_names = []
            for slot, var in enumerate(instr.defs):
                sid = site_id[(uid, slot)]
                def_names.append(web_name[sid])
                cur = (cur & ~var_mask[var]) | (1 << sid)
            renamed = instr.clone()
            renamed.uses = tuple(use_names)
            renamed.defs = tuple(def_names)
            new_instrs.append(renamed)
        block.instrs = new_instrs

    # Parameter renaming: if a parameter's entry web got renamed, keep the
    # param list pointing at the new name of its entry web.
    new_params = []
    for i, param in enumerate(fn.params):
        sid = site_id.get((-1, i))
        new_params.append(web_name[sid] if sid is not None else param)
    out.params = new_params
    return out, reverse
