"""Program analyses feeding the allocators.

* :mod:`repro.analysis.dominators` -- dominator / post-dominator trees
* :mod:`repro.analysis.liveness` -- live variable analysis
* :mod:`repro.analysis.loops` -- loop nesting forest (intervals)
* :mod:`repro.analysis.renaming` -- live-range renaming into webs
* :mod:`repro.analysis.frequency` -- block/edge execution probabilities
"""

from repro.analysis.dominators import DomTree, compute_dominators, compute_postdominators
from repro.analysis.liveness import Liveness, compute_liveness
from repro.analysis.loops import Loop, LoopForest, build_loop_forest
from repro.analysis.renaming import rename_webs
from repro.analysis.frequency import FrequencyInfo, estimate_frequencies, frequencies_from_profile

__all__ = [
    "DomTree",
    "compute_dominators",
    "compute_postdominators",
    "Liveness",
    "compute_liveness",
    "Loop",
    "LoopForest",
    "build_loop_forest",
    "rename_webs",
    "FrequencyInfo",
    "estimate_frequencies",
    "frequencies_from_profile",
]
