"""Module sources for the batch engine.

A *module* is just an ordered list of :class:`~repro.pipeline.Workload`:

* :func:`load_module_dir` -- every ``.ir`` / ``.ml`` file in a directory
  (sorted by filename, so the submission order -- and with it the cache
  LRU state and result order -- is reproducible across runs and
  machines);
* :func:`synthetic_module` -- a deterministic generated module of
  arbitrary size, used by ``benchmarks/bench_batch.py`` and the batch
  mode of ``repro.determinism`` (every function comes with runnable
  inputs so dynamic costs are simulated and verified).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.ir.parser import parse_function
from repro.ir.validate import validate_function

#: File extensions the directory loader recognizes.
MODULE_EXTENSIONS = (".ir", ".ml")


def load_module_dir(
    path: str,
    args: Optional[Mapping[str, Any]] = None,
    arrays: Optional[Mapping[str, Sequence[Any]]] = None,
) -> List:
    """Workloads for every IR/MiniLang file under *path* (sorted names).

    *args* / *arrays*, when given, are attached to every workload (the
    CLI's ``--arg`` / ``--array`` flags); without them the batch engine
    allocates statically (no simulation)."""
    from repro.pipeline import Workload

    if not os.path.isdir(path):
        raise FileNotFoundError(f"not a module directory: {path}")
    workloads = []
    for filename in sorted(os.listdir(path)):
        ext = os.path.splitext(filename)[1]
        if ext not in MODULE_EXTENSIONS:
            continue
        full = os.path.join(path, filename)
        with open(full, encoding="utf-8") as fh:
            text = fh.read()
        if ext == ".ml":
            from repro.minilang import compile_source

            fn = compile_source(text)
        else:
            fn = parse_function(text)
        validate_function(fn)
        workloads.append(Workload(
            fn,
            dict(args or {}),
            {k: list(v) for k, v in (arrays or {}).items()},
            name=os.path.splitext(filename)[0],
        ))
    if not workloads:
        raise FileNotFoundError(
            f"no {'/'.join(MODULE_EXTENSIONS)} files in {path}"
        )
    return workloads


def synthetic_module(count: int, seed: int = 0) -> List:
    """A deterministic module of *count* runnable functions.

    Cycles through the kernel workloads and structured random programs
    (seeded from *seed* + position, so two calls with equal arguments
    produce textually identical modules -- the property the cache bench
    and determinism batch mode rely on)."""
    from repro.pipeline import Workload
    from repro.workloads.generators import random_program
    from repro.workloads.kernels import all_kernel_workloads

    kernels = all_kernel_workloads()
    workloads: List = []
    for position in range(count):
        if position % 3 == 0 and position // 3 < len(kernels):
            base = kernels[position // 3]
            workloads.append(Workload(
                base.fn, dict(base.args), dict(base.arrays),
                name=f"{position:03d}_{base.label()}",
            ))
            continue
        fn_seed = seed * 100_003 + position
        fn = random_program(
            seed=fn_seed,
            max_blocks=40 + (position % 5) * 12,
            max_vars=12 + (position % 4) * 6,
            max_depth=3 + (position % 3),
            break_prob=0.04 if position % 2 else 0.0,
            name=f"m{position}",
        )
        arrays: Dict[str, List[int]] = {
            "A": [((position * 7 + i * 3) % 17) - 8 for i in range(8)],
            "B": [0] * 8,
        }
        workloads.append(Workload(
            fn, {"n": 1 + position % 7}, arrays,
            name=f"{position:03d}_{fn.name}",
        ))
    return workloads
