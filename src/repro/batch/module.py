"""Module sources for the batch engine.

A *module* is just an ordered list of :class:`~repro.pipeline.Workload`:

* :func:`load_module_dir` -- every ``.ir`` / ``.ml`` file in a directory
  (sorted by filename, so the submission order -- and with it the cache
  LRU state and result order -- is reproducible across runs and
  machines);
* :func:`synthetic_module` -- a deterministic generated module of
  arbitrary size, used by ``benchmarks/bench_batch.py`` and the batch
  mode of ``repro.determinism`` (every function comes with runnable
  inputs so dynamic costs are simulated and verified).

A directory load is fault-isolated the same way the engine is: one
unparseable or invalid file never aborts the module.  It becomes a
structured :class:`ModuleFileError` on the returned :class:`ModuleLoad`
(a plain list of workloads otherwise -- existing callers keep indexing
and iterating it unchanged) and every well-formed sibling still loads.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.ir.parser import parse_function
from repro.ir.validate import validate_function

#: File extensions the directory loader recognizes.
MODULE_EXTENSIONS = (".ir", ".ml")


@dataclass(frozen=True)
class ModuleFileError:
    """One file that could not be turned into a workload.

    ``stage`` is where it died (``"read"`` / ``"compile"`` / ``"parse"``
    / ``"validate"``); ``error_class`` is the taxonomy label from
    :func:`repro.errors.classify_exception`.
    """

    filename: str
    stage: str
    error_class: str
    message: str

    def describe(self) -> str:
        return (
            f"{self.filename}: {self.stage} failed "
            f"[{self.error_class}] {self.message}"
        )


class ModuleLoad(list):
    """The workloads of one directory plus its per-file load errors.

    Subclasses ``list`` so everything that consumed the old plain-list
    return value (iteration, ``len``, indexing, the engine) keeps
    working; ``errors`` carries the files that failed to load.
    """

    def __init__(self, workloads: Sequence = (),
                 errors: Sequence[ModuleFileError] = ()) -> None:
        super().__init__(workloads)
        self.errors: List[ModuleFileError] = list(errors)

    @property
    def ok(self) -> bool:
        return not self.errors


def load_module_dir(
    path: str,
    args: Optional[Mapping[str, Any]] = None,
    arrays: Optional[Mapping[str, Sequence[Any]]] = None,
) -> ModuleLoad:
    """Workloads for every IR/MiniLang file under *path* (sorted names).

    *args* / *arrays*, when given, are attached to every workload (the
    CLI's ``--arg`` / ``--array`` flags); without them the batch engine
    allocates statically (no simulation).

    A file that cannot be read, compiled, parsed or validated is
    reported as a :class:`ModuleFileError` on the result instead of
    raising -- the module's other files still load.  Raises
    ``FileNotFoundError`` only when *path* is not a directory or holds
    no candidate files at all."""
    from repro.errors import classify_exception
    from repro.pipeline import Workload

    if not os.path.isdir(path):
        raise FileNotFoundError(f"not a module directory: {path}")
    workloads: List = []
    errors: List[ModuleFileError] = []
    candidates = 0
    for filename in sorted(os.listdir(path)):
        ext = os.path.splitext(filename)[1]
        if ext not in MODULE_EXTENSIONS:
            continue
        candidates += 1
        full = os.path.join(path, filename)
        stage = "read"
        try:
            with open(full, encoding="utf-8") as fh:
                text = fh.read()
            if ext == ".ml":
                from repro.minilang import compile_source

                stage = "compile"
                fn = compile_source(text)
            else:
                stage = "parse"
                fn = parse_function(text)
            stage = "validate"
            validate_function(fn)
        except Exception as exc:
            error_class, _ = classify_exception(exc)
            errors.append(ModuleFileError(
                filename=filename, stage=stage,
                error_class=error_class, message=str(exc),
            ))
            continue
        workloads.append(Workload(
            fn,
            dict(args or {}),
            {k: list(v) for k, v in (arrays or {}).items()},
            name=os.path.splitext(filename)[0],
        ))
    if candidates == 0:
        raise FileNotFoundError(
            f"no {'/'.join(MODULE_EXTENSIONS)} files in {path}"
        )
    return ModuleLoad(workloads, errors)


def synthetic_module(count: int, seed: int = 0) -> List:
    """A deterministic module of *count* runnable functions.

    Cycles through the kernel workloads and structured random programs
    (seeded from *seed* + position, so two calls with equal arguments
    produce textually identical modules -- the property the cache bench
    and determinism batch mode rely on)."""
    from repro.pipeline import Workload
    from repro.workloads.generators import random_program
    from repro.workloads.kernels import all_kernel_workloads

    kernels = all_kernel_workloads()
    workloads: List = []
    for position in range(count):
        if position % 3 == 0 and position // 3 < len(kernels):
            base = kernels[position // 3]
            workloads.append(Workload(
                base.fn, dict(base.args), dict(base.arrays),
                name=f"{position:03d}_{base.label()}",
            ))
            continue
        fn_seed = seed * 100_003 + position
        fn = random_program(
            seed=fn_seed,
            max_blocks=40 + (position % 5) * 12,
            max_vars=12 + (position % 4) * 6,
            max_depth=3 + (position % 3),
            break_prob=0.04 if position % 2 else 0.0,
            name=f"m{position}",
        )
        arrays: Dict[str, List[int]] = {
            "A": [((position * 7 + i * 3) % 17) - 8 for i in range(8)],
            "B": [0] * 8,
        }
        workloads.append(Workload(
            fn, {"n": 1 + position % 7}, arrays,
            name=f"{position:03d}_{fn.name}",
        ))
    return workloads
