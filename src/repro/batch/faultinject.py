"""Deterministic fault injection for the batch engine.

The resilience machinery (retries, pool restarts, the degradation ladder,
cache quarantine) is only trustworthy if it can be *driven* on demand, so
faults are injected from a declarative plan instead of monkeypatching:
the ``REPRO_FAULT_PLAN`` environment variable holds either inline JSON or
``@/path/to/plan.json``.  Environment-variable transport is the point --
pool workers are separate processes (fork *or* spawn) and inherit the
coordinator's environment, so one plan governs every process of a batch
run without any extra plumbing.

A plan is a JSON list of fault specs.  Task faults name the *task index*
(position in the engine's deduplicated miss list, i.e. submission order)
and the *attempt* (0-based, incremented by the engine on each retry), so
a fault fires at exactly one deterministic point of the run:

``{"task": 3, "attempt": 0, "action": "raise", "kind": "transient"}``
    raise :class:`InjectedFault` (``kind`` is ``"transient"`` --
    the default -- or ``"permanent"``);
``{"task": 3, "attempt": 0, "action": "hang", "hang_s": 600}``
    sleep inside the worker (trips the engine's per-task timeout);
``{"task": 3, "attempt": 0, "action": "kill"}``
    ``os._exit`` the worker process (trips ``BrokenProcessPool`` and the
    engine's pool-restart path).

Disk faults target the cache layer by write ordinal (0-based, counted
per process):

``{"disk_write": 2, "action": "corrupt"}``
    scribble over the record after the atomic rename, simulating on-disk
    corruption (the cache must quarantine it, not crash).

``kill`` and ``hang`` only make sense inside a pool worker; on the
inline (``batch_workers == 0``) path both downgrade to a *transient*
:class:`InjectedFault` so retry handling is still exercised without
killing or blocking the coordinator.

Everything here is a pure function of the plan text and the
deterministic (task, attempt) / write-ordinal coordinates, so an
injected-fault run retries into a state bit-identical to a fault-free
run -- which is exactly what the fault-gate CI job asserts.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

from repro.errors import PERMANENT, TRANSIENT

#: Environment variable holding the plan (inline JSON or ``@path``).
ENV_VAR = "REPRO_FAULT_PLAN"

#: Default sleep for ``hang`` faults without an explicit ``hang_s``.
DEFAULT_HANG_S = 600.0

#: Exit status for ``kill`` faults (mirrors SIGABRT's conventional 134).
KILL_EXIT_STATUS = 134


class InjectedFault(RuntimeError):
    """A failure raised on purpose by the fault plan."""

    def __init__(self, message: str, permanence: str = TRANSIENT) -> None:
        super().__init__(message)
        self.permanence = permanence


class FaultPlan:
    """A parsed fault plan; empty plans are valid and do nothing."""

    def __init__(self, specs: Optional[List[Dict[str, object]]] = None) -> None:
        self.specs = list(specs or [])
        self._disk_writes = 0

    def __bool__(self) -> bool:
        return bool(self.specs)

    # ------------------------------------------------------------------
    # task faults
    # ------------------------------------------------------------------
    def task_fault(
        self, task_index: int, attempt: int
    ) -> Optional[Dict[str, object]]:
        """The spec targeting (*task_index*, *attempt*), or ``None``."""
        for spec in self.specs:
            if (
                spec.get("task") == task_index
                and int(spec.get("attempt", 0)) == attempt
            ):
                return spec
        return None

    def maybe_fail_task(
        self, task_index: int, attempt: int, in_worker: bool
    ) -> None:
        """Fire the fault targeting this (task, attempt), if any.

        *in_worker* distinguishes pool workers (where ``kill`` and
        ``hang`` act literally) from the inline path (where both
        downgrade to a transient :class:`InjectedFault`).
        """
        spec = self.task_fault(task_index, attempt)
        if spec is None:
            return
        action = spec.get("action", "raise")
        where = f"task {task_index} attempt {attempt}"
        if action == "raise":
            kind = spec.get("kind", TRANSIENT)
            permanence = PERMANENT if kind == PERMANENT else TRANSIENT
            raise InjectedFault(
                f"injected {permanence} failure at {where}", permanence
            )
        if action == "hang":
            if in_worker:
                time.sleep(float(spec.get("hang_s", DEFAULT_HANG_S)))
                return
            raise InjectedFault(
                f"injected hang (inline downgrade) at {where}", TRANSIENT
            )
        if action == "kill":
            if in_worker:
                os._exit(KILL_EXIT_STATUS)
            raise InjectedFault(
                f"injected kill (inline downgrade) at {where}", TRANSIENT
            )
        raise ValueError(f"unknown fault action {action!r} in {spec}")

    # ------------------------------------------------------------------
    # disk faults
    # ------------------------------------------------------------------
    def maybe_corrupt_disk_write(self, path: str) -> None:
        """Corrupt *path* if the plan targets this write ordinal.

        Called by the cache after each completed (atomic) disk write;
        the ordinal counts writes observed by *this* plan instance.
        """
        ordinal = self._disk_writes
        self._disk_writes += 1
        for spec in self.specs:
            if (
                spec.get("action") == "corrupt"
                and spec.get("disk_write") == ordinal
            ):
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write('{"version": "corrupted-by-fault-plan"')
                return


_EMPTY_PLAN = FaultPlan()
_cached_text: Optional[str] = None
_cached_plan: FaultPlan = _EMPTY_PLAN


def active_plan() -> FaultPlan:
    """The plan named by :data:`ENV_VAR`, or an empty plan.

    Parsed lazily and cached per distinct environment value, so tests can
    flip the variable between runs and workers pay one parse per plan.
    Disk-write ordinals live on the cached instance, i.e. they count per
    process per plan text -- deterministic for a deterministic run.
    """
    global _cached_text, _cached_plan
    text = os.environ.get(ENV_VAR)
    if text == _cached_text:
        return _cached_plan
    if not text:
        _cached_text, _cached_plan = text, _EMPTY_PLAN
        return _cached_plan
    raw = text
    if raw.startswith("@"):
        with open(raw[1:], encoding="utf-8") as fh:
            raw = fh.read()
    specs = json.loads(raw)
    if not isinstance(specs, list):
        raise ValueError(
            f"{ENV_VAR} must be a JSON list of fault specs, got "
            f"{type(specs).__name__}"
        )
    _cached_text, _cached_plan = text, FaultPlan(specs)
    return _cached_plan
