"""The batch allocation engine (multi-function driver).

One :class:`BatchEngine` owns a persistent ``ProcessPoolExecutor`` and an
:class:`~repro.batch.cache.AllocationCache` and pushes whole *modules*
(lists of :class:`~repro.pipeline.Workload`) through allocation:

1. every function is fingerprinted (canonical-program sha256) and looked
   up in the cache under ``cache_key(fingerprint, invalidation, inputs)``
   -- the inputs digest keeps records with simulated (input-dependent)
   ``costs``/``returned`` from answering for different inputs;
2. misses are **deduplicated by cache key** (identical functions *with
   identical simulator inputs* are computed once) and fanned out over
   the pool, or computed
   inline when ``batch_workers == 0``; either way the *canonical
   printed form* is what gets allocated -- the same text the
   fingerprint hashes -- so a record is a pure function of its content
   address (in-memory block order, which canonical text does not
   capture, can otherwise steer tie-breaks);
3. results are merged by **submission index**, never completion order,
   and inserted into the cache in submission order -- so the result list,
   the cache's LRU state, and the trace stream are all deterministic
   functions of the input module (completion order only shifts wall
   times).

The parallelism axis is deliberately *across functions and processes*:
each worker allocates sequentially (one function at a time, GIL-free
relative to its siblings), which is where the real multi-core win lives
-- intra-function thread scheduling loses under the GIL (see
``schedule.should_parallelize``).

Determinism: workers inherit ``PYTHONHASHSEED`` (set in ``os.environ``
before the pool starts, so both fork and spawn children see it), and the
allocation itself is bit-deterministic across hash seeds and processes
(PR-2 guarantee, enforced by ``repro.determinism check`` -- which covers
this engine via its ``--batch`` mode), so cached and freshly-computed
records are interchangeable bit-for-bit.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.batch.cache import AllocationCache
from repro.batch.serialize import (
    AllocationRecord,
    UncacheableConfigError,
    cache_key,
    function_fingerprint,
    inputs_digest,
    invalidation_key,
    record_from_dict,
)
from repro.batch.worker import compute_record, run_task, worker_init
from repro.core import HierarchicalConfig
from repro.core.config import BatchConfig
from repro.ir.parser import parse_function
from repro.ir.printer import format_function
from repro.machine.target import Machine
from repro.perf.timers import StageTimers
from repro.trace.events import BatchTask, CacheHit, CacheMiss
from repro.trace.tracer import NULL_TRACER, NullTracer


@dataclass
class BatchResult:
    """One function's outcome in submission order."""

    name: str
    fingerprint: str
    record: AllocationRecord
    cached: bool
    source: str  # "memory" | "disk" | "computed"
    worker: str  # "worker-<i>" | "inline" | "cache"
    duration: float


@dataclass
class BatchStats:
    """Aggregate accounting for one engine (cumulative across modules)."""

    functions: int = 0
    computed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    wall_s: float = 0.0
    stage_times: Dict[str, float] = field(default_factory=dict)

    @property
    def functions_per_sec(self) -> float:
        return self.functions / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "functions": self.functions,
            "computed": self.computed,
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "wall_s": round(self.wall_s, 4),
            "functions_per_sec": round(self.functions_per_sec, 2),
        }


@dataclass
class ModuleAllocation:
    """What :func:`repro.pipeline.allocate_module` returns: per-function
    results in submission order plus the engine's aggregate stats."""

    results: List[BatchResult]
    stats: BatchStats

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index) -> BatchResult:
        return self.results[index]


def _src_path() -> str:
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class BatchEngine:
    """Process-parallel multi-function allocator with a content-addressed
    cache.  Use as a context manager (the pool is a held resource)::

        with BatchEngine(batch=BatchConfig(batch_workers=4)) as engine:
            module = engine.allocate_module(workloads)
    """

    def __init__(
        self,
        config: Optional[HierarchicalConfig] = None,
        machine: Optional[Machine] = None,
        batch: Optional[BatchConfig] = None,
        tracer: Optional[NullTracer] = None,
    ) -> None:
        self.batch = batch or BatchConfig()
        self.config = config or HierarchicalConfig()
        self.machine = machine or Machine.simple(self.batch.registers)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = BatchStats()
        self.timers = StageTimers()

        if self.batch.cache_policy == "off":
            self.cache: Optional[AllocationCache] = None
        else:
            self.cache = AllocationCache(
                capacity=self.batch.cache_capacity,
                cache_dir=(
                    self.batch.cache_dir
                    if self.batch.cache_policy == "disk"
                    else None
                ),
            )
        try:
            self._invalidation = invalidation_key(self.config, self.machine)
        except UncacheableConfigError:
            # Profile-guided configs can't be content-addressed; run with
            # the cache disabled rather than risk stale hits.
            self.cache = None
            self._invalidation = ""
        self._pool: Optional[ProcessPoolExecutor] = None
        self._epoch = time.time()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "BatchEngine":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def start(self) -> None:
        """Spin up the persistent worker pool (no-op when workers == 0 or
        the pool already exists)."""
        if self.batch.batch_workers > 0 and self._pool is None:
            # Propagated into children regardless of start method; the
            # fingerprints they produce are hash-seed-independent anyway
            # (the determinism gate proves it), this keeps the whole
            # environment reproducible for grandchildren too.
            hash_seed = os.environ.get("PYTHONHASHSEED")
            self._pool = ProcessPoolExecutor(
                max_workers=self.batch.batch_workers,
                initializer=worker_init,
                initargs=(
                    _src_path(),
                    hash_seed,
                    self.config,
                    self.machine,
                    self.batch.simulate,
                ),
            )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate_module(self, workloads: Sequence) -> ModuleAllocation:
        """Allocate every workload, returning results in submission order."""
        tracer = self.tracer
        t0 = time.time()

        # 1. fingerprint + cache lookup, in submission order.
        entries: List[Tuple[str, str, str, object]] = []
        results: List[Optional[BatchResult]] = [None] * len(workloads)
        miss_groups: Dict[str, List[int]] = {}
        for index, workload in enumerate(workloads):
            name = workload.label()
            text = format_function(workload.fn)
            fingerprint = function_fingerprint(workload.fn)
            # Records carry simulated costs/returned when inputs are
            # present, so the key must distinguish inputs -- for the
            # cache lookup *and* for the miss dedup below, which assumes
            # one key == one (function, inputs) computation.
            inputs = (
                inputs_digest(workload.args, workload.arrays)
                if self.batch.simulate
                else ""
            )
            key = cache_key(fingerprint, self._invalidation, inputs)
            entries.append((name, text, fingerprint, workload))
            record = None
            cached_source = None
            if self.cache is not None:
                cached_source = self.cache.source_of(key)
                if cached_source is not None:
                    # May still return None for a torn disk entry (the
                    # get() then counts the miss itself).
                    record = self.cache.get(key)
            if record is not None:
                if tracer.enabled:
                    tracer.emit(CacheHit(
                        function=name, fingerprint=fingerprint,
                        source=cached_source,
                    ))
                results[index] = BatchResult(
                    name=name, fingerprint=fingerprint, record=record,
                    cached=True, source=cached_source, worker="cache",
                    duration=0.0,
                )
            else:
                if self.cache is not None and cached_source is None:
                    self.cache.stats.misses += 1
                if tracer.enabled:
                    tracer.emit(CacheMiss(
                        function=name, fingerprint=fingerprint,
                    ))
                miss_groups.setdefault(key, []).append(index)

        # 2. compute misses -- one task per distinct key, submission order.
        computed: Dict[str, Tuple[AllocationRecord, Dict[str, object]]] = {}
        ordered_keys = list(miss_groups)
        if ordered_keys:
            if self._pool is None and self.batch.batch_workers > 0:
                self.start()
            if self._pool is not None:
                tasks = []
                for task_index, key in enumerate(ordered_keys):
                    first = miss_groups[key][0]
                    name, text, fingerprint, workload = entries[first]
                    tasks.append((
                        task_index, name, fingerprint, text,
                        dict(workload.args),
                        {k: list(v) for k, v in workload.arrays.items()},
                    ))
                # map() yields in submission order regardless of which
                # worker finishes first -- the deterministic merge.
                for task_index, record_dict, timing in self._pool.map(
                    run_task, tasks
                ):
                    key = ordered_keys[task_index]
                    record = record_from_dict(record_dict)
                    computed[key] = (record, timing)
                    self.timers.merge(timing.get("stage_times", {}))
            else:
                for key in ordered_keys:
                    first = miss_groups[key][0]
                    name, text, fingerprint, workload = entries[first]
                    start = time.time()
                    # Allocate the canonical (parsed-back) form, exactly
                    # as pool workers do: a record must be a pure
                    # function of the content address, and block *dict
                    # order* -- which canonical text does not capture --
                    # can otherwise steer tie-breaks.
                    record, stage_times = compute_record(
                        name, parse_function(text), self.config,
                        self.machine,
                        args=workload.args, arrays=workload.arrays,
                        simulate=self.batch.simulate,
                        fingerprint=fingerprint,
                    )
                    computed[key] = (record, {
                        "start": start,
                        "duration": time.time() - start,
                        "pid": os.getpid(),
                    })
                    self.timers.merge(stage_times)

        # 3. merge + cache insert, in submission order.
        pids: Dict[int, int] = {}
        for key in ordered_keys:
            record, timing = computed[key]
            pid = int(timing.get("pid", os.getpid()))
            if self._pool is not None:
                worker = f"worker-{pids.setdefault(pid, len(pids))}"
            else:
                worker = "inline"
            duration = float(timing.get("duration", 0.0))
            if self.cache is not None:
                self.cache.put(key, record)
            for index in miss_groups[key]:
                name, _, fingerprint, _ = entries[index]
                results[index] = BatchResult(
                    name=name, fingerprint=fingerprint, record=record,
                    cached=False, source="computed", worker=worker,
                    duration=duration,
                )
            if tracer.enabled:
                tracer.emit(BatchTask(
                    function=record.function, fingerprint=record.fingerprint,
                    worker=worker,
                    start=float(timing.get("start", t0)) - self._epoch,
                    duration=duration, cached=False,
                ))
        if tracer.enabled:
            for result in results:
                if result is not None and result.cached:
                    tracer.emit(BatchTask(
                        function=result.name, fingerprint=result.fingerprint,
                        worker="cache", start=t0 - self._epoch,
                        duration=0.0, cached=True,
                    ))

        wall = time.time() - t0
        done: List[BatchResult] = [r for r in results if r is not None]
        assert len(done) == len(workloads)
        self.stats.functions += len(done)
        self.stats.computed += len(ordered_keys)
        self.stats.cache_hits += sum(1 for r in done if r.cached)
        self.stats.cache_misses += len(workloads) - sum(
            1 for r in done if r.cached
        )
        if self.cache is not None:
            self.stats.evictions = self.cache.stats.evictions
            self.stats.disk_hits = self.cache.stats.disk_hits
        self.stats.wall_s += wall
        self.stats.stage_times = self.timers.as_dict()
        return ModuleAllocation(results=done, stats=self.stats)
