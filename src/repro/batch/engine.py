"""The batch allocation engine (multi-function driver).

One :class:`BatchEngine` owns a persistent ``ProcessPoolExecutor`` and an
:class:`~repro.batch.cache.AllocationCache` and pushes whole *modules*
(lists of :class:`~repro.pipeline.Workload`) through allocation:

1. every function is fingerprinted (canonical-program sha256) and looked
   up in the cache under ``cache_key(fingerprint, invalidation, inputs)``
   -- the inputs digest keeps records with simulated (input-dependent)
   ``costs``/``returned`` from answering for different inputs;
2. misses are **deduplicated by cache key** (identical functions *with
   identical simulator inputs* are computed once) and fanned out over
   the pool, or computed
   inline when ``batch_workers == 0``; either way the *canonical
   printed form* is what gets allocated -- the same text the
   fingerprint hashes -- so a record is a pure function of its content
   address (in-memory block order, which canonical text does not
   capture, can otherwise steer tie-breaks);
3. results are merged by **submission index**, never completion order,
   and inserted into the cache in submission order -- so the result list,
   the cache's LRU state, and the trace stream are all deterministic
   functions of the input module (completion order only shifts wall
   times).

The parallelism axis is deliberately *across functions and processes*:
each worker allocates sequentially (one function at a time, GIL-free
relative to its siblings), which is where the real multi-core win lives
-- intra-function thread scheduling loses under the GIL (see
``schedule.should_parallelize``).

Determinism: workers inherit ``PYTHONHASHSEED`` (set in ``os.environ``
before the pool starts, so both fork and spawn children see it), and the
allocation itself is bit-deterministic across hash seeds and processes
(PR-2 guarantee, enforced by ``repro.determinism check`` -- which covers
this engine via its ``--batch`` mode), so cached and freshly-computed
records are interchangeable bit-for-bit.

Fault tolerance (see :mod:`repro.errors` for the taxonomy):

* **Error isolation** -- one function failing never kills the module: it
  becomes a :class:`BatchResult` with ``record=None`` and a structured
  ``error`` (collected in :attr:`ModuleAllocation.failures`), unless
  ``on_error="fail"`` (strict mode), which re-raises as
  :class:`~repro.errors.BatchFunctionError`.
* **Deterministic retries** -- transient failures (crashed worker, hung
  task, memory pressure) are retried up to ``max_retries`` times with
  exponential backoff ``retry_backoff_s * 2**attempt``.  Records are pure
  functions of their content address, so a faulted-then-retried run is
  bit-identical to a fault-free run; retries only shift wall times and
  counters.
* **Pool recovery** -- a ``BrokenProcessPool`` (worker died) or a
  per-task timeout (worker hung) tears the pool down -- force-terminating
  stuck workers -- restarts it, and resubmits only the still-unfinished
  misses.  Cache state and submission-order merge semantics are
  unaffected because results are keyed by submission index throughout.
* **Degradation ladder** -- with ``on_error="degrade"`` (the default), a
  function whose hierarchical allocation fails permanently is retried
  with the Chaitin comparison allocator, then the naive spill-everywhere
  baseline (``worker.DEGRADATION_LADDER``); the result is marked
  ``degraded`` with its ``fallback_allocator`` and is **never** written
  to the cache, whose keys promise hierarchical results.

All of it is driven in tests and CI by the deterministic fault-injection
harness (:mod:`repro.batch.faultinject`, ``REPRO_FAULT_PLAN``).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.batch.cache import AllocationCache
from repro.batch.faultinject import active_plan
from repro.batch.serialize import (
    AllocationRecord,
    UncacheableConfigError,
    cache_key,
    inputs_digest,
    invalidation_key,
    record_from_dict,
    text_fingerprint,
)
from repro.batch.worker import (
    DEGRADATION_LADDER,
    compute_record,
    run_task,
    worker_init,
)
from repro.core import HierarchicalConfig
from repro.core.budget import BudgetExceededError, BudgetLimits, estimate_cost
from repro.core.config import BatchConfig
from repro.errors import (
    PERMANENT,
    TRANSIENT,
    BatchFunctionError,
    TaskError,
    classify_exception,
    task_error_from_exception,
)
from repro.ir.parser import parse_function
from repro.ir.printer import format_function
from repro.machine.target import Machine
from repro.perf.timers import StageTimers
from repro.trace.events import (
    Admitted,
    BatchTask,
    BudgetExceeded,
    CacheHit,
    CacheMiss,
    Degraded,
    PoolRestarted,
    Rejected,
    TaskFailed,
    TaskRetried,
)
from repro.trace.tracer import NULL_TRACER, NullTracer


@dataclass
class BatchResult:
    """One function's outcome in submission order.

    ``record`` is ``None`` exactly when the function finally failed
    (``error`` then holds the structured failure).  ``degraded`` marks a
    degradation-ladder result: ``record`` was produced by
    ``fallback_allocator`` instead of the hierarchical allocator, and
    ``error`` still describes the primary failure that forced the
    fallback.  ``attempts`` counts tries of the primary allocator.
    """

    name: str
    fingerprint: str
    record: Optional[AllocationRecord]
    cached: bool
    source: str  # "memory" | "disk" | "computed" | "failed"
    worker: str  # "worker-<i>" | "inline" | "cache"
    duration: float
    error: Optional[TaskError] = None
    degraded: bool = False
    fallback_allocator: Optional[str] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.record is not None


@dataclass
class BatchStats:
    """Aggregate accounting for one engine (cumulative across modules)."""

    functions: int = 0
    computed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    failures: int = 0
    retries: int = 0
    degraded: int = 0
    pool_restarts: int = 0
    quarantined: int = 0
    #: resource-governance counters: functions refused by admission
    #: control (``BatchConfig.admission_limit``) and results that landed
    #: on the degradation ladder because of a resource limit (error
    #: class ``admission``/``budget``/``deadline``) rather than an
    #: allocator defect.
    rejected: int = 0
    degraded_by_budget: int = 0
    #: per-tile memoization counters (``BatchConfig.tile_cache``),
    #: summed across functions and worker processes: phase-1 summaries
    #: reused / recomputed, and maximal clean subtrees reused verbatim.
    tile_hits: int = 0
    tile_misses: int = 0
    subtrees_reused: int = 0
    wall_s: float = 0.0
    stage_times: Dict[str, float] = field(default_factory=dict)

    @property
    def functions_per_sec(self) -> float:
        return self.functions / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "functions": self.functions,
            "computed": self.computed,
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "failures": self.failures,
            "retries": self.retries,
            "degraded": self.degraded,
            "pool_restarts": self.pool_restarts,
            "quarantined": self.quarantined,
            "rejected": self.rejected,
            "degraded_by_budget": self.degraded_by_budget,
            "tile_hits": self.tile_hits,
            "tile_misses": self.tile_misses,
            "subtrees_reused": self.subtrees_reused,
            "wall_s": round(self.wall_s, 4),
            "functions_per_sec": round(self.functions_per_sec, 2),
        }


@dataclass
class ModuleAllocation:
    """What :func:`repro.pipeline.allocate_module` returns: per-function
    results in submission order plus the engine's aggregate stats."""

    results: List[BatchResult]
    stats: BatchStats

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index) -> BatchResult:
        return self.results[index]

    @property
    def failures(self) -> List[BatchResult]:
        """Results that finally failed (``record is None``), in order."""
        return [r for r in self.results if r.record is None]

    @property
    def degraded_results(self) -> List[BatchResult]:
        """Results produced by the degradation ladder, in order."""
        return [r for r in self.results if r.degraded]

    @property
    def ok(self) -> bool:
        """True when every function produced a record (possibly degraded)."""
        return not self.failures


@dataclass
class _Task:
    """One deduplicated cache miss in flight.

    ``index`` is the task's position in the deduplicated submission order
    -- the coordinate the fault-injection plan targets -- and ``attempt``
    the 0-based try counter the retry machinery advances.
    """

    index: int
    key: str
    name: str
    fingerprint: str
    text: str
    workload: object
    attempt: int = 0


@dataclass
class _TaskOutcome:
    """Terminal state of one :class:`_Task` after retries/degradation."""

    record: Optional[AllocationRecord]
    timing: Dict[str, object] = field(default_factory=dict)
    error: Optional[TaskError] = None
    degraded: bool = False
    fallback_allocator: Optional[str] = None
    attempts: int = 1


def _src_path() -> str:
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _task_tuple(task: _Task) -> Tuple:
    workload = task.workload
    return (
        task.index, task.name, task.fingerprint, task.text,
        dict(workload.args),
        {k: list(v) for k, v in workload.arrays.items()},
        task.attempt,
    )


class BatchEngine:
    """Process-parallel multi-function allocator with a content-addressed
    cache.  Use as a context manager (the pool is a held resource)::

        with BatchEngine(batch=BatchConfig(batch_workers=4)) as engine:
            module = engine.allocate_module(workloads)
    """

    def __init__(
        self,
        config: Optional[HierarchicalConfig] = None,
        machine: Optional[Machine] = None,
        batch: Optional[BatchConfig] = None,
        tracer: Optional[NullTracer] = None,
    ) -> None:
        self.batch = batch or BatchConfig()
        self.config = config or HierarchicalConfig()
        self.machine = machine or Machine.simple(self.batch.registers)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = BatchStats()
        self.timers = StageTimers()
        #: per-allocation resource governor built from the batch knobs;
        #: ``None`` when both limits are off, preserving the allocator's
        #: zero-cost unbudgeted fast path.
        self._budget_limits: Optional[BudgetLimits] = None
        if (
            self.batch.max_fuel is not None
            or self.batch.deadline_s is not None
        ):
            self._budget_limits = BudgetLimits(
                max_fuel=self.batch.max_fuel,
                deadline_s=self.batch.deadline_s,
            )
        #: Failures swallowed while tearing down the pool, newest last.
        #: Teardown must never raise (close() runs on the error path and
        #: from __exit__), but the failures are not silent either -- each
        #: one is classified into the structured taxonomy and kept here
        #: for inspection.
        self.teardown_errors: List[TaskError] = []

        if self.batch.cache_policy == "off":
            self.cache: Optional[AllocationCache] = None
        else:
            self.cache = AllocationCache(
                capacity=self.batch.cache_capacity,
                cache_dir=(
                    self.batch.cache_dir
                    if self.batch.cache_policy == "disk"
                    else None
                ),
            )
        try:
            self._invalidation = invalidation_key(self.config, self.machine)
        except UncacheableConfigError:
            # Profile-guided configs can't be content-addressed; run with
            # the cache disabled rather than risk stale hits.
            self.cache = None
            self._invalidation = ""
        #: coordinator-side per-tile memoization store, used by inline
        #: tasks; pool workers hold their own (see ``worker_init``).
        #: Disabled alongside the result cache for uncacheable configs:
        #: tile fingerprints reuse the same invalidation key.
        self.tile_store = None
        if self.batch.tile_cache and self._invalidation:
            from repro.core.incremental import TileCacheStore

            self.tile_store = TileCacheStore(
                capacity=self.batch.tile_cache_entries
            )
        self._pool: Optional[ProcessPoolExecutor] = None
        # Deliberately wall-clock: trace rows subtract it from worker
        # ``start`` stamps, which cross process boundaries.  All *interval*
        # math (durations, BatchStats.wall_s) uses time.monotonic() so a
        # clock step (NTP, DST, manual set) can never skew or negate it.
        self._epoch = time.time()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "BatchEngine":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        # Runs on exceptions too -- the executor must never outlive the
        # engine, even when allocate_module raised mid-flight.
        self.close()

    def start(self) -> None:
        """Spin up the persistent worker pool (no-op when workers == 0 or
        the pool already exists)."""
        if self.batch.batch_workers > 0 and self._pool is None:
            # Propagated into children regardless of start method; the
            # fingerprints they produce are hash-seed-independent anyway
            # (the determinism gate proves it), this keeps the whole
            # environment reproducible for grandchildren too.
            hash_seed = os.environ.get("PYTHONHASHSEED")
            self._pool = ProcessPoolExecutor(
                max_workers=self.batch.batch_workers,
                initializer=worker_init,
                initargs=(
                    _src_path(),
                    hash_seed,
                    self.config,
                    self.machine,
                    self.batch.simulate,
                    self.tile_store is not None,
                    self.batch.tile_cache_entries,
                    self._budget_limits,
                ),
            )

    def close(self) -> None:
        """Release the pool.  Idempotent, and safe on a broken pool or
        one with hung workers: the shutdown never waits on a worker that
        will not come back -- leftover processes are terminated."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = list((getattr(pool, "_processes", None) or {}).values())
        # Teardown never raises, but nothing is swallowed silently: the
        # failure modes of shutdown/terminate/join are OS- and executor-
        # level (dead process, broken pipe, shut-down executor), so the
        # catches are narrowed to exactly those and each failure is
        # classified and recorded in ``teardown_errors``.
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except (OSError, RuntimeError) as exc:
            self._record_teardown_error(exc)
        for process in processes:
            try:
                if process.is_alive():
                    process.terminate()
            except (OSError, ValueError, AttributeError) as exc:
                self._record_teardown_error(exc)
        for process in processes:
            try:
                process.join(timeout=5)
            except (OSError, RuntimeError, ValueError, AssertionError) as exc:
                self._record_teardown_error(exc)

    def _record_teardown_error(self, exc: BaseException) -> None:
        self.teardown_errors.append(task_error_from_exception(exc))

    def _merge_tile_counters(self, counters) -> None:
        """Fold one allocation's per-tile reuse counters (inline result
        or a pool worker's ``timing["tile_cache"]``) into the stats."""
        if not counters:
            return
        self.stats.tile_hits += int(counters.get("tile_hits", 0))
        self.stats.tile_misses += int(counters.get("tile_misses", 0))
        self.stats.subtrees_reused += int(
            counters.get("subtrees_reused", 0)
        )

    def _restart_pool(self, resubmitted: int) -> None:
        """Tear down a broken/hung pool, start a fresh one, and account
        for it; *resubmitted* is how many in-flight misses will be
        re-queued onto the new pool."""
        self.close()
        self.start()
        self.stats.pool_restarts += 1
        if self.tracer.enabled:
            self.tracer.emit(PoolRestarted(
                restarts=self.stats.pool_restarts,
                resubmitted=resubmitted,
            ))

    # ------------------------------------------------------------------
    # observation hooks (used by the service layer)
    # ------------------------------------------------------------------
    def entry_for(self, workload) -> Tuple[str, str, str, str]:
        """``(name, canonical_text, fingerprint, cache_key)`` for one
        workload -- exactly what :meth:`allocate_module` computes before
        its cache lookup.

        This is the hook the allocation service builds its cross-request
        coalescing on: two workloads share an in-flight computation if
        and only if their cache keys are equal, and key parity with the
        engine is guaranteed because both call this one method.
        """
        name = workload.label()
        text = format_function(workload.fn)
        fingerprint = text_fingerprint(text)
        inputs = (
            inputs_digest(workload.args, workload.arrays)
            if self.batch.simulate
            else ""
        )
        return name, text, fingerprint, cache_key(
            fingerprint, self._invalidation, inputs
        )

    def pool_health(self) -> Dict[str, object]:
        """Liveness view of the worker pool (for ``/healthz``).

        ``configured`` is ``batch_workers``; ``running`` says whether a
        pool currently exists (it is started lazily, so ``False`` is
        healthy before the first pooled miss); ``alive`` counts worker
        processes still running; ``broken`` reflects the executor's own
        broken flag.  ``restarts`` mirrors ``stats.pool_restarts``.
        """
        pool = self._pool
        health: Dict[str, object] = {
            "configured": self.batch.batch_workers,
            "running": pool is not None,
            "alive": 0,
            "broken": False,
            "restarts": self.stats.pool_restarts,
        }
        if pool is not None:
            processes = list((getattr(pool, "_processes", None) or {}).values())
            health["alive"] = sum(1 for p in processes if p.is_alive())
            health["broken"] = bool(getattr(pool, "_broken", False))
        return health

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate_module(self, workloads: Sequence) -> ModuleAllocation:
        """Allocate every workload, returning results in submission order.

        Failures are isolated per function according to
        ``batch.on_error`` (see :class:`~repro.core.config.BatchConfig`);
        only strict mode (``"fail"``) lets an exception escape.
        """
        tracer = self.tracer
        t0 = time.time()  # wall: trace rows only (offset from _epoch)
        t0_mono = time.monotonic()

        # 1. fingerprint + cache lookup, in submission order.
        entries: List[Tuple[str, str, str, object]] = []
        results: List[Optional[BatchResult]] = [None] * len(workloads)
        miss_groups: Dict[str, List[int]] = {}
        #: cache keys refused by admission control -> (cost, limit).
        rejected_keys: Dict[str, Tuple[int, int]] = {}
        admission_limit = self.batch.admission_limit
        for index, workload in enumerate(workloads):
            # Records carry simulated costs/returned when inputs are
            # present, so the key must distinguish inputs -- for the
            # cache lookup *and* for the miss dedup below, which assumes
            # one key == one (function, inputs) computation.
            name, text, fingerprint, key = self.entry_for(workload)
            entries.append((name, text, fingerprint, workload))
            if admission_limit is not None:
                # Admission is decided *before* the cache is consulted,
                # so the admit/reject stream is a pure function of the
                # input module, never of cache state.
                cost = estimate_cost(workload.fn)
                if cost > admission_limit:
                    self.stats.rejected += 1
                    rejected_keys[key] = (cost, admission_limit)
                    if tracer.enabled:
                        tracer.emit(Rejected(
                            function=name, fingerprint=fingerprint,
                            cost=cost, limit=admission_limit,
                        ))
                    miss_groups.setdefault(key, []).append(index)
                    continue
                if tracer.enabled:
                    tracer.emit(Admitted(
                        function=name, fingerprint=fingerprint,
                        cost=cost, limit=admission_limit,
                    ))
            record = None
            cached_source = None
            if self.cache is not None:
                cached_source = self.cache.source_of(key)
                if cached_source is not None:
                    # May still return None for a torn disk entry (the
                    # get() then counts the miss itself).
                    record = self.cache.get(key)
            if record is not None:
                if tracer.enabled:
                    tracer.emit(CacheHit(
                        function=name, fingerprint=fingerprint,
                        source=cached_source,
                    ))
                results[index] = BatchResult(
                    name=name, fingerprint=fingerprint, record=record,
                    cached=True, source=cached_source, worker="cache",
                    duration=0.0,
                )
            else:
                if self.cache is not None and cached_source is None:
                    self.cache.stats.misses += 1
                if tracer.enabled:
                    tracer.emit(CacheMiss(
                        function=name, fingerprint=fingerprint,
                    ))
                miss_groups.setdefault(key, []).append(index)

        # 2. compute misses -- one task per distinct key, submission
        # order; faults are isolated, retried, and degraded per task.
        ordered_keys = list(miss_groups)
        tasks: List[_Task] = []
        for task_index, key in enumerate(ordered_keys):
            first = miss_groups[key][0]
            name, text, fingerprint, workload = entries[first]
            tasks.append(_Task(
                index=task_index, key=key, name=name,
                fingerprint=fingerprint, text=text, workload=workload,
            ))
        computed: Dict[str, _TaskOutcome] = {}
        if tasks:
            # Rejected tasks never reach the allocator: they get a
            # terminal permanent "admission" outcome directly and flow
            # through the same degradation/merge machinery as any other
            # permanent failure.
            run_tasks: List[_Task] = []
            for task in tasks:
                rejection = rejected_keys.get(task.key)
                if rejection is None:
                    run_tasks.append(task)
                    continue
                cost, limit = rejection
                computed[task.key] = _TaskOutcome(
                    record=None,
                    error=TaskError(
                        error_class="admission",
                        message=(
                            f"estimated cost {cost} exceeds admission "
                            f"limit {limit}"
                        ),
                        permanence=PERMANENT,
                        attempts=0,
                    ),
                    attempts=0,
                )
            if run_tasks:
                if self._pool is None and self.batch.batch_workers > 0:
                    self.start()
                if self._pool is not None:
                    self._run_pooled(run_tasks, computed)
                else:
                    self._run_inline(run_tasks, computed)
            self._apply_degradation(tasks, computed)
            if self.batch.on_error == "fail":
                for task in tasks:
                    outcome = computed[task.key]
                    if outcome.record is None:
                        raise BatchFunctionError(task.name, outcome.error)

        # 3. merge + cache insert, in submission order.
        pids: Dict[int, int] = {}
        own_pid = os.getpid()
        for key in ordered_keys:
            outcome = computed[key]
            timing = outcome.timing
            pid = int(timing.get("pid", own_pid))
            if self._pool is not None and pid != own_pid:
                worker = f"worker-{pids.setdefault(pid, len(pids))}"
            else:
                worker = "inline"
            duration = float(timing.get("duration", 0.0))
            # Degraded records never enter the cache: the key promises a
            # *hierarchical* allocation of this content address, and a
            # fallback result must not answer for one.
            if (
                self.cache is not None
                and outcome.record is not None
                and not outcome.degraded
            ):
                self.cache.put(key, outcome.record)
            for index in miss_groups[key]:
                name, _, fingerprint, _ = entries[index]
                results[index] = BatchResult(
                    name=name, fingerprint=fingerprint,
                    record=outcome.record,
                    cached=False,
                    source="computed" if outcome.record is not None
                    else "failed",
                    worker=worker, duration=duration,
                    error=outcome.error,
                    degraded=outcome.degraded,
                    fallback_allocator=outcome.fallback_allocator,
                    attempts=outcome.attempts,
                )
            if outcome.record is None:
                self.stats.failures += len(miss_groups[key])
            if outcome.degraded:
                self.stats.degraded += len(miss_groups[key])
                if outcome.error is not None and outcome.error.error_class in (
                    "admission", "budget", "deadline"
                ):
                    self.stats.degraded_by_budget += len(miss_groups[key])
            if tracer.enabled:
                first_name, _, first_fp, _ = entries[miss_groups[key][0]]
                tracer.emit(BatchTask(
                    function=first_name, fingerprint=first_fp,
                    worker=worker,
                    start=float(timing.get("start", t0)) - self._epoch,
                    duration=duration, cached=False,
                ))
        if tracer.enabled:
            for result in results:
                if result is not None and result.cached:
                    tracer.emit(BatchTask(
                        function=result.name, fingerprint=result.fingerprint,
                        worker="cache", start=t0 - self._epoch,
                        duration=0.0, cached=True,
                    ))

        wall = time.monotonic() - t0_mono
        done: List[BatchResult] = [r for r in results if r is not None]
        assert len(done) == len(workloads)
        self.stats.functions += len(done)
        self.stats.computed += len(ordered_keys)
        self.stats.cache_hits += sum(1 for r in done if r.cached)
        self.stats.cache_misses += len(workloads) - sum(
            1 for r in done if r.cached
        )
        if self.cache is not None:
            self.stats.evictions = self.cache.stats.evictions
            self.stats.disk_hits = self.cache.stats.disk_hits
            self.stats.quarantined = self.cache.stats.quarantined
        self.stats.wall_s += wall
        self.stats.stage_times = self.timers.as_dict()
        return ModuleAllocation(results=done, stats=self.stats)

    # ------------------------------------------------------------------
    # fault-handling compute paths
    # ------------------------------------------------------------------
    def _handle_failure(
        self,
        task: _Task,
        error_class: str,
        permanence: str,
        message: str,
        outcomes: Dict[str, _TaskOutcome],
        retry_queue: List[_Task],
        timing: Optional[Dict[str, object]] = None,
        budget_detail: Optional[Dict[str, object]] = None,
    ) -> None:
        """Route one failed attempt: bounded deterministic retry for
        transient failures, terminal :class:`_TaskOutcome` otherwise."""
        if self.tracer.enabled:
            self.tracer.emit(TaskFailed(
                function=task.name, fingerprint=task.fingerprint,
                error_class=error_class, permanence=permanence,
                attempt=task.attempt, message=message,
            ))
            if budget_detail:
                self.tracer.emit(BudgetExceeded(
                    function=task.name, fingerprint=task.fingerprint,
                    resource=str(budget_detail.get("resource", "fuel")),
                    spent=float(budget_detail.get("spent", 0.0)),
                    limit=float(budget_detail.get("limit", 0.0)),
                ))
        if permanence == TRANSIENT and task.attempt < self.batch.max_retries:
            backoff = self.batch.retry_backoff_s * (2 ** task.attempt)
            self.stats.retries += 1
            if self.tracer.enabled:
                self.tracer.emit(TaskRetried(
                    function=task.name, fingerprint=task.fingerprint,
                    attempt=task.attempt + 1, backoff_s=backoff,
                ))
            if backoff > 0:
                time.sleep(backoff)
            task.attempt += 1
            retry_queue.append(task)
            return
        outcomes[task.key] = _TaskOutcome(
            record=None,
            timing=timing or {},
            error=TaskError(
                error_class=error_class, message=message,
                permanence=permanence, attempts=task.attempt + 1,
            ),
            attempts=task.attempt + 1,
        )

    def _run_pooled(
        self, tasks: List[_Task], outcomes: Dict[str, _TaskOutcome]
    ) -> None:
        """Fan tasks out over the pool, surviving worker loss.

        Futures are collected in submission order (never completion
        order).  A ``BrokenProcessPool`` or per-task timeout marks the
        round for a pool restart; only still-unfinished tasks are
        resubmitted, so the cache/merge semantics downstream see exactly
        one terminal outcome per key regardless of faults.
        """
        pending = list(tasks)
        while pending:
            try:
                submitted = [
                    (task, self._pool.submit(run_task, _task_tuple(task)))
                    for task in pending
                ]
            except BrokenExecutor:
                # The pool broke between rounds (e.g. an idle worker
                # died); rebuild it and submit again.  A second failure
                # propagates: the pool cannot even start.
                self._restart_pool(resubmitted=len(pending))
                submitted = [
                    (task, self._pool.submit(run_task, _task_tuple(task)))
                    for task in pending
                ]
            retry_queue: List[_Task] = []
            restart_needed = False
            for task, future in submitted:
                try:
                    _, payload, timing = future.result(
                        timeout=self.batch.task_timeout_s
                    )
                except FuturesTimeout:
                    # The worker is stuck; it can only be reclaimed by
                    # restarting the pool.
                    future.cancel()
                    restart_needed = True
                    self._handle_failure(
                        task, "timeout", TRANSIENT,
                        f"task exceeded {self.batch.task_timeout_s}s",
                        outcomes, retry_queue,
                    )
                except BrokenExecutor as exc:
                    restart_needed = True
                    self._handle_failure(
                        task, "pool", TRANSIENT,
                        str(exc) or "worker process died",
                        outcomes, retry_queue,
                    )
                else:
                    if payload.get("ok"):
                        outcomes[task.key] = _TaskOutcome(
                            record=record_from_dict(payload["record"]),
                            timing=timing, attempts=task.attempt + 1,
                        )
                        self.timers.merge(timing.get("stage_times", {}))
                        self._merge_tile_counters(timing.get("tile_cache"))
                    else:
                        self._handle_failure(
                            task,
                            str(payload.get("error_class", "internal")),
                            str(payload.get("permanence", PERMANENT)),
                            str(payload.get("message", "")),
                            outcomes, retry_queue, timing=timing,
                            budget_detail=payload.get("budget"),
                        )
            if restart_needed:
                self._restart_pool(resubmitted=len(retry_queue))
            pending = retry_queue

    def _run_inline(
        self, tasks: List[_Task], outcomes: Dict[str, _TaskOutcome]
    ) -> None:
        """Compute misses in-process with the same retry semantics as the
        pooled path (timeouts cannot preempt an inline task and are
        ignored; injected kill/hang faults downgrade to transient
        raises -- see :mod:`repro.batch.faultinject`)."""
        plan = active_plan()
        for task in tasks:
            while True:
                start = time.time()  # wall: trace timestamp only
                start_mono = time.monotonic()
                try:
                    plan.maybe_fail_task(
                        task.index, task.attempt, in_worker=False
                    )
                    # Allocate the canonical (parsed-back) form, exactly
                    # as pool workers do: a record must be a pure
                    # function of the content address, and block *dict
                    # order* -- which canonical text does not capture --
                    # can otherwise steer tie-breaks.
                    record, stage_times, tile_cache = compute_record(
                        task.name, parse_function(task.text), self.config,
                        self.machine,
                        args=task.workload.args,
                        arrays=task.workload.arrays,
                        simulate=self.batch.simulate,
                        fingerprint=task.fingerprint,
                        tile_store=self.tile_store,
                        budget_limits=self._budget_limits,
                    )
                except Exception as exc:
                    error_class, permanence = classify_exception(exc)
                    detail = None
                    if isinstance(exc, BudgetExceededError):
                        detail = {
                            "resource": exc.resource,
                            "spent": exc.spent,
                            "limit": exc.limit,
                        }
                    retry_queue: List[_Task] = []
                    self._handle_failure(
                        task, error_class, permanence, str(exc),
                        outcomes, retry_queue,
                        timing={
                            "start": start,
                            "duration": time.monotonic() - start_mono,
                            "pid": os.getpid(),
                        },
                        budget_detail=detail,
                    )
                    if retry_queue:
                        continue
                    break
                else:
                    outcomes[task.key] = _TaskOutcome(
                        record=record,
                        timing={
                            "start": start,
                            "duration": time.monotonic() - start_mono,
                            "pid": os.getpid(),
                        },
                        attempts=task.attempt + 1,
                    )
                    self.timers.merge(stage_times)
                    self._merge_tile_counters(tile_cache)
                    break

    def _apply_degradation(
        self, tasks: List[_Task], outcomes: Dict[str, _TaskOutcome]
    ) -> None:
        """Walk failed tasks down the degradation ladder (coordinator-
        side, in submission order; no-op unless ``on_error="degrade"``).

        The ladder is deliberately fault-free territory: the injection
        plan targets primary attempts only, mirroring reality -- the
        fallback is a *different computation*, not a retry of the same
        one.
        """
        if self.batch.on_error != "degrade":
            return
        for task in tasks:
            outcome = outcomes[task.key]
            if outcome.record is not None or outcome.error is None:
                continue
            for rung in DEGRADATION_LADDER:
                start = time.time()  # wall: trace timestamp only
                start_mono = time.monotonic()
                try:
                    record, _, _ = compute_record(
                        task.name, parse_function(task.text), self.config,
                        self.machine,
                        args=task.workload.args,
                        arrays=task.workload.arrays,
                        simulate=self.batch.simulate,
                        fingerprint=task.fingerprint,
                        allocator=rung,
                    )
                except Exception as exc:
                    # A rung may legitimately fail (chaitin can still run
                    # out of colors); the ladder moves on to the next one.
                    # But the failure is surfaced, not swallowed: it is
                    # classified into the taxonomy and emitted as a
                    # TaskFailed trace row tagged with the rung.
                    error_class, permanence = classify_exception(exc)
                    if self.tracer.enabled:
                        self.tracer.emit(TaskFailed(
                            function=task.name,
                            fingerprint=task.fingerprint,
                            error_class=error_class,
                            permanence=permanence,
                            attempt=task.attempt,
                            message=f"fallback {rung!r}: {exc}",
                        ))
                    continue
                outcome.record = record
                outcome.degraded = True
                outcome.fallback_allocator = rung
                outcome.timing = {
                    "start": start,
                    "duration": time.monotonic() - start_mono,
                    "pid": os.getpid(),
                }
                if self.tracer.enabled:
                    self.tracer.emit(Degraded(
                        function=task.name, fingerprint=task.fingerprint,
                        fallback_allocator=rung,
                        error_class=outcome.error.error_class,
                    ))
                break
