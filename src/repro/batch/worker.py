"""Process-pool worker for the batch engine.

Everything here is top-level and picklable.  A worker is initialized once
per process with the allocator/machine configuration
(:func:`worker_init`), then receives
``(index, name, fingerprint, text, args, arrays, attempt)`` tasks and
returns ``(index, payload_dict, timing_dict)`` -- the function travels as
its canonical IR text (lossless round-trip through
``format_function``/``parse_function``), never as a pickled object graph,
so the wire format is as stable as the cache format.

Failures travel the same way: a worker never lets an exception escape
``run_task``.  Exceptions would have to be *pickled* back across the
process boundary -- which silently breaks for exception types with
non-trivial constructors (``NoColorForRequiredNode`` takes a ``node``
argument) -- so the payload is either ``{"ok": True, "record": ...}`` or
``{"ok": False, "error_class": ..., "permanence": ..., "message": ...}``
with the classification done where the exception type is still known
(:func:`repro.errors.classify_exception`).

:func:`compute_record` is the single implementation of "allocate one
function and condense the result into an :class:`AllocationRecord`"; the
engine calls it inline when running without a pool and for
degradation-ladder fallbacks (``allocator="chaitin"`` / ``"naive"``), so
pooled, inline and cached results are constructed identically
(bit-identical, per the determinism gate).
"""

from __future__ import annotations

import hashlib
import os
import sys
import time
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.batch.serialize import (
    FORMAT_VERSION,
    AllocationRecord,
    function_fingerprint,
    normalize_returned,
    record_to_dict,
)
from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.core.summary import is_summary_var, is_temp_node
from repro.ir.function import Function
from repro.ir.parser import parse_function
from repro.ir.printer import format_function
from repro.machine.target import Machine


#: Fallback allocators the engine tries, in order, when the hierarchical
#: allocation of a function fails permanently (the degradation ladder).
#: Chaitin is the paper's own comparison allocator; naive spill-everywhere
#: always succeeds on any machine with >= 2 registers.
DEGRADATION_LADDER = ("chaitin", "naive")


def _make_allocator(
    name: str, config: HierarchicalConfig, tile_store=None, budget_limits=None
):
    if name == "hierarchical":
        return HierarchicalAllocator(
            config, tile_store=tile_store, budget_limits=budget_limits
        )
    if name == "chaitin":
        from repro.allocators import ChaitinAllocator

        return ChaitinAllocator()
    if name == "naive":
        from repro.allocators import NaiveMemoryAllocator

        return NaiveMemoryAllocator()
    raise ValueError(f"unknown allocator {name!r}")


def compute_record(
    name: str,
    fn: Function,
    config: HierarchicalConfig,
    machine: Machine,
    args: Optional[Mapping[str, Any]] = None,
    arrays: Optional[Mapping[str, Sequence[Any]]] = None,
    simulate: bool = True,
    fingerprint: Optional[str] = None,
    allocator: str = "hierarchical",
    tile_store=None,
    budget_limits=None,
) -> Tuple[AllocationRecord, Dict[str, float], Optional[Dict[str, int]]]:
    """Allocate *fn* and condense the outcome into a cacheable record.

    With *simulate* and inputs present, the full pipeline runs (reference
    run, allocation, allocated run, differential verification) and the
    record carries the dynamic cost counters; otherwise the function is
    allocated and validated statically and ``costs`` is ``None``.
    Returns the record, the allocator's per-stage wall times (which the
    engine aggregates across workers; never part of the record), and --
    when a *tile_store* was attached -- the per-tile reuse counters
    (``tile_hits`` / ``tile_misses`` / ``subtrees_reused``; ``None``
    otherwise).

    *allocator* selects the algorithm: ``"hierarchical"`` (default), or
    the degradation-ladder fallbacks ``"chaitin"`` / ``"naive"`` (those
    produce no per-tile bindings; everything else in the record is
    constructed identically).  *tile_store* is a
    :class:`repro.core.incremental.TileCacheStore` for incremental
    re-allocation; only the hierarchical allocator uses it.
    *budget_limits* is a :class:`repro.core.budget.BudgetLimits` resource
    governor, likewise hierarchical-only -- degradation-ladder rungs run
    unbudgeted so a fuel-exhausted function can still complete there.
    """
    from repro.pipeline import Workload, compile_function, prepare

    fingerprint = fingerprint or function_fingerprint(fn)
    args = dict(args or {})
    arrays = {k: list(v) for k, v in (arrays or {}).items()}
    run_simulation = simulate and bool(args or arrays)

    costs: Optional[Dict[str, int]] = None
    returned: Optional[int] = None
    if run_simulation:
        result = compile_function(
            Workload(fn, args, arrays, name=name),
            _make_allocator(allocator, config, tile_store, budget_limits),
            machine,
        )
        outcome = result.outcome
        costs = {
            "spill_loads": result.allocated_run.spill_loads,
            "spill_stores": result.allocated_run.spill_stores,
            "moves": result.allocated_run.register_moves,
            "program_refs": result.allocated_run.program_memory_refs,
        }
        returned = normalize_returned(result.allocated_run.returned)
        allocations = outcome.stats.extra.get("allocations")
        ctx = outcome.stats.extra.get("context")
    else:
        from repro.ir.validate import validate_function
        from repro.machine.rewrite import remove_self_moves

        prepared = prepare(fn)
        alloc = _make_allocator(allocator, config, tile_store, budget_limits)
        outcome = alloc.allocate(prepared, machine)
        remove_self_moves(outcome.fn)
        validate_function(outcome.fn, allow_unreachable=True)
        allocations = getattr(alloc, "last_allocations", None)
        ctx = getattr(alloc, "last_context", None)

    text = format_function(outcome.fn)
    stage_times = dict(outcome.stats.extra.get("stage_times", {}))
    tile_cache = outcome.stats.extra.get("tile_cache")
    record = AllocationRecord(
        version=FORMAT_VERSION,
        function=name,
        fingerprint=fingerprint,
        blocks=len(outcome.fn.blocks),
        allocated_sha256=hashlib.sha256(text.encode()).hexdigest(),
        allocated_text=text,
        spilled=tuple(sorted(outcome.stats.spilled_vars)),
        bindings=_final_bindings(ctx, allocations),
        static_costs={
            "spill_loads": outcome.stats.static_spill_loads,
            "spill_stores": outcome.stats.static_spill_stores,
            "moves": outcome.stats.static_moves,
        },
        costs=costs,
        returned=returned,
        allocator=allocator,
        tile_fingerprints=tuple(
            outcome.stats.extra.get("tile_fingerprints", ())
        ),
    )
    return record, stage_times, tile_cache


def _final_bindings(ctx, allocations) -> Tuple[Tuple[str, str], ...]:
    """Per-tile final bindings of real variables, as ``("t<i>:<var>",
    location)`` pairs where ``<i>`` is the tile's *postorder index* --
    process-global tile ids differ between worker processes, postorder
    indices do not."""
    if ctx is None or allocations is None:
        return ()
    pairs = []
    for index, tile in enumerate(ctx.tree.postorder()):
        alloc = allocations.get(tile.tid)
        if alloc is None:
            continue
        phys = getattr(alloc, "phys", None) or {}
        for node in sorted(phys):
            if is_summary_var(node) or is_temp_node(node):
                continue
            pairs.append((f"t{index}:{node}", phys[node]))
    return tuple(pairs)


# ----------------------------------------------------------------------
# pool plumbing
# ----------------------------------------------------------------------
_WORKER_STATE: Dict[str, Any] = {}


def worker_init(
    src_path: str,
    hash_seed: Optional[str],
    config: HierarchicalConfig,
    machine: Machine,
    simulate: bool,
    tile_cache: bool = False,
    tile_cache_entries: int = 4096,
    budget_limits=None,
) -> None:
    """Per-process initializer: make ``import repro`` work regardless of
    start method, pin ``PYTHONHASHSEED`` for any grandchildren, and stash
    the shared configuration once instead of per task.  With *tile_cache*
    set, the worker owns a process-local
    :class:`~repro.core.incremental.TileCacheStore` that persists across
    tasks -- re-submissions of edited functions hit it as long as they
    land on the same worker."""
    if src_path and src_path not in sys.path:
        sys.path.insert(0, src_path)
    if hash_seed is not None:
        os.environ["PYTHONHASHSEED"] = hash_seed
    _WORKER_STATE["config"] = config
    _WORKER_STATE["machine"] = machine
    _WORKER_STATE["simulate"] = simulate
    _WORKER_STATE["budget_limits"] = budget_limits
    if tile_cache:
        from repro.core.incremental import TileCacheStore

        _WORKER_STATE["tile_store"] = TileCacheStore(
            capacity=tile_cache_entries
        )
    else:
        _WORKER_STATE["tile_store"] = None


def run_task(
    task: Tuple[int, str, str, str, Dict[str, Any], Dict[str, list], int],
) -> Tuple[int, Dict[str, object], Dict[str, object]]:
    """Allocate one function in a pool process.

    *task* is ``(index, name, fingerprint, text, args, arrays, attempt)``;
    the return value is ``(index, payload, timing)`` where ``payload`` is
    the success/failure dict described in the module docstring and
    ``timing`` carries a wall-clock ``start`` (``time.time()``, shared
    across processes on one machine -- trace rows offset it against the
    engine's epoch), a monotonic ``duration`` (interval math must not be
    skewed by clock steps), the worker ``pid``, and the allocator's
    per-stage times for aggregation.

    Exceptions are caught and classified here -- never raised across the
    pool boundary (see module docstring).  The fault-injection hook runs
    first so an injected ``kill``/``hang`` behaves like the real worker
    loss it simulates.
    """
    from repro.batch.faultinject import active_plan
    from repro.errors import classify_exception

    index, name, fingerprint, text, args, arrays, attempt = task
    start = time.time()  # wall: trace timestamp only
    start_mono = time.monotonic()
    stage_times: Dict[str, float] = {}
    tile_cache: Optional[Dict[str, int]] = None
    try:
        active_plan().maybe_fail_task(index, attempt, in_worker=True)
        fn = parse_function(text)
        record, stage_times, tile_cache = compute_record(
            name,
            fn,
            _WORKER_STATE["config"],
            _WORKER_STATE["machine"],
            args=args,
            arrays=arrays,
            simulate=_WORKER_STATE["simulate"],
            fingerprint=fingerprint,
            tile_store=_WORKER_STATE.get("tile_store"),
            budget_limits=_WORKER_STATE.get("budget_limits"),
        )
        payload: Dict[str, object] = {
            "ok": True,
            "record": record_to_dict(record),
        }
    except Exception as exc:
        error_class, permanence = classify_exception(exc)
        payload = {
            "ok": False,
            "error_class": error_class,
            "permanence": permanence,
            "message": str(exc),
        }
        # Budget failures carry their accounting across the process
        # boundary as plain data (exceptions are never pickled back).
        from repro.core.budget import BudgetExceededError

        if isinstance(exc, BudgetExceededError):
            payload["budget"] = {
                "resource": exc.resource,
                "spent": exc.spent,
                "limit": exc.limit,
            }
    timing = {
        "start": start,
        "duration": time.monotonic() - start_mono,
        "pid": os.getpid(),
        "stage_times": stage_times,
    }
    if tile_cache is not None:
        timing["tile_cache"] = tile_cache
    return index, payload, timing
