"""Batch allocation: process-parallel multi-function driver + result cache.

The scaling axis the paper's section-6 parallelism claim actually pays on
in Python is *across functions*: one process per worker, one function per
task, and -- for repeated traffic -- no allocation at all when a
content-addressed cache already holds the result.

Public surface:

* :class:`~repro.batch.engine.BatchEngine` -- persistent pool + cache;
  :func:`repro.pipeline.allocate_module` is the one-call wrapper.
* :class:`~repro.core.config.BatchConfig` -- the orchestration knobs
  (``batch_workers`` / ``cache_dir`` / ``cache_policy`` / ...).
* :class:`~repro.batch.cache.AllocationCache` -- in-memory LRU over an
  optional on-disk store.
* :mod:`~repro.batch.serialize` -- the stable, versioned record format
  and the fingerprint / invalidation keys.
* :mod:`~repro.batch.module` -- module sources (directories of IR or
  MiniLang files, deterministic synthetic modules).
* :mod:`~repro.batch.faultinject` -- the deterministic fault-injection
  harness (``REPRO_FAULT_PLAN``) the resilience tests and CI gate use.

Fault tolerance (error isolation, deterministic retries, pool recovery,
the degradation ladder) lives in the engine; see its module docstring
and :mod:`repro.errors` for the taxonomy.
"""

from repro.batch.cache import AllocationCache, CacheStats
from repro.batch.engine import (
    BatchEngine,
    BatchResult,
    BatchStats,
    ModuleAllocation,
)
from repro.batch.faultinject import FaultPlan, InjectedFault, active_plan
from repro.batch.module import (
    ModuleFileError,
    ModuleLoad,
    load_module_dir,
    synthetic_module,
)
from repro.batch.worker import DEGRADATION_LADDER
from repro.batch.serialize import (
    FORMAT_VERSION,
    AllocationRecord,
    cache_key,
    code_version,
    function_fingerprint,
    inputs_digest,
    invalidation_key,
)
from repro.core.config import BatchConfig

__all__ = [
    "AllocationCache",
    "AllocationRecord",
    "BatchConfig",
    "BatchEngine",
    "BatchResult",
    "BatchStats",
    "CacheStats",
    "DEGRADATION_LADDER",
    "FORMAT_VERSION",
    "FaultPlan",
    "InjectedFault",
    "ModuleAllocation",
    "ModuleFileError",
    "ModuleLoad",
    "active_plan",
    "cache_key",
    "code_version",
    "function_fingerprint",
    "inputs_digest",
    "invalidation_key",
    "load_module_dir",
    "synthetic_module",
]
