"""Stable, versioned serialization of allocation results.

The batch engine's cache stores *results*, so a record must capture
everything a cache hit has to reproduce bit-for-bit: the rewritten
program text (assignments **and** inserted spill code -- the text is the
complete binding), the spilled-variable set, the per-tile final bindings
of real variables, and the simulator's cost counters when the workload
carried inputs.

Three keys guard correctness:

* the **content address** (:func:`function_fingerprint`) -- sha256 of the
  canonical input program text, the same canonicalization
  ``repro.determinism`` fingerprints are built on;
* the **invalidation key** (:func:`invalidation_key`) -- sha256 over the
  record format version, a hash of the allocator's own source code
  (:func:`code_version`), the semantic :class:`HierarchicalConfig`
  fields, the machine description, and the preparation options.  Any
  allocator code change or config change silently invalidates every
  prior record; scheduling-only knobs (``parallel``, ``parallel_workers``,
  ``parallel_min_tiles``) are *excluded* because the determinism gate
  proves they never change output;
* the **inputs digest** (:func:`inputs_digest`) -- sha256 of the
  workload's simulator inputs (``args``/``arrays``).  A record stores
  the dynamic cost counters and the simulator's return value, both of
  which depend on the inputs the function ran on, so the same function
  simulated with different inputs must occupy different cache slots.
  It is empty when the record is input-independent (simulation off, or
  no inputs supplied: ``costs``/``returned`` are then ``None``).

``cache_key = fingerprint + "-" + invalidation_key [+ "-" + inputs]`` is
the address the :mod:`repro.batch.cache` layers store under.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.core.config import HierarchicalConfig
from repro.ir.printer import format_function
from repro.machine.target import Machine

#: Bump when the record layout below changes shape or meaning.
#: v2: added ``allocator`` (which allocator produced the record -- the
#: degradation ladder can cache-bypass fallback results, but the field
#: still travels with every record so consumers can tell).
#: v3: added ``tile_fingerprints`` (per-tile content addresses in
#: postorder, populated when the allocation ran with a tile store --
#: see :mod:`repro.core.incremental`).  The version sits inside the
#: invalidation key, so v2 records are unreachable under v3 keys and
#: any that are loaded directly fail :func:`record_from_dict`.
FORMAT_VERSION = 3

#: Subpackages whose source feeds :func:`code_version` -- everything that
#: can change what an allocation *produces*, including ``opt`` (the
#: ``optimize`` prepare flag is part of the invalidation key, so optimizer
#: changes must invalidate records cached with it).  Orchestration-only
#: code (``repro.batch`` itself, ``repro.trace``, the CLI) is excluded;
#: ``minilang`` is covered by the content address (the fingerprint hashes
#: the *compiled* function, so codegen changes change the fingerprint).
_CODE_VERSION_PACKAGES = (
    "analysis",
    "allocators",
    "core",
    "graph",
    "ir",
    "machine",
    "opt",
    "perf",
    "tiles",
)

#: Top-level modules hashed alongside the packages: ``pipeline.py`` owns
#: ``prepare``/``compile_function``, the path every cached record was
#: produced through.
_CODE_VERSION_MODULES = ("pipeline.py",)

#: ``HierarchicalConfig`` fields that only affect scheduling, never output
#: (proven by ``repro.determinism check`` across worker counts).
_SCHEDULING_ONLY_FIELDS = frozenset(
    {"parallel", "parallel_workers", "parallel_min_tiles"}
)

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """sha256 over the allocation-relevant source files of ``repro``.

    Computed once per process.  Hashing source (file names + bytes, in
    sorted order) instead of a hand-bumped constant means a cached record
    can never survive an allocator change that should have invalidated it.
    """
    global _code_version_cache
    if _code_version_cache is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for package in _CODE_VERSION_PACKAGES:
            pkg_dir = os.path.join(root, package)
            for dirpath, dirnames, filenames in sorted(os.walk(pkg_dir)):
                dirnames.sort()
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    path = os.path.join(dirpath, filename)
                    rel = os.path.relpath(path, root)
                    digest.update(rel.encode())
                    with open(path, "rb") as fh:
                        digest.update(fh.read())
        for module in _CODE_VERSION_MODULES:
            path = os.path.join(root, module)
            digest.update(module.encode())
            with open(path, "rb") as fh:
                digest.update(fh.read())
        _code_version_cache = digest.hexdigest()
    return _code_version_cache


def function_fingerprint(fn) -> str:
    """Content address of one input function: sha256 of its canonical
    printed text (:func:`repro.ir.printer.format_function`)."""
    return text_fingerprint(format_function(fn))


def text_fingerprint(text: str) -> str:
    """Content address of already-canonical printed text -- callers that
    hold the formatted program (the batch engine formats it for the task
    payload anyway) hash it directly instead of formatting twice."""
    return hashlib.sha256(text.encode()).hexdigest()


class UncacheableConfigError(ValueError):
    """The config cannot be stably serialized into an invalidation key."""


def config_signature(config: HierarchicalConfig) -> Dict[str, object]:
    """JSON-stable dict of the *semantic* config fields."""
    if config.frequencies is not None:
        raise UncacheableConfigError(
            "profile-guided frequencies are per-run data and cannot key "
            "a content-addressed cache; allocate without caching instead"
        )
    signature: Dict[str, object] = {}
    for field in dataclasses.fields(config):
        if field.name in _SCHEDULING_ONLY_FIELDS or field.name == "frequencies":
            continue
        signature[field.name] = getattr(config, field.name)
    return signature


def machine_signature(machine: Machine) -> Dict[str, object]:
    """JSON-stable dict of the machine description."""
    return {
        "num_registers": machine.num_registers,
        "callee_save": sorted(machine.callee_save),
        "arg_regs": list(machine.arg_regs),
        "ret_regs": list(machine.ret_regs),
        "load_cost": machine.load_cost,
        "store_cost": machine.store_cost,
        "move_cost": machine.move_cost,
    }


def invalidation_key(
    config: HierarchicalConfig,
    machine: Machine,
    rename: bool = True,
    optimize: bool = False,
) -> str:
    """Key covering everything besides the input program that can change
    an allocation result."""
    payload = {
        "format_version": FORMAT_VERSION,
        "code_version": code_version(),
        "config": config_signature(config),
        "machine": machine_signature(machine),
        "prepare": {"rename": rename, "optimize": optimize},
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def inputs_digest(
    args: Mapping[str, object], arrays: Mapping[str, object]
) -> str:
    """sha256 over a workload's simulator inputs, in canonical JSON.

    Folded into the cache key whenever a record will carry simulated
    (input-dependent) fields; see the module docstring.  Returns ``""``
    when both mappings are empty -- nothing gets simulated, so the record
    is a pure function of the content address alone.
    """
    if not args and not arrays:
        return ""
    payload = {
        "args": {str(k): v for k, v in args.items()},
        "arrays": {str(k): list(v) for k, v in arrays.items()},
    }
    text = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=repr
    )
    return hashlib.sha256(text.encode()).hexdigest()


def cache_key(fingerprint: str, invalidation: str, inputs: str = "") -> str:
    """The content address records are stored under.

    *inputs* is the :func:`inputs_digest` of the workload's simulator
    inputs -- pass ``""`` (the default) when the record is
    input-independent (simulation off, or no inputs supplied).
    """
    if inputs:
        return f"{fingerprint}-{invalidation}-{inputs}"
    return f"{fingerprint}-{invalidation}"


@dataclass(frozen=True)
class AllocationRecord:
    """One cached allocation result (everything a hit reproduces).

    ``bindings`` maps, per tile in postorder (index, not the
    process-global tile id, which differs between processes), each real
    variable visible in the tile to its final physical register or the
    memory sentinel -- the phase-2 binding that placed it.  ``costs`` is
    ``None`` when the workload carried no inputs (nothing was simulated).
    """

    version: int
    function: str
    fingerprint: str
    blocks: int
    allocated_sha256: str
    allocated_text: str
    spilled: Tuple[str, ...]
    bindings: Tuple[Tuple[str, str], ...]
    static_costs: Mapping[str, int]
    costs: Optional[Mapping[str, int]]
    #: the simulator's observable return value, normalized to JSON shape
    #: (tuples become lists) so in-process and round-tripped records
    #: compare equal; ``None`` when nothing was simulated.
    returned: Optional[object]
    #: which allocator produced this record: ``"hierarchical"`` on the
    #: normal path, ``"chaitin"`` / ``"naive"`` for degradation-ladder
    #: fallbacks (those are never written to the cache -- the cache key is
    #: the *hierarchical* content address; see the batch engine).
    allocator: str = "hierarchical"
    #: per-tile content addresses in tile-tree postorder
    #: (:func:`repro.core.incremental.tile_fingerprint`); empty when the
    #: allocation ran without a tile store.  Observability only -- the
    #: incremental determinism check compares these across runs to prove
    #: the memoized walk saw the same inputs as a cold one.
    tile_fingerprints: Tuple[str, ...] = ()

    def fingerprint_dict(self) -> Dict[str, object]:
        """The ``repro.determinism`` fingerprint view of this record --
        identical shape (and, for an honest cache, identical content) to
        :func:`repro.determinism.allocation_fingerprint`."""
        out: Dict[str, object] = {
            "workload": self.function,
            "blocks": self.blocks,
            "program_sha256": self.allocated_sha256,
            "spilled": list(self.spilled),
        }
        if self.costs is not None:
            out["costs"] = dict(self.costs)
        return out


def record_to_dict(record: AllocationRecord) -> Dict[str, object]:
    """JSON-ready dict (stable field order via sort_keys at dump time)."""
    payload = dataclasses.asdict(record)
    payload["bindings"] = [list(pair) for pair in record.bindings]
    payload["spilled"] = list(record.spilled)
    payload["tile_fingerprints"] = list(record.tile_fingerprints)
    return payload


def record_from_dict(payload: Mapping[str, object]) -> AllocationRecord:
    """Inverse of :func:`record_to_dict`; raises on format drift."""
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"allocation record version {version!r} != {FORMAT_VERSION} "
            "(stale cache entry; delete the cache dir or bump capacity)"
        )
    return AllocationRecord(
        version=FORMAT_VERSION,
        function=str(payload["function"]),
        fingerprint=str(payload["fingerprint"]),
        blocks=int(payload["blocks"]),
        allocated_sha256=str(payload["allocated_sha256"]),
        allocated_text=str(payload["allocated_text"]),
        spilled=tuple(payload["spilled"]),
        bindings=tuple(
            (str(var), str(loc)) for var, loc in payload["bindings"]
        ),
        static_costs={
            str(k): int(v) for k, v in dict(payload["static_costs"]).items()
        },
        costs=(
            None
            if payload.get("costs") is None
            else {str(k): int(v) for k, v in dict(payload["costs"]).items()}
        ),
        returned=normalize_returned(payload.get("returned")),
        allocator=str(payload.get("allocator", "hierarchical")),
        tile_fingerprints=tuple(
            str(fp) for fp in payload.get("tile_fingerprints", ())
        ),
    )


def normalize_returned(value: object) -> Optional[object]:
    """JSON-shape normalization of a simulator return value (tuples and
    lists both become lists, recursively)."""
    if isinstance(value, (tuple, list)):
        return [normalize_returned(v) for v in value]
    return value


def dumps_record(record: AllocationRecord) -> str:
    """Canonical JSON text for one record (bit-stable across processes)."""
    return json.dumps(record_to_dict(record), sort_keys=True,
                      separators=(",", ":"))


def loads_record(text: str) -> AllocationRecord:
    return record_from_dict(json.loads(text))
