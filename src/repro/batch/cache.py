"""Content-addressed allocation cache: in-memory LRU + optional disk store.

Lookup order is memory -> disk; a disk hit is promoted into the LRU.
Keys are the ``fingerprint-invalidation`` addresses of
:mod:`repro.batch.serialize`, so "invalidation" needs no machinery here:
changed code or config simply addresses different entries, and editing
one function changes only that function's fingerprint (every other
entry keeps hitting -- property-tested in ``tests/test_batch_cache.py``).

The disk layout shards by the first two key characters
(``<dir>/ab/<key>.json``) and writes atomically (tmp file + ``os.replace``)
so concurrent batch runs sharing a cache dir never observe torn records.

The disk layer degrades instead of raising: a record that fails to parse
(torn by a crash, corrupted on disk) is **quarantined** -- moved aside to
``<dir>/quarantine/`` and counted -- and treated as a miss, and a failed
disk *write* is counted and swallowed (an allocation result must never be
lost to cache bookkeeping).  The fault-injection harness
(:mod:`repro.batch.faultinject`) can corrupt a write on purpose to drive
the quarantine path in tests.
"""

from __future__ import annotations

import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.batch.serialize import (
    AllocationRecord,
    dumps_record,
    loads_record,
)


@dataclass
class CacheStats:
    """Counters one :class:`AllocationCache` accumulates over its life."""

    hits: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_writes: int = 0
    quarantined: int = 0
    disk_write_errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_writes": self.disk_writes,
            "quarantined": self.quarantined,
            "disk_write_errors": self.disk_write_errors,
        }


class AllocationCache:
    """LRU of :class:`AllocationRecord` with an optional persistent layer.

    Args:
        capacity: maximum in-memory entries; the least recently used entry
            is evicted (and counted) when a put would exceed it.
        cache_dir: directory of the persistent store; ``None`` disables
            the disk layer.
    """

    def __init__(self, capacity: int = 1024,
                 cache_dir: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.cache_dir = cache_dir
        self.stats = CacheStats()
        self._lru: "OrderedDict[str, AllocationRecord]" = OrderedDict()
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    def __len__(self) -> int:
        return len(self._lru)

    def _disk_path(self, key: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, key[:2], f"{key}.json")

    # ------------------------------------------------------------------
    # lookup / insert
    # ------------------------------------------------------------------
    def get(self, key: str, record_stats: bool = True) -> Optional[AllocationRecord]:
        """The record stored under *key*, or ``None``.

        ``record_stats=False`` makes the probe invisible to the counters
        (used by ``peek``-style diagnostics)."""
        record = self._lru.get(key)
        if record is not None:
            self._lru.move_to_end(key)
            if record_stats:
                self.stats.hits += 1
                self.stats.memory_hits += 1
            return record
        if self.cache_dir:
            path = self._disk_path(key)
            if os.path.isfile(path):
                try:
                    with open(path, encoding="utf-8") as fh:
                        record = loads_record(fh.read())
                except (OSError, ValueError):
                    # Torn/stale/corrupt entry: quarantine it (so the bad
                    # bytes can be inspected and never answer again) and
                    # treat the probe as a miss; a fresh compute will
                    # store a clean record.
                    record = None
                    self._quarantine(path)
                if record is not None:
                    self._insert(key, record)
                    if record_stats:
                        self.stats.hits += 1
                        self.stats.disk_hits += 1
                    return record
        if record_stats:
            self.stats.misses += 1
        return None

    def source_of(self, key: str) -> Optional[str]:
        """``"memory"`` / ``"disk"`` / ``None`` without touching counters
        or LRU order (the engine asks before a counted :meth:`get`)."""
        if key in self._lru:
            return "memory"
        if self.cache_dir and os.path.isfile(self._disk_path(key)):
            return "disk"
        return None

    def _quarantine(self, path: str) -> None:
        """Move an unreadable disk record into ``<dir>/quarantine/``."""
        assert self.cache_dir is not None
        target_dir = os.path.join(self.cache_dir, "quarantine")
        try:
            os.makedirs(target_dir, exist_ok=True)
            os.replace(path, os.path.join(target_dir,
                                          os.path.basename(path)))
        except OSError:
            # Another process may have quarantined or replaced it first;
            # the entry already stopped answering, which is what matters.
            pass
        self.stats.quarantined += 1

    def put(self, key: str, record: AllocationRecord) -> None:
        """Insert (or refresh) *key*; writes through to disk when enabled.

        A disk-write failure (full/read-only/vanished filesystem) is
        counted, not raised: the in-memory layer already holds the
        record, and losing a cache write must never lose an allocation.
        """
        from repro.batch.faultinject import active_plan

        self._insert(key, record)
        if self.cache_dir:
            path = self._disk_path(key)
            try:
                os.makedirs(os.path.dirname(path), exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    dir=os.path.dirname(path), suffix=".tmp"
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as fh:
                        fh.write(dumps_record(record))
                    os.replace(tmp, path)
                except BaseException:
                    if os.path.exists(tmp):
                        os.unlink(tmp)
                    raise
            except OSError:
                self.stats.disk_write_errors += 1
                return
            self.stats.disk_writes += 1
            active_plan().maybe_corrupt_disk_write(path)

    def _insert(self, key: str, record: AllocationRecord) -> None:
        self._lru[key] = record
        self._lru.move_to_end(key)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
            self.stats.evictions += 1

    def clear_memory(self) -> None:
        """Drop the LRU layer (the disk store, if any, survives)."""
        self._lru.clear()
