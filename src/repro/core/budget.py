"""Deterministic resource governance for a single allocation.

A pathological input -- a deep loop nest, an irreducible mesh, a
huge-degree interference graph, a function that churns spills round
after round -- can burn a worker until an *external* timeout kills it,
discarding all completed work and starving honest traffic queued behind
it.  This module gives the allocator *internal* defenses:

* :class:`AllocationBudget` -- a "fuel" pool the pipeline's loop headers
  charge deterministically (instructions lowered, graph nodes and edges
  built, simplify/spill rounds, tile-tree depth).  Fuel spend is a pure
  function of the input program and the configuration, so exhaustion is
  reproducible: the same function with the same budget exhausts on the
  same charge, every process, every hash seed.  Exhaustion raises
  :class:`BudgetExceededError` with ``resource="fuel"`` -- classified
  PERMANENT, so the batch engine's degradation ladder handles it like
  any other structural failure (retrying would burn the same fuel).
* A **wall-clock deadline** as a transient backstop for whatever the
  fuel accounting missed.  The clock is the only nondeterministic part,
  so a deadline miss raises with ``resource="deadline"`` -- classified
  TRANSIENT, feeding the bounded-retry path instead of the ladder.
* :func:`estimate_cost` -- a cheap, deterministic, monotone admission
  estimate over parsed-function stats (blocks, instructions, live
  variables) so oversized work can be routed to a fallback allocator or
  rejected *before* any fuel is burned on it.

The unbudgeted path stays free: every checkpoint site is guarded by
``if budget is not None``, a single identity test.

Budget limits never change what a *completed* allocation decides --
they only abort -- so a budgeted run that finishes is bit-identical to
an unbudgeted one (``repro.determinism check --budget`` proves it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = [
    "AllocationBudget",
    "BudgetExceededError",
    "BudgetLimits",
    "estimate_cost",
]


class BudgetExceededError(Exception):
    """An allocation ran out of fuel or past its deadline.

    ``resource`` is ``"fuel"`` (deterministic counters exhausted;
    PERMANENT -- see :func:`repro.errors.classify_exception`) or
    ``"deadline"`` (wall clock; TRANSIENT).  ``counters`` is the
    per-category spend at the moment of the raise.
    """

    def __init__(
        self,
        resource: str,
        spent: float,
        limit: float,
        counters: Optional[Dict[str, int]] = None,
    ) -> None:
        self.resource = resource
        self.spent = spent
        self.limit = limit
        self.counters = dict(counters or {})
        unit = "fuel units" if resource == "fuel" else "s"
        super().__init__(
            f"allocation {resource} budget exceeded: "
            f"spent {spent:g}{'' if resource == 'fuel' else unit} "
            f"of {limit:g} {unit}"
            + (f" (counters: {self.counters})" if self.counters else "")
        )


@dataclass(frozen=True)
class BudgetLimits:
    """The immutable spec a fresh :class:`AllocationBudget` is minted
    from -- one budget per allocation, so fuel counters never leak
    between functions.

    ``max_fuel`` is the deterministic fuel pool (``None`` = unlimited);
    ``deadline_s`` the wall-clock backstop in seconds (``None`` = no
    deadline).
    """

    max_fuel: Optional[int] = None
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_fuel is not None and self.max_fuel < 1:
            raise ValueError(f"max_fuel must be >= 1, got {self.max_fuel}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be > 0, got {self.deadline_s}"
            )

    @property
    def unlimited(self) -> bool:
        return self.max_fuel is None and self.deadline_s is None

    def start(self) -> Optional["AllocationBudget"]:
        """A fresh budget for one allocation, or ``None`` when both
        limits are off (so the pipeline's ``budget is None`` fast path
        stays taken)."""
        if self.unlimited:
            return None
        return AllocationBudget(
            max_fuel=self.max_fuel, deadline_s=self.deadline_s
        )


#: The deadline clock is consulted only every this-many charges: a
#: ``time.monotonic()`` call per charge would dominate the checkpoints
#: it is supposed to keep cheap.
_DEADLINE_STRIDE = 256


class AllocationBudget:
    """Mutable fuel/deadline state for exactly one allocation.

    ``charge(units, counter)`` is the cooperative checkpoint the
    pipeline's loop headers call; it accumulates per-category counters
    (observability) against one shared fuel pool (enforcement) and
    consults the deadline clock on a stride.  Charges are emitted at
    deterministic points with deterministic unit counts, so the fuel
    spend -- and therefore *which charge* exhausts a too-small budget --
    is a pure function of (input, config, budget).
    """

    __slots__ = (
        "max_fuel", "deadline_s", "spent", "counters",
        "_deadline_mono", "_ticks",
    )

    def __init__(
        self,
        max_fuel: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> None:
        self.max_fuel = max_fuel
        self.deadline_s = deadline_s
        self.spent = 0
        self.counters: Dict[str, int] = {}
        self._deadline_mono = (
            None if deadline_s is None else time.monotonic() + deadline_s
        )
        self._ticks = 0

    def charge(self, units: int, counter: str) -> None:
        """Spend *units* of fuel against *counter*; raise on exhaustion.

        Deterministic: rejects exactly when cumulative spend passes
        ``max_fuel``, independent of wall time.  The deadline is checked
        every :data:`_DEADLINE_STRIDE` charges as a transient backstop.
        """
        self.counters[counter] = self.counters.get(counter, 0) + units
        self.spent += units
        if self.max_fuel is not None and self.spent > self.max_fuel:
            raise BudgetExceededError(
                "fuel", self.spent, self.max_fuel, self.counters
            )
        self._ticks += 1
        if self._deadline_mono is not None and (
            self._ticks % _DEADLINE_STRIDE == 0
        ):
            self.check_deadline()

    # The ISSUE-facing name; loop headers may call either.
    checkpoint = charge

    def check_deadline(self) -> None:
        """Unconditional deadline probe (for long stretches between
        fuel charges, e.g. around a fallback simulation)."""
        if self._deadline_mono is not None:
            now = time.monotonic()
            if now > self._deadline_mono:
                raise BudgetExceededError(
                    "deadline",
                    round(now - (self._deadline_mono - self.deadline_s), 3),
                    self.deadline_s,
                    self.counters,
                )

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready spend report for ``--stats`` and trace events."""
        return {
            "spent": self.spent,
            "max_fuel": self.max_fuel,
            "deadline_s": self.deadline_s,
            "counters": dict(sorted(self.counters.items())),
        }


def estimate_cost(fn) -> int:
    """Deterministic admission estimate for allocating *fn*.

    ``blocks + instructions * (1 + variables)`` over the parsed
    function: a crude stand-in for the liveness/interference work the
    pipeline will actually do (every instruction is visited against the
    live-variable universe), chosen for its properties rather than its
    accuracy -- it is a pure function of the program text, monotone in
    block and instruction count (adding either never lowers it), and
    costs one linear walk.  Admission control compares it against
    ``BatchConfig.admission_limit`` *before* lowering anything.
    """
    n_blocks = 0
    n_instrs = 0
    variables = set()
    for block in fn:
        n_blocks += 1
        n_instrs += len(block.instrs)
        variables |= block.variables()
    return n_blocks + n_instrs * (1 + len(variables))
