"""Per-tile content-addressed memoization (incremental re-allocation).

Full re-allocation of an edited function repeats almost all of the work
the previous run already did: a single-block edit dirties one tile and
its ancestor chain, while every sibling subtree's phase-1 summary and
phase-2 binding are bit-identical to last time.  This module caches both
phases at tile granularity so re-allocation recomputes only the dirty
subtree:

* :func:`tile_fingerprint` -- content address of everything phase 1 of
  one tile can observe: the tile's own blocks (canonical text including
  uids and clobbers, execution frequency, block-level live-out), the
  boundary-edge signature (edge, frequency, full live set), the visible
  variables with their locality bits, the children's fingerprints, and
  the allocator/machine/code-version invalidation key (reused from
  :mod:`repro.batch.serialize`).  Two tiles with equal fingerprints
  produce byte-identical phase-1 allocations -- the determinism gate
  (``repro.determinism``) is what licenses this.
* :class:`TileCacheStore` -- process-local LRU over phase-1 entries
  (keyed by fingerprint) and phase-2 overlays (keyed by fingerprint plus
  the parent-interface digest).
* :func:`run_phase1_incremental` / :func:`run_phase2_incremental` --
  drop-in replacements for the sequential drivers that walk the tile
  tree, reuse every clean subtree verbatim, and recompute only dirty
  tiles.  Output is bit-identical to the cold drivers (proven by
  ``repro.determinism check --incremental``).

Correctness rests on three invariants:

* **Stable names.**  Tile ids and instruction uids come from
  process-global counters; ``ts:{tid}:{color}`` / ``tmp:{uid}:...``
  names would otherwise depend on process history.  The allocator
  renumbers both on its private clone (:meth:`TileTree.renumber`,
  :meth:`Function.renumber_uids`) before any analysis runs, making every
  derived name a pure function of the program text.
* **Copy-on-write graphs.**  A phase-1 entry shares its pristine
  interference graph with the live allocation; phase 2 mutates the graph
  (intruders, operand temps), so a dirty tile clones the graph first and
  the cached entry keeps the pristine version.
* **Copied containers.**  Phase 2 extends ``metrics.transfer`` /
  ``metrics.weight`` in place (intruder setdefaults); snapshots own
  copies of the five metric dicts and of every other mutable container,
  in both directions.

Exclusions (documented in DESIGN.md section 10): the rewrite stage
(spill-code insertion) always runs fresh -- it is a cheap linear pass
over the whole function and depends on cross-tile state (fix-up block
labels, reserved-register rotation) that is not worth fingerprinting.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import HierarchicalConfig
from repro.core.info import FunctionContext
from repro.core.phase1 import allocate_tile
from repro.core.phase2 import bind_tile
from repro.core.summary import MEM, TileAllocation, TileMetrics
from repro.graph.interference import InterferenceGraph
from repro.ir.printer import format_instr
from repro.machine.target import Machine
from repro.tiles.tile import Tile
from repro.trace.events import TileCacheHit

#: Bump when the fingerprint recipe below changes: old entries must never
#: answer for inputs hashed under a different recipe.
FINGERPRINT_VERSION = 1


def tile_invalidation_key(config: HierarchicalConfig, machine: Machine) -> str:
    """Invalidation key for tile-granular entries.

    Reuses the batch cache's key (format version, allocator source hash,
    semantic config fields, machine description) so one definition of
    "the allocator changed" guards both cache layers, prefixed with the
    fingerprint recipe version.  Raises
    :class:`repro.batch.serialize.UncacheableConfigError` for configs
    carrying profile frequencies (per-run data cannot key a
    content-addressed store).  Imported lazily: ``repro.batch`` imports
    the pipeline, which imports this package.
    """
    from repro.batch.serialize import invalidation_key

    return f"tilefp{FINGERPRINT_VERSION}:" + invalidation_key(config, machine)


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def _block_digest(ctx: FunctionContext, label: str) -> str:
    """Canonical digest of one block: label, successor list, and per
    instruction its uid, printed text and clobbers.  Served by the arena
    (which memoizes it per block) when one is attached; the fallback
    walks the block objects with the identical framing."""
    arena = ctx.arena
    if arena is not None and not arena.retired:
        return arena.block_digest(arena.block_id[label])
    block = ctx.fn.blocks[label]
    h = sha256()
    h.update(block.label.encode())
    h.update(("->" + ",".join(block.succ_labels)).encode())
    for instr in block.instrs:
        h.update(f"\n{instr.uid}|{format_instr(instr)}".encode())
        if instr.clobbers:
            h.update(("!" + ",".join(instr.clobbers)).encode())
    return h.hexdigest()


def tile_fingerprint(
    ctx: FunctionContext,
    tile: Tile,
    allocations: Dict[int, TileAllocation],
    child_fps: Dict[int, str],
    invalidation: str,
) -> str:
    """Content address of one tile's phase-1 inputs.

    Children must already be fingerprinted and allocated (postorder
    discipline): the visible set includes the children's globals, and a
    child's fingerprint stands in for its entire subtree.

    The recipe covers every input :func:`repro.core.phase1.allocate_tile`
    reads, directly or through the context helpers:

    * the tile id (embedded in summary-variable and pseudo-color names)
      and kind;
    * the function's parameter list (phase-2 renaming, liveness at entry);
    * per own block, in sorted label order: the canonical block digest
      (text, uids, clobbers, successors), the execution frequency, and
      the block-level live-out set (instruction-level liveness inside the
      block derives from it -- a distant edit that changes what is live
      out of an own block must dirty the tile);
    * per boundary edge, in boundary-edge order: endpoints, edge
      frequency, and the full live-on-edge set (boundary cliques,
      intruder candidates and their transfer costs all derive from it);
    * per visible variable, in sorted order: the refs-only-inside and
      live-on-boundary bits (locality classification reads *function
      wide* reference sets, which the block digests cannot see);
    * the children's fingerprints, in child order;
    * the invalidation key (allocator source, config, machine).

    Frequencies are hashed as ``float.hex()`` -- exact, no formatting
    loss; ULP-level frequency changes legitimately dirty a tile because
    spill tie-breaks can hinge on them.
    """
    h = sha256()
    upd = h.update
    upd(f"tilefp:v{FINGERPRINT_VERSION}\n".encode())
    upd(invalidation.encode())
    upd(f"\ntile {tile.tid} {tile.kind}\n".encode())
    upd(("params " + ",".join(ctx.fn.params) + "\n").encode())

    own = sorted(tile.own_blocks())
    live_out = ctx.liveness.live_out
    for label in own:
        upd(b"B ")
        upd(label.encode())
        upd(b" ")
        upd(_block_digest(ctx, label).encode())
        upd(f" {ctx.block_freq(label).hex()} ".encode())
        upd(",".join(sorted(live_out[label])).encode())
        upd(b"\n")

    live_on_edge = ctx.liveness.live_on_edge
    for src, dst in ctx.tree.boundary_edges(tile):
        upd(f"E {src}>{dst} {ctx.edge_freq(src, dst).hex()} ".encode())
        upd(",".join(sorted(live_on_edge(src, dst))).encode())
        upd(b"\n")

    visible: Set[str] = set(ctx.referenced_in_blocks(own))
    for child in tile.children:
        visible |= allocations[child.tid].globals_
    for var in sorted(visible):
        inside = "i" if ctx.refs_only_inside(tile, var) else "-"
        boundary = "b" if ctx.live_on_boundary(tile, var) else "-"
        upd(f"V {var} {inside}{boundary}\n".encode())

    for child in tile.children:
        upd(f"C {child_fps[child.tid]}\n".encode())
    return h.hexdigest()


def interface_digest(
    ctx: FunctionContext,
    tile: Tile,
    alloc: TileAllocation,
    allocations: Dict[int, TileAllocation],
) -> str:
    """Digest of everything phase 2 reads from the *parent*: the parent's
    physical binding (register name or the MEM sentinel, which is also
    what an absent entry means) for every name the tile's binding pass
    can look up -- its summary variables, its globals, and every variable
    live on its boundary (the intruder candidates).  The root has no
    parent; its single overlay key is the constant ``"ROOT"``."""
    if tile.parent is None:
        return "ROOT"
    parent_phys = allocations[tile.parent.tid].phys
    names: Set[str] = set(alloc.summary_vars.values())
    names |= alloc.globals_
    names |= ctx.liveness.index.frozenset_of(ctx.boundary_live_mask(tile))
    h = sha256()
    for name in sorted(names):
        h.update(f"{name}={parent_phys.get(name, MEM)}\n".encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# cached entries
# ----------------------------------------------------------------------
def _copy_metrics(metrics: TileMetrics) -> TileMetrics:
    """Own copies of the five metric dicts (phase 2 extends ``transfer``
    and ``weight`` in place for intruders)."""
    return TileMetrics(
        local_weight=dict(metrics.local_weight),
        transfer=dict(metrics.transfer),
        weight=dict(metrics.weight),
        reg=dict(metrics.reg),
        mem=dict(metrics.mem),
    )


@dataclass
class Phase1Entry:
    """Frozen image of one tile's post-phase-1 allocation.

    ``graph`` is the pristine post-phase-1 interference graph, *shared*
    with whichever live allocation it was snapshotted from or
    instantiated into -- phase 2 must clone before mutating (the drivers
    below enforce this).  Every other container is an owned copy.
    """

    tile_id: int
    graph: InterferenceGraph
    assignment: Dict[str, str]
    spilled: Set[str]
    locals_: Set[str]
    globals_: Set[str]
    boundary_globals: Set[str]
    ts_map: Dict[str, str]
    summary_vars: Dict[str, str]
    global_regs: Dict[str, str]
    conflict_global_summary: Set[Tuple[str, str]]
    conflict_global_global: Set[Tuple[str, str]]
    conflict_summary_summary: Set[Tuple[str, str]]
    phys_prefs_up: Dict[str, str]
    pref_pairs_up: List[Tuple[str, str]]
    summary_prefs_up: List[Tuple[str, str]]
    pref_pairs_all: List[Tuple[str, str]]
    local_prefs_all: Dict[str, str]
    metrics: TileMetrics
    forced_memory: Set[str]
    temp_nodes: Set[str]
    reserved_regs: List[str]
    recolor_rounds: int


def snapshot_phase1(alloc: TileAllocation) -> Phase1Entry:
    """Capture a just-computed phase-1 allocation (before phase 2 runs)."""
    return Phase1Entry(
        tile_id=alloc.tile_id,
        graph=alloc.graph,
        assignment=dict(alloc.assignment),
        spilled=set(alloc.spilled),
        locals_=set(alloc.locals_),
        globals_=set(alloc.globals_),
        boundary_globals=set(alloc.boundary_globals),
        ts_map=dict(alloc.ts_map),
        summary_vars=dict(alloc.summary_vars),
        global_regs=dict(alloc.global_regs),
        conflict_global_summary=set(alloc.conflict_global_summary),
        conflict_global_global=set(alloc.conflict_global_global),
        conflict_summary_summary=set(alloc.conflict_summary_summary),
        phys_prefs_up=dict(alloc.phys_prefs_up),
        pref_pairs_up=list(alloc.pref_pairs_up),
        summary_prefs_up=list(alloc.summary_prefs_up),
        pref_pairs_all=list(alloc.pref_pairs_all),
        local_prefs_all=dict(alloc.local_prefs_all),
        metrics=_copy_metrics(alloc.metrics),
        forced_memory=set(alloc.forced_memory),
        temp_nodes=set(alloc.temp_nodes),
        reserved_regs=list(alloc.reserved_regs),
        recolor_rounds=alloc.recolor_rounds,
    )


def instantiate_phase1(entry: Phase1Entry) -> TileAllocation:
    """Materialize a live allocation from a cached entry (the inverse of
    :func:`snapshot_phase1`; the graph stays shared until phase 2 needs
    to mutate it)."""
    return TileAllocation(
        tile_id=entry.tile_id,
        graph=entry.graph,
        assignment=dict(entry.assignment),
        spilled=set(entry.spilled),
        locals_=set(entry.locals_),
        globals_=set(entry.globals_),
        boundary_globals=set(entry.boundary_globals),
        ts_map=dict(entry.ts_map),
        summary_vars=dict(entry.summary_vars),
        global_regs=dict(entry.global_regs),
        conflict_global_summary=set(entry.conflict_global_summary),
        conflict_global_global=set(entry.conflict_global_global),
        conflict_summary_summary=set(entry.conflict_summary_summary),
        phys_prefs_up=dict(entry.phys_prefs_up),
        pref_pairs_up=list(entry.pref_pairs_up),
        summary_prefs_up=list(entry.summary_prefs_up),
        pref_pairs_all=list(entry.pref_pairs_all),
        local_prefs_all=dict(entry.local_prefs_all),
        metrics=_copy_metrics(entry.metrics),
        forced_memory=set(entry.forced_memory),
        temp_nodes=set(entry.temp_nodes),
        reserved_regs=list(entry.reserved_regs),
        recolor_rounds=entry.recolor_rounds,
    )


@dataclass
class Phase2Overlay:
    """The delta phase 2 applies on top of a phase-1 allocation, for one
    (fingerprint, parent interface) pair.  Applying it is equivalent to
    running :func:`repro.core.phase2.bind_tile` -- minus the graph
    mutation, which nothing downstream reads (the node/edge counts the
    stats want are recorded here instead, as ``graph_counts``)."""

    phys: Dict[str, str]
    summary_phys: Dict[str, str]
    temp_nodes: Set[str]
    rounds_delta: int
    node_count: int
    edge_count: int


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
@dataclass
class TileCacheStats:
    """Cumulative store-level counters (across functions; the per-run
    reuse counters live in :class:`IncrementalState`)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class TileCacheStore:
    """LRU store for phase-1 entries and phase-2 overlays.

    Keys are ``("p1", fingerprint)`` and ``("p2", fingerprint, interface
    digest)``; both namespaces share one LRU so capacity bounds total
    retained entries.  Content addressing makes sharing across functions
    sound -- two functions containing byte-identical tiles (after tid/uid
    renumbering) legitimately hit each other's entries.  Thread-safe: the
    service drives the batch engine from an event loop while benches may
    poke the same store from the main thread.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = TileCacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple) -> Optional[object]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key: Tuple, value: object) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


# ----------------------------------------------------------------------
# incremental drivers
# ----------------------------------------------------------------------
@dataclass
class IncrementalState:
    """Carry-over between the two incremental phases plus the per-run
    reuse counters the batch stats aggregate."""

    allocations: Dict[int, TileAllocation]
    #: tile id -> fingerprint (every tile, hit or miss)
    fingerprints: Dict[int, str]
    #: tile id -> the store's pristine graph when the live allocation
    #: still shares it (phase 2 clones before mutating)
    shared_graphs: Dict[int, InterferenceGraph] = field(default_factory=dict)
    phase1_hits: Set[int] = field(default_factory=set)
    phase2_hits: int = 0
    phase2_misses: int = 0

    def counters(self, tree) -> Dict[str, int]:
        """The headline reuse counters: ``tile_hits`` / ``tile_misses``
        count phase-1 summary reuse; ``subtrees_reused`` counts maximal
        reused subtrees (a hit whose parent missed -- the roots of the
        regions the edit did not dirty)."""
        hits = self.phase1_hits
        subtrees = 0
        for tile in tree.postorder():
            if tile.tid in hits and (
                tile.parent is None or tile.parent.tid not in hits
            ):
                subtrees += 1
        return {
            "tile_hits": len(hits),
            "tile_misses": len(self.fingerprints) - len(hits),
            "subtrees_reused": subtrees,
            "phase2_hits": self.phase2_hits,
            "phase2_misses": self.phase2_misses,
        }


def run_phase1_incremental(
    ctx: FunctionContext,
    config: HierarchicalConfig,
    store: TileCacheStore,
    invalidation: str,
) -> IncrementalState:
    """Phase 1 with per-tile memoization: postorder walk, fingerprint
    each tile once its children are resolved, reuse cached summaries
    verbatim, compute and store the rest."""
    tracer = ctx.tracer
    state = IncrementalState(allocations={}, fingerprints={})
    allocations = state.allocations
    fps = state.fingerprints
    for tile in ctx.tree.postorder():
        fp = tile_fingerprint(ctx, tile, allocations, fps, invalidation)
        fps[tile.tid] = fp
        entry = store.get(("p1", fp))
        if entry is not None:
            alloc = instantiate_phase1(entry)
            state.shared_graphs[tile.tid] = entry.graph
            state.phase1_hits.add(tile.tid)
            if tracer.enabled:
                tracer.emit(TileCacheHit(
                    tile_id=tile.tid, phase="phase1", fingerprint=fp,
                ))
        else:
            alloc = allocate_tile(ctx, config, tile, allocations)
            entry = snapshot_phase1(alloc)
            # The entry shares the live graph; phase 2 clones on write.
            state.shared_graphs[tile.tid] = entry.graph
            store.put(("p1", fp), entry)
        allocations[tile.tid] = alloc
    return state


def run_phase2_incremental(
    ctx: FunctionContext,
    config: HierarchicalConfig,
    store: TileCacheStore,
    state: IncrementalState,
) -> None:
    """Phase 2 with overlay memoization: preorder walk; a tile whose
    fingerprint *and* parent interface both match a cached overlay takes
    the recorded bindings verbatim, everything else binds fresh (cloning
    the shared pristine graph first) and records its overlay."""
    tracer = ctx.tracer
    allocations = state.allocations
    for tile in ctx.tree.preorder():
        alloc = allocations[tile.tid]
        fp = state.fingerprints[tile.tid]
        key = ("p2", fp, interface_digest(ctx, tile, alloc, allocations))
        overlay = store.get(key)
        if overlay is not None:
            alloc.phys = dict(overlay.phys)
            alloc.summary_phys = dict(overlay.summary_phys)
            alloc.temp_nodes = set(overlay.temp_nodes)
            alloc.recolor_rounds += overlay.rounds_delta
            alloc.graph_counts = (overlay.node_count, overlay.edge_count)
            state.phase2_hits += 1
            if tracer.enabled:
                tracer.emit(TileCacheHit(
                    tile_id=tile.tid, phase="phase2", fingerprint=fp,
                ))
            continue
        shared = state.shared_graphs.get(tile.tid)
        if shared is not None and alloc.graph is shared:
            alloc.graph = shared.clone()
        rounds_before = alloc.recolor_rounds
        bind_tile(ctx, config, tile, allocations)
        state.phase2_misses += 1
        store.put(key, Phase2Overlay(
            phys=dict(alloc.phys),
            summary_phys=dict(alloc.summary_phys),
            temp_nodes=set(alloc.temp_nodes),
            rounds_delta=alloc.recolor_rounds - rounds_before,
            node_count=len(alloc.graph),
            edge_count=alloc.graph.edge_count(),
        ))
