"""Configuration and ablation switches for the hierarchical allocator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.frequency import FrequencyInfo


@dataclass(frozen=True)
class HierarchicalConfig:
    """Knobs for :class:`~repro.core.allocator.HierarchicalAllocator`.

    Every switch defaults to the paper's described behaviour; turning one
    off reproduces the design-choice ablations of bench E12.

    Attributes:
        conditional_tiles: build tiles for conditional (SESE) regions, not
            just loops (section 2's "we include both loops and conditionals
            in our hierarchy").
        preferencing: propagate and honor register preferences (section 3,
            "Preferencing").
        store_avoidance: skip the store half of a Reload pair when the
            variable has no definition in the subtile ("the spill is
            unnecessary because v was never modified in the loop").
        demotion: in phase 2, change a child's register allocation to
            memory when the parent holds the variable in memory and
            ``weight_t(v) <= transfer_t(v)`` (section 4, "Placement of
            Spill Code").
        spill_temp_strategy: how operand temporaries for spilled variables
            get registers -- ``"recolor"`` adds them as infinite-spill-cost
            locals and recolors the tile (the paper's method); ``"reserve"``
            sets registers aside up front (the "simple solution [13]" the
            paper contrasts with; costs allocatable registers).
        frequencies: block/edge frequencies; ``None`` uses the static
            estimator.  Pass simulator-profile-derived frequencies for
            profile-guided allocation.
        parallel: color independent sibling subtrees with a thread pool
            (section 6's parallelism claim).  Results are identical to the
            sequential order; this only changes scheduling.  Uses the
            dependency-driven scheduler of :mod:`repro.core.schedule` -- a
            tile runs as soon as its own children (phase 1) or parent
            (phase 2) finish, with no level-wide barriers.  Status: kept
            as the paper's section-6 reproduction and an ablation axis,
            *not* as a performance feature -- it defaults off, the
            auto-threshold below keeps it off at realistic tile counts
            (the GIL makes intra-function thread parallelism a loss
            there), and the parallel axis that actually pays is
            processes-per-function in :mod:`repro.batch`.
        parallel_workers: thread count for the parallel drivers; ``None``
            accepts ``ThreadPoolExecutor``'s default sizing.  Must be >= 1
            when set.
        parallel_min_tiles: with ``parallel`` on, tile trees smaller than
            this fall back to the sequential driver (identical output --
            only the schedule changes).  ``None`` picks the automatic
            threshold ``max(2 * workers, PARALLEL_AUTO_MIN_TILES)``: on
            CPython the GIL-bound thread scheduler loses ~10-20% on
            100-200-tile trees (bench E16 ``drivers``), so small trees
            gain nothing from the pool.  Set ``1`` to force the scheduler
            (the determinism matrix and driver benches do).
        max_tile_width: bound on conditional-tile width forwarded to tile
            construction.
        loop_tiles_only: alias ablation -- force ``conditional_tiles=False``
            at tile construction (kept separate so benches can name it).
    """

    conditional_tiles: bool = True
    preferencing: bool = True
    store_avoidance: bool = True
    demotion: bool = True
    spill_temp_strategy: str = "recolor"
    frequencies: Optional[FrequencyInfo] = None
    parallel: bool = False
    parallel_workers: Optional[int] = None
    parallel_min_tiles: Optional[int] = None
    max_tile_width: Optional[int] = None
    #: spill-candidate ranking: "cost_over_degree" (Chaitin's ratio, the
    #: paper's implementation choice), "cost", or "degree" (section 4:
    #: "our algorithm could easily use either method").
    spill_heuristic: str = "cost_over_degree"

    def __post_init__(self) -> None:
        if self.spill_temp_strategy not in ("recolor", "reserve"):
            raise ValueError(
                f"unknown spill_temp_strategy {self.spill_temp_strategy!r}"
            )
        if self.spill_heuristic not in ("cost_over_degree", "cost", "degree"):
            raise ValueError(
                f"unknown spill_heuristic {self.spill_heuristic!r}"
            )
        if self.parallel_workers is not None and self.parallel_workers < 1:
            raise ValueError(
                f"parallel_workers must be >= 1, got {self.parallel_workers}"
            )
        if self.parallel_min_tiles is not None and self.parallel_min_tiles < 1:
            raise ValueError(
                f"parallel_min_tiles must be >= 1, got {self.parallel_min_tiles}"
            )


@dataclass(frozen=True)
class BatchConfig:
    """Knobs for the batch allocation engine (:mod:`repro.batch`).

    These control *orchestration only* -- how many functions are allocated
    at once and whether results are reused -- never what the allocator
    decides for any single function, so they are kept apart from
    :class:`HierarchicalConfig` (whose semantic fields form the cache
    invalidation key; see :mod:`repro.batch.serialize`).

    Attributes:
        batch_workers: worker *processes* for cache misses.  ``0`` allocates
            in-process (no pool) -- the right choice for one-off runs; the
            pool only pays off across many functions.
        cache_dir: directory for the persistent content-addressed store.
            Required for ``cache_policy="disk"``.
        cache_policy: ``"memory"`` (in-memory LRU, the default), ``"disk"``
            (LRU in front of an on-disk store under *cache_dir*), or
            ``"off"`` (every function is recomputed).
        cache_capacity: maximum in-memory LRU entries before eviction.
        registers: machine size functions are allocated for (the machine is
            part of the invalidation key).
        simulate: run the allocated program on the workload's inputs and
            record the dynamic cost counters in the cached record (also
            verifies the allocation differentially, as the pipeline does).
            Workloads without inputs are allocated statically either way.
        max_retries: bounded retries per task for *transient* failures
            (crashed/hung workers, memory pressure -- see
            :mod:`repro.errors`).  Permanent failures are never retried
            with the same allocator; they go to the degradation ladder
            (or fail, per *on_error*).
        retry_backoff_s: base of the deterministic exponential backoff
            before attempt ``n`` (delay = ``retry_backoff_s * 2**(n-1)``).
        task_timeout_s: per-task wall-clock budget for *pooled* tasks;
            a task exceeding it fails with error class ``"timeout"``
            (transient) and the pool is restarted to reclaim the stuck
            worker.  ``None`` disables the timeout.  Inline tasks
            (``batch_workers == 0``) cannot be preempted and ignore it.
        on_error: what a function's *final* failure (permanent, or
            transient with retries exhausted) does to the module:
            ``"degrade"`` (default) walks the degradation ladder --
            retry with the Chaitin comparison allocator, then the naive
            spill-everywhere baseline -- and only yields an error result
            if every rung fails; ``"skip"`` yields an error result
            immediately; ``"fail"`` re-raises (strict mode:
            :class:`repro.errors.BatchFunctionError`).
        tile_cache: attach a per-tile memoization store
            (:mod:`repro.core.incremental`) to every hierarchical
            allocation the engine runs.  Re-allocating an edited function
            then reuses each clean subtree's phase-1 summary and phase-2
            binding and recomputes only dirty tiles -- bit-identical
            output, proven by ``repro.determinism check --incremental``.
            Stores are per-process (the coordinator holds one for inline
            tasks, each pool worker holds its own), complementary to the
            function-level result cache: that one only hits on identical
            *whole functions*, this one hits on identical *tiles*.
        tile_cache_entries: LRU capacity (phase-1 entries plus phase-2
            overlays) of each per-process tile store.
        max_fuel: deterministic fuel budget per hierarchical allocation
            (see :mod:`repro.core.budget`).  Exhaustion is a *permanent*
            failure (error class ``"budget"``) that feeds the degradation
            ladder; the same input with the same fuel always fails or
            succeeds identically.  ``None`` (default) is unlimited and
            keeps the zero-cost fast path.  Degradation-ladder rungs
            always run unbudgeted so they can complete.
        deadline_s: wall-clock backstop per hierarchical allocation.
            Unlike fuel, elapsed time is not deterministic, so a blown
            deadline is a *transient* failure (error class
            ``"deadline"``) eligible for retry.  ``None`` disables it.
        admission_limit: admission control -- functions whose
            :func:`repro.core.budget.estimate_cost` exceeds this are
            never handed to the hierarchical allocator at all; they fail
            with permanent error class ``"admission"`` and route
            straight to the degradation ladder (or skip/fail, per
            *on_error*).  A pure function of the input, independent of
            cache state.  ``None`` admits everything.
    """

    batch_workers: int = 0
    cache_dir: Optional[str] = None
    cache_policy: str = "memory"
    cache_capacity: int = 1024
    registers: int = 8
    simulate: bool = True
    max_retries: int = 2
    retry_backoff_s: float = 0.05
    task_timeout_s: Optional[float] = None
    on_error: str = "degrade"
    tile_cache: bool = False
    tile_cache_entries: int = 4096
    max_fuel: Optional[int] = None
    deadline_s: Optional[float] = None
    admission_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cache_policy not in ("memory", "disk", "off"):
            raise ValueError(
                f"unknown cache_policy {self.cache_policy!r}"
            )
        if self.cache_policy == "disk" and not self.cache_dir:
            raise ValueError("cache_policy='disk' requires cache_dir")
        if self.batch_workers < 0:
            raise ValueError(
                f"batch_workers must be >= 0, got {self.batch_workers}"
            )
        if self.cache_capacity < 1:
            raise ValueError(
                f"cache_capacity must be >= 1, got {self.cache_capacity}"
            )
        if self.registers < 1:
            raise ValueError(
                f"registers must be >= 1, got {self.registers}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError(
                f"task_timeout_s must be > 0, got {self.task_timeout_s}"
            )
        if self.on_error not in ("fail", "skip", "degrade"):
            raise ValueError(
                f"unknown on_error {self.on_error!r} "
                "(choose fail, skip, or degrade)"
            )
        if self.tile_cache_entries < 1:
            raise ValueError(
                f"tile_cache_entries must be >= 1, "
                f"got {self.tile_cache_entries}"
            )
        if self.max_fuel is not None and self.max_fuel < 1:
            raise ValueError(
                f"max_fuel must be >= 1, got {self.max_fuel}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be > 0, got {self.deadline_s}"
            )
        if self.admission_limit is not None and self.admission_limit < 1:
            raise ValueError(
                f"admission_limit must be >= 1, got {self.admission_limit}"
            )
