"""Memory-hierarchy extension (paper section 6).

"Some machines have more levels of programmer addressable memory hierarchy
than just registers and main memory.  Our techniques can be easily extended
to handle this hierarchy by moving variables between one hierarchical level
and another at the tile boundaries.  Allocation entails placing the
variable at the highest level where it can be allocated and relying on the
spill analysis to eliminate unprofitable moves between levels."

We model one intermediate level -- a small *scratch* memory with its own
(cheaper) access cost -- and implement the first half of the paper's
sketch: after allocation, each spilled variable competes for one of the
``machine.num_scratch`` scratch cells by spill weight, and the winners'
home slots move wholesale from main memory to scratch.  Per-tile movement
*between* the levels (the paper's second half) is left as future work and
documented in DESIGN.md; promotion is per variable, which already realizes
"placing the variable at the highest level where it can be allocated".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.allocators.base import AllocationOutcome
from repro.analysis.frequency import FrequencyInfo, estimate_frequencies
from repro.ir.function import Function
from repro.ir.instructions import Instr, Opcode

#: Slot-key prefix marking the scratch level (the simulator tallies these
#: separately so the cost model can price them).
SCRATCH_PREFIX = "scratch:"
_SLOT_PREFIX = "slot:"


def spill_slot_references(fn: Function) -> Dict[str, float]:
    """Static spill references per slot key (unweighted)."""
    counts: Dict[str, float] = {}
    for _, instr in fn.instructions():
        if instr.op in (Opcode.SPILL_LD, Opcode.SPILL_ST) and isinstance(
            instr.imm, str
        ):
            counts[instr.imm] = counts.get(instr.imm, 0.0) + 1
    return counts


def weighted_slot_traffic(
    fn: Function, freq: Optional[FrequencyInfo] = None
) -> Dict[str, float]:
    """Expected dynamic spill references per slot key."""
    freq = freq or estimate_frequencies(fn)
    traffic: Dict[str, float] = {}
    for label, block in fn.blocks.items():
        weight = freq.prob_block(label)
        for instr in block.instrs:
            if instr.op in (Opcode.SPILL_LD, Opcode.SPILL_ST) and isinstance(
                instr.imm, str
            ):
                traffic[instr.imm] = traffic.get(instr.imm, 0.0) + weight
    return traffic


def promote_to_scratch(
    fn: Function,
    num_scratch: int,
    freq: Optional[FrequencyInfo] = None,
) -> Tuple[Function, List[str]]:
    """Move the hottest spilled variables' home slots into scratch.

    Returns the rewritten function and the promoted slot keys (ordered by
    expected traffic).  Only ordinary variable slots (``slot:*``) compete;
    cycle-bounce slots are untouched (they are rare by construction).
    """
    if num_scratch <= 0:
        return fn.clone(), []
    traffic = weighted_slot_traffic(fn, freq)
    # Parameter home slots stay in main memory: the calling convention
    # places arguments there, not in scratch.
    param_slots = {_SLOT_PREFIX + p for p in fn.params}
    candidates = sorted(
        (
            key
            for key in traffic
            if key.startswith(_SLOT_PREFIX) and key not in param_slots
        ),
        key=lambda key: (-traffic[key], key),
    )
    chosen = candidates[:num_scratch]
    mapping = {
        key: SCRATCH_PREFIX + key[len(_SLOT_PREFIX):] for key in chosen
    }

    out = fn.clone()
    for block in out.blocks.values():
        new_instrs = []
        for instr in block.instrs:
            if (
                instr.op in (Opcode.SPILL_LD, Opcode.SPILL_ST)
                and instr.imm in mapping
            ):
                promoted = instr.clone()
                promoted.imm = mapping[instr.imm]
                new_instrs.append(promoted)
            else:
                new_instrs.append(instr)
        block.instrs = new_instrs
    return out, chosen


def hierarchy_cost(
    run,
    memory_cost: float = 1.0,
    scratch_cost: float = 0.3,
    move_cost: float = 0.0,
) -> float:
    """Weighted allocation-overhead cost under the two-level model."""
    return (
        (run.spill_loads + run.spill_stores - run.scratch_refs) * memory_cost
        + run.scratch_refs * scratch_cost
        + run.register_moves * move_cost
    )
