"""The paper's contribution: hierarchical graph-coloring register allocation.

Public surface:

* :class:`~repro.core.allocator.HierarchicalAllocator` -- the allocator.
* :class:`~repro.core.config.HierarchicalConfig` -- behaviour knobs and
  ablation switches.
* :class:`~repro.core.summary.TileAllocation` -- per-tile allocation state,
  exposed for inspection in examples and benches.
"""

from repro.core.allocator import HierarchicalAllocator
from repro.core.config import BatchConfig, HierarchicalConfig
from repro.core.scratch import hierarchy_cost, promote_to_scratch
from repro.core.summary import TileAllocation, MEM

__all__ = [
    "HierarchicalAllocator",
    "HierarchicalConfig",
    "BatchConfig",
    "TileAllocation",
    "MEM",
    "promote_to_scratch",
    "hierarchy_cost",
]
