"""Spill metrics (paper section 4).

Assuming unit cost to load or store a variable::

    Local_weight_t(v) = sum_b Prob(b) * Refs_b(v)          (b in blocks(t))
    Transfer_t(v)     = sum_e Prob(e) * Live_e(v)          (e boundary of t)
    Weight_t(v)       = sum_s (Reg_s(v) - Mem_s(v)) + Local_weight_t(v)
    Reg_t(v)          = Reg?_t(v) * min(Transfer_t(v), Weight_t(v))
    Mem_t(v)          = Mem?_t(v) * Transfer_t(v)

``Weight`` drives which variable spills; ``Reg``/``Mem`` are the penalties a
parent pays for overriding this tile's decision, and feed the parent's own
``Weight``.  A variable with ``Transfer + Weight < 0`` is "not worth a
register" in this tile regardless of the parent's choice.

Invariants callers rely on:

* :func:`compute_pre_metrics` walks variables and their referencing blocks
  in canonical (sorted) order -- float addition is not associative, so any
  other order can shift a sum by an ULP and flip a spill tie-break between
  processes (the determinism guarantee depends on this).
* ``compute_pre_metrics`` requires every child tile's metrics to be
  finalized first (``Reg``/``Mem`` feed the parent's ``Weight``): phase 1
  must call :func:`finalize_metrics` before the parent tile is processed.
* ``transfer``/``weight`` lookups default to ``0.0`` for unknown
  variables; phase 2 relies on that for intruder variables it adds late.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Set

from repro.core.info import FunctionContext
from repro.core.summary import TileAllocation, TileMetrics
from repro.tiles.tile import Tile
from repro.trace.events import CandidateMetrics


def compute_pre_metrics(
    ctx: FunctionContext,
    tile: Tile,
    visible: Iterable[str],
    children: Mapping[int, TileAllocation],
    child_tiles: List[Tile],
) -> TileMetrics:
    """Metrics available *before* coloring the tile: ``Local_weight``,
    ``Transfer`` and ``Weight`` for every visible real variable, plus
    weights for the children's summary variables."""
    metrics = TileMetrics()
    own = tile.own_blocks()
    transfers = ctx.boundary_transfer(tile)

    block_freq = ctx.block_freq
    ref_counts = ctx.block_ref_counts
    # Everything runs in canonical order: float addition is not
    # associative, so summing frequencies in hash order can shift a
    # result by an ULP, which is enough to flip a spill tie-break
    # between processes.  ``Local_weight`` accumulates per own block in
    # ascending label order -- for each variable that is the ascending
    # restriction of its referencing blocks to this tile, i.e. the exact
    # addition sequence of the old per-variable ref-block walk (blocks
    # referencing a variable through clobbers only contributed 0.0 there
    # and are absent from ``Refs_b`` here; adding 0.0 to a non-negative
    # sum is an exact no-op).  Cost is one pass over the tile's own
    # references instead of one function-wide walk per visible variable.
    visible_sorted = sorted(visible)
    local_w: Dict[str, float] = dict.fromkeys(visible_sorted, 0.0)
    for label in sorted(own):
        freq = block_freq(label)
        for var, count in ref_counts(label).items():
            if var in local_w:
                local_w[var] += freq * count
    for var in visible_sorted:
        local_weight = local_w[var]
        transfer = transfers.get(var, 0.0)
        weight = local_weight
        for child in child_tiles:
            alloc = children[child.tid]
            weight += alloc.metrics.reg.get(var, 0.0) - alloc.metrics.mem.get(
                var, 0.0
            )
        metrics.local_weight[var] = local_weight
        metrics.transfer[var] = transfer
        metrics.weight[var] = weight

    # Summary variables: zero Local_weight; value from the subtile plus the
    # boundary transfer cost of the child ("approximates the penalty of
    # spilling and reloading conflicting variables that are live and in
    # registers at the child tile's boundaries").
    for child in child_tiles:
        alloc = children[child.tid]
        child_transfer = sum(
            ctx.edge_freq(src, dst)
            for src, dst in ctx.tree.boundary_edges(child)
        )
        per_summary_value: Dict[str, float] = {}
        for var, summary in alloc.ts_map.items():
            value = alloc.metrics.local_weight.get(var, 0.0)
            per_summary_value[summary] = per_summary_value.get(summary, 0.0) + value
        for summary in alloc.summary_vars.values():
            value = per_summary_value.get(summary, 0.0)
            metrics.local_weight[summary] = 0.0
            metrics.transfer[summary] = child_transfer
            metrics.weight[summary] = min(value, child_transfer) + child_transfer
    return metrics


def finalize_metrics(
    metrics: TileMetrics,
    assignment: Mapping[str, str],
    spilled: Set[str],
    real_vars: Iterable[str],
) -> None:
    """Fill ``Reg_t`` / ``Mem_t`` once the tile's own allocation is known."""
    for var in real_vars:
        transfer = metrics.transfer.get(var, 0.0)
        weight = metrics.weight.get(var, 0.0)
        if var in assignment and var not in spilled:
            metrics.reg[var] = min(transfer, weight)
            metrics.mem[var] = 0.0
        else:
            metrics.reg[var] = 0.0
            metrics.mem[var] = transfer


def snapshot_candidates(
    metrics: TileMetrics, candidates: Iterable[str]
) -> Dict[str, CandidateMetrics]:
    """Freeze the section-4 values of *candidates* into trace-event form
    (one immutable :class:`CandidateMetrics` per variable) so emitted
    events stay valid after the metrics dicts are extended by phase 2."""
    return {
        var: CandidateMetrics(
            local_weight=metrics.local_weight.get(var, 0.0),
            transfer=metrics.transfer.get(var, 0.0),
            weight=metrics.weight.get(var, 0.0),
            reg=metrics.reg.get(var, 0.0),
            mem=metrics.mem.get(var, 0.0),
        )
        for var in candidates
    }


def not_worth_a_register(metrics: TileMetrics, var: str) -> bool:
    """The section-4 rule: ``transfer_t(v) + weight_t(v) < 0`` marks *v* as
    not receiving a register for this tile regardless of the parent."""
    return (
        metrics.transfer.get(var, 0.0) + metrics.weight.get(var, 0.0) < 0.0
    )
