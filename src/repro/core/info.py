"""Shared per-function context for both allocation phases.

Bundles the function, its tile tree, liveness, frequencies and reference
maps so the phases don't recompute or thread a dozen arguments around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.frequency import FrequencyInfo, estimate_frequencies
from repro.analysis.liveness import (
    Liveness,
    compute_liveness,
    liveness_from_arena,
)
from repro.core.budget import AllocationBudget
from repro.ir.function import Function
from repro.machine.target import Machine
from repro.perf.arena import FunctionArena, build_arena
from repro.perf.varindex import iter_bits
from repro.tiles.fixup import FixupStats
from repro.tiles.tile import Tile, TileTree
from repro.trace.tracer import NULL_TRACER, NullTracer


@dataclass
class FunctionContext:
    """Everything phase 1 / phase 2 need to know about one function."""

    fn: Function
    machine: Machine
    tree: TileTree
    liveness: Liveness
    freq: FrequencyInfo
    fixup: FixupStats
    #: var -> labels of blocks referencing it (defs or uses)
    ref_blocks: Dict[str, Set[str]] = field(default_factory=dict)
    #: var -> labels of blocks defining it
    def_blocks: Dict[str, Set[str]] = field(default_factory=dict)
    #: label of inserted fix-up block -> the original edge it subdivides
    orig_edge: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: flat lowering of ``fn`` (block/instruction/variable tables); None
    #: when the context was built without one (tests constructing the
    #: dataclass directly) -- every arena consumer has an object-walk
    #: fallback.
    arena: Optional[FunctionArena] = field(default=None, repr=False)
    #: structured-event recorder threaded through both phases; the shared
    #: :data:`~repro.trace.tracer.NULL_TRACER` keeps untraced runs free
    #: (call sites guard on ``tracer.enabled``).
    tracer: NullTracer = field(default=NULL_TRACER, repr=False)
    #: per-allocation resource budget; ``None`` (the default) keeps every
    #: checkpoint site on its single-identity-test fast path.
    budget: Optional["AllocationBudget"] = field(default=None, repr=False)
    #: tile id -> OR of live-on-edge bitsets over the tile's boundary
    _boundary_live: Dict[int, int] = field(default_factory=dict, repr=False)
    #: tile id -> var -> summed boundary transfer frequency (section 4)
    _boundary_transfer: Dict[int, Dict[str, float]] = field(
        default_factory=dict, repr=False
    )
    #: label -> {var: defs+uses count} (the paper's ``Refs_b(v)``)
    _ref_counts: Dict[str, Dict[str, int]] = field(
        default_factory=dict, repr=False
    )
    #: var -> ``ref_blocks[var]`` as a sorted tuple (lazy memo)
    _ref_blocks_sorted: Dict[str, Tuple[str, ...]] = field(
        default_factory=dict, repr=False
    )
    #: tile id -> bitset over arena block ids (own / all blocks)
    _tile_own_bmask: Dict[int, int] = field(default_factory=dict, repr=False)
    _tile_all_bmask: Dict[int, int] = field(default_factory=dict, repr=False)
    #: arena block id -> {vid: defs+uses count} (flat Refs_b twin)
    _ref_counts_vid: Dict[int, Dict[int, int]] = field(
        default_factory=dict, repr=False
    )
    _block_freq_arr: Optional[List[float]] = field(default=None, repr=False)
    _tile_memo_version: int = field(default=-1, repr=False)

    def __post_init__(self) -> None:
        # Built eagerly in both paths: the phases may run on a thread
        # scheduler, and lazily filling a shared dict from multiple
        # threads could expose partially-built state.  The arena path is
        # a flat table scan, not an object walk.
        if self.arena is not None and self.arena.fn is self.fn:
            self._build_ref_blocks_from_arena()
        else:
            self._build_ref_blocks()

    def _build_ref_blocks(self) -> None:
        for label, block in self.fn.blocks.items():
            for instr in block.instrs:
                for var in instr.uses:
                    self.ref_blocks.setdefault(var, set()).add(label)
                for var in instr.defs:
                    self.ref_blocks.setdefault(var, set()).add(label)
                    self.def_blocks.setdefault(var, set()).add(label)
                for var in instr.clobbers:
                    self.ref_blocks.setdefault(var, set()).add(label)
                    self.def_blocks.setdefault(var, set()).add(label)

    def _build_ref_blocks_from_arena(self) -> None:
        """Materialize the name-keyed ref/def block dicts from the flat
        tables (identical content to the object walk: both record the
        pre-rewrite function, clobbers included)."""
        arena = self.arena
        name_of = arena.index.name_of
        labels = arena.labels
        for vid in range(len(arena.index)):
            refs = arena.var_ref_blocks(vid)
            if refs:
                self.ref_blocks[name_of(vid)] = {labels[b] for b in refs}
            defs = arena.var_def_blocks(vid)
            if defs:
                self.def_blocks[name_of(vid)] = {labels[b] for b in defs}

    # ------------------------------------------------------------------
    # per-tile variable classification (paper section 3)
    # ------------------------------------------------------------------
    def referenced_in_blocks(self, labels) -> Set[str]:
        arena = self.arena
        if arena is not None and not arena.retired:
            mask = 0
            block_id = arena.block_id
            block_ref = arena.block_ref
            for label in labels:
                mask |= block_ref[block_id[label]]
            return set(arena.index.members(mask))
        out: Set[str] = set()
        for label in labels:
            out |= self.fn.blocks[label].variables()
        return out

    def ref_blocks_sorted(self, var: str) -> Tuple[str, ...]:
        """``ref_blocks[var]`` in canonical (sorted) order.  Memoized: a
        global variable is visible in many tiles, and the metrics pass
        must walk its referencing blocks in a hash-independent order
        every time -- sort once per variable, not once per tile."""
        out = self._ref_blocks_sorted.get(var)
        if out is None:
            out = tuple(sorted(self.ref_blocks.get(var, ())))
            self._ref_blocks_sorted[var] = out
        return out

    def referenced_in_subtree(self, tile: Tile, var: str) -> bool:
        blocks = self.ref_blocks.get(var)
        if not blocks:
            return False
        return bool(blocks & tile.all_blocks)

    def refs_only_inside(self, tile: Tile, var: str) -> bool:
        blocks = self.ref_blocks.get(var, set())
        return bool(blocks) and blocks <= tile.all_blocks

    def defined_in_subtree(self, tile: Tile, var: str) -> bool:
        arena = self.arena
        if arena is not None:
            ids = arena.index._ids
            vid = ids.get(var)
            if vid is None:
                return False
            return bool(arena.var_def_bmask(vid) & self.tile_all_bmask(tile))
        blocks = self.def_blocks.get(var)
        if not blocks:
            return False
        return bool(blocks & tile.all_blocks)

    def _tile_memos_current(self) -> None:
        version = getattr(self.fn, "cfg_version", None)
        if version != self._tile_memo_version:
            self._boundary_live.clear()
            self._boundary_transfer.clear()
            self._ref_counts.clear()
            self._tile_own_bmask.clear()
            self._tile_all_bmask.clear()
            self._tile_memo_version = version

    def block_ref_counts(self, label: str) -> Dict[str, int]:
        """``Refs_b(v)`` for every variable referenced in block *label*
        (memoized; one block scan instead of one per queried variable)."""
        cached = self._ref_counts.get(label)
        if cached is None:
            counts: Dict[str, int] = {}
            get = counts.get
            for instr in self.fn.blocks[label].instrs:
                for var in instr.defs:
                    counts[var] = get(var, 0) + 1
                for var in instr.uses:
                    counts[var] = get(var, 0) + 1
            self._ref_counts[label] = cached = counts
        return cached

    def boundary_live_mask(self, tile: Tile) -> int:
        """Bitset (over ``liveness.index``) of variables live along any of
        *tile*'s boundary edges (memoized per CFG version)."""
        self._tile_memos_current()
        mask = self._boundary_live.get(tile.tid)
        if mask is None:
            mask = 0
            live_bits = self.liveness.live_on_edge_bits
            for src, dst in self.tree.boundary_edges(tile):
                mask |= live_bits(src, dst)
            self._boundary_live[tile.tid] = mask
        return mask

    def live_on_boundary(self, tile: Tile, var: str) -> bool:
        index = self.liveness.index
        if var not in index:
            return False
        return bool(self.boundary_live_mask(tile) >> index.id_of(var) & 1)

    def boundary_transfer(self, tile: Tile) -> Dict[str, float]:
        """``Transfer_t(v)`` for every variable live on *tile*'s boundary:
        the summed frequency of boundary edges carrying it (memoized; vars
        absent from the dict have zero transfer)."""
        self._tile_memos_current()
        cached = self._boundary_transfer.get(tile.tid)
        if cached is None:
            acc: Dict[int, float] = {}
            live_bits = self.liveness.live_on_edge_bits
            for src, dst in self.tree.boundary_edges(tile):
                freq = self.edge_freq(src, dst)
                if not freq:
                    continue
                for vid in iter_bits(live_bits(src, dst)):
                    acc[vid] = acc.get(vid, 0.0) + freq
            name_of = self.liveness.index.name_of
            cached = {name_of(vid): total for vid, total in acc.items()}
            self._boundary_transfer[tile.tid] = cached
        return cached

    def boundary_live_sets(self, tile: Tile) -> List[FrozenSet[str]]:
        return [
            self.liveness.live_on_edge(src, dst)
            for src, dst in self.tree.boundary_edges(tile)
        ]

    def is_local(self, tile: Tile, var: str) -> bool:
        """Paper: local iff all references are inside *tile* and the
        variable is not live along any of its entry or exit edges."""
        return self.refs_only_inside(tile, var) and not self.live_on_boundary(
            tile, var
        )

    # ------------------------------------------------------------------
    # flat (arena-backed) twins of the classification helpers
    # ------------------------------------------------------------------
    def tile_own_bmask(self, tile: Tile) -> int:
        """``tile.own_blocks()`` as a bitset over arena block ids."""
        self._tile_memos_current()
        mask = self._tile_own_bmask.get(tile.tid)
        if mask is None:
            block_id = self.arena.block_id
            mask = 0
            for label in tile.own_blocks():
                bid = block_id.get(label)
                if bid is not None:
                    mask |= 1 << bid
            self._tile_own_bmask[tile.tid] = mask
        return mask

    def tile_all_bmask(self, tile: Tile) -> int:
        """``tile.all_blocks`` as a bitset over arena block ids."""
        self._tile_memos_current()
        mask = self._tile_all_bmask.get(tile.tid)
        if mask is None:
            block_id = self.arena.block_id
            mask = 0
            for label in tile.all_blocks:
                bid = block_id.get(label)
                if bid is not None:
                    mask |= 1 << bid
            self._tile_all_bmask[tile.tid] = mask
        return mask

    def classify_locals_mask(self, tile: Tile, visible_mask: int) -> int:
        """Bitset of the members of *visible_mask* that are local to
        *tile* (the flat twin of :meth:`is_local`): all referencing
        blocks inside the subtree and not live on the tile boundary."""
        arena = self.arena
        all_bmask = self.tile_all_bmask(tile)
        not_boundary = ~self.boundary_live_mask(tile)
        out = 0
        m = visible_mask & not_boundary
        ref_bmask = arena.var_ref_bmask
        while m:
            low = m & -m
            rb = ref_bmask(low.bit_length() - 1)
            if rb and not rb & ~all_bmask:
                out |= low
            m ^= low
        return out

    def block_freq_array(self) -> List[float]:
        """Per-arena-block execution frequency (``block_freq`` by id)."""
        arr = self._block_freq_arr
        if arr is None:
            arr = [self.block_freq(label) for label in self.arena.labels]
            self._block_freq_arr = arr
        return arr

    def block_ref_counts_vid(self, bid: int) -> Dict[int, int]:
        """``Refs_b(v)`` for arena block *bid*, keyed by vid (defs + uses
        count; clobbers excluded, matching :meth:`block_ref_counts`)."""
        cached = self._ref_counts_vid.get(bid)
        if cached is None:
            arena = self.arena
            counts: Dict[int, int] = {}
            get = counts.get
            ids = arena.index._ids
            start = arena.block_start
            for i in range(start[bid], start[bid + 1]):
                instr = arena.instrs[i]
                for var in instr.defs:
                    vid = ids[var]
                    counts[vid] = get(vid, 0) + 1
                for var in instr.uses:
                    vid = ids[var]
                    counts[vid] = get(vid, 0) + 1
            self._ref_counts_vid[bid] = cached = counts
        return cached

    # ------------------------------------------------------------------
    # frequencies, resilient to fix-up blocks absent from a profile
    # ------------------------------------------------------------------
    def block_freq(self, label: str) -> float:
        freq = self.freq.block_freq.get(label)
        if freq is not None:
            return freq
        # A fix-up block subdivides one original edge and executes exactly
        # as often as that edge was traversed.
        edge = self.orig_edge.get(label)
        if edge is not None:
            return self.freq.edge_freq.get(edge, 0.0)
        return 0.0

    def edge_freq(self, src: str, dst: str) -> float:
        freq = self.freq.edge_freq.get((src, dst))
        if freq is not None:
            return freq
        for label in (src, dst):
            edge = self.orig_edge.get(label)
            if edge is not None:
                return self.freq.edge_freq.get(edge, 0.0)
        return 0.0


def build_context(
    fn: Function,
    machine: Machine,
    tree: TileTree,
    fixup: FixupStats,
    frequencies: Optional[FrequencyInfo],
    tracer: Optional[NullTracer] = None,
    budget: Optional[AllocationBudget] = None,
) -> FunctionContext:
    """Assemble a :class:`FunctionContext` (liveness and frequency included).

    The function is lowered into a :class:`~repro.perf.arena.FunctionArena`
    first; liveness runs over the flat tables and both phases consume the
    arena through the context's mask-based helpers.
    """
    arena = build_arena(fn, budget=budget)
    liveness = liveness_from_arena(arena)
    freq = frequencies or estimate_frequencies(fn)
    ctx = FunctionContext(
        fn=fn,
        machine=machine,
        tree=tree,
        liveness=liveness,
        freq=freq,
        fixup=fixup,
        orig_edge=dict(fixup.orig_edge),
        arena=arena,
        tracer=tracer if tracer is not None else NULL_TRACER,
        budget=budget,
    )
    return ctx
