"""Shared per-function context for both allocation phases.

Bundles the function, its tile tree, liveness, frequencies and reference
maps so the phases don't recompute or thread a dozen arguments around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.frequency import FrequencyInfo, estimate_frequencies
from repro.analysis.liveness import Liveness, compute_liveness
from repro.ir.function import Function
from repro.machine.target import Machine
from repro.perf.varindex import iter_bits
from repro.tiles.fixup import FixupStats
from repro.tiles.tile import Tile, TileTree
from repro.trace.tracer import NULL_TRACER, NullTracer


@dataclass
class FunctionContext:
    """Everything phase 1 / phase 2 need to know about one function."""

    fn: Function
    machine: Machine
    tree: TileTree
    liveness: Liveness
    freq: FrequencyInfo
    fixup: FixupStats
    #: var -> labels of blocks referencing it (defs or uses)
    ref_blocks: Dict[str, Set[str]] = field(default_factory=dict)
    #: var -> labels of blocks defining it
    def_blocks: Dict[str, Set[str]] = field(default_factory=dict)
    #: label of inserted fix-up block -> the original edge it subdivides
    orig_edge: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: structured-event recorder threaded through both phases; the shared
    #: :data:`~repro.trace.tracer.NULL_TRACER` keeps untraced runs free
    #: (call sites guard on ``tracer.enabled``).
    tracer: NullTracer = field(default=NULL_TRACER, repr=False)
    #: tile id -> OR of live-on-edge bitsets over the tile's boundary
    _boundary_live: Dict[int, int] = field(default_factory=dict, repr=False)
    #: tile id -> var -> summed boundary transfer frequency (section 4)
    _boundary_transfer: Dict[int, Dict[str, float]] = field(
        default_factory=dict, repr=False
    )
    #: label -> {var: defs+uses count} (the paper's ``Refs_b(v)``)
    _ref_counts: Dict[str, Dict[str, int]] = field(
        default_factory=dict, repr=False
    )
    #: var -> ``ref_blocks[var]`` as a sorted tuple (lazy memo)
    _ref_blocks_sorted: Dict[str, Tuple[str, ...]] = field(
        default_factory=dict, repr=False
    )
    _tile_memo_version: int = field(default=-1, repr=False)

    def __post_init__(self) -> None:
        for label, block in self.fn.blocks.items():
            for instr in block.instrs:
                for var in instr.uses:
                    self.ref_blocks.setdefault(var, set()).add(label)
                for var in instr.defs:
                    self.ref_blocks.setdefault(var, set()).add(label)
                    self.def_blocks.setdefault(var, set()).add(label)
                for var in instr.clobbers:
                    self.ref_blocks.setdefault(var, set()).add(label)
                    self.def_blocks.setdefault(var, set()).add(label)

    # ------------------------------------------------------------------
    # per-tile variable classification (paper section 3)
    # ------------------------------------------------------------------
    def referenced_in_blocks(self, labels) -> Set[str]:
        out: Set[str] = set()
        for label in labels:
            out |= self.fn.blocks[label].variables()
        return out

    def ref_blocks_sorted(self, var: str) -> Tuple[str, ...]:
        """``ref_blocks[var]`` in canonical (sorted) order.  Memoized: a
        global variable is visible in many tiles, and the metrics pass
        must walk its referencing blocks in a hash-independent order
        every time -- sort once per variable, not once per tile."""
        out = self._ref_blocks_sorted.get(var)
        if out is None:
            out = tuple(sorted(self.ref_blocks.get(var, ())))
            self._ref_blocks_sorted[var] = out
        return out

    def referenced_in_subtree(self, tile: Tile, var: str) -> bool:
        blocks = self.ref_blocks.get(var)
        if not blocks:
            return False
        return bool(blocks & tile.all_blocks)

    def refs_only_inside(self, tile: Tile, var: str) -> bool:
        blocks = self.ref_blocks.get(var, set())
        return bool(blocks) and blocks <= tile.all_blocks

    def defined_in_subtree(self, tile: Tile, var: str) -> bool:
        blocks = self.def_blocks.get(var)
        if not blocks:
            return False
        return bool(blocks & tile.all_blocks)

    def _tile_memos_current(self) -> None:
        version = getattr(self.fn, "cfg_version", None)
        if version != self._tile_memo_version:
            self._boundary_live.clear()
            self._boundary_transfer.clear()
            self._ref_counts.clear()
            self._tile_memo_version = version

    def block_ref_counts(self, label: str) -> Dict[str, int]:
        """``Refs_b(v)`` for every variable referenced in block *label*
        (memoized; one block scan instead of one per queried variable)."""
        cached = self._ref_counts.get(label)
        if cached is None:
            counts: Dict[str, int] = {}
            get = counts.get
            for instr in self.fn.blocks[label].instrs:
                for var in instr.defs:
                    counts[var] = get(var, 0) + 1
                for var in instr.uses:
                    counts[var] = get(var, 0) + 1
            self._ref_counts[label] = cached = counts
        return cached

    def boundary_live_mask(self, tile: Tile) -> int:
        """Bitset (over ``liveness.index``) of variables live along any of
        *tile*'s boundary edges (memoized per CFG version)."""
        self._tile_memos_current()
        mask = self._boundary_live.get(tile.tid)
        if mask is None:
            mask = 0
            live_bits = self.liveness.live_on_edge_bits
            for src, dst in self.tree.boundary_edges(tile):
                mask |= live_bits(src, dst)
            self._boundary_live[tile.tid] = mask
        return mask

    def live_on_boundary(self, tile: Tile, var: str) -> bool:
        index = self.liveness.index
        if var not in index:
            return False
        return bool(self.boundary_live_mask(tile) >> index.id_of(var) & 1)

    def boundary_transfer(self, tile: Tile) -> Dict[str, float]:
        """``Transfer_t(v)`` for every variable live on *tile*'s boundary:
        the summed frequency of boundary edges carrying it (memoized; vars
        absent from the dict have zero transfer)."""
        self._tile_memos_current()
        cached = self._boundary_transfer.get(tile.tid)
        if cached is None:
            acc: Dict[int, float] = {}
            live_bits = self.liveness.live_on_edge_bits
            for src, dst in self.tree.boundary_edges(tile):
                freq = self.edge_freq(src, dst)
                if not freq:
                    continue
                for vid in iter_bits(live_bits(src, dst)):
                    acc[vid] = acc.get(vid, 0.0) + freq
            name_of = self.liveness.index.name_of
            cached = {name_of(vid): total for vid, total in acc.items()}
            self._boundary_transfer[tile.tid] = cached
        return cached

    def boundary_live_sets(self, tile: Tile) -> List[FrozenSet[str]]:
        return [
            self.liveness.live_on_edge(src, dst)
            for src, dst in self.tree.boundary_edges(tile)
        ]

    def is_local(self, tile: Tile, var: str) -> bool:
        """Paper: local iff all references are inside *tile* and the
        variable is not live along any of its entry or exit edges."""
        return self.refs_only_inside(tile, var) and not self.live_on_boundary(
            tile, var
        )

    # ------------------------------------------------------------------
    # frequencies, resilient to fix-up blocks absent from a profile
    # ------------------------------------------------------------------
    def block_freq(self, label: str) -> float:
        freq = self.freq.block_freq.get(label)
        if freq is not None:
            return freq
        # A fix-up block subdivides one original edge and executes exactly
        # as often as that edge was traversed.
        edge = self.orig_edge.get(label)
        if edge is not None:
            return self.freq.edge_freq.get(edge, 0.0)
        return 0.0

    def edge_freq(self, src: str, dst: str) -> float:
        freq = self.freq.edge_freq.get((src, dst))
        if freq is not None:
            return freq
        for label in (src, dst):
            edge = self.orig_edge.get(label)
            if edge is not None:
                return self.freq.edge_freq.get(edge, 0.0)
        return 0.0


def build_context(
    fn: Function,
    machine: Machine,
    tree: TileTree,
    fixup: FixupStats,
    frequencies: Optional[FrequencyInfo],
    tracer: Optional[NullTracer] = None,
) -> FunctionContext:
    """Assemble a :class:`FunctionContext` (liveness and frequency included)."""
    liveness = compute_liveness(fn)
    freq = frequencies or estimate_frequencies(fn)
    ctx = FunctionContext(
        fn=fn,
        machine=machine,
        tree=tree,
        liveness=liveness,
        freq=freq,
        fixup=fixup,
        orig_edge=dict(fixup.orig_edge),
        tracer=tracer if tracer is not None else NULL_TRACER,
    )
    return ctx
