"""Dependency-driven scheduling of tile allocation (paper section 6).

"Sibling subtrees can be processed concurrently in both the bottom-up and
top-down passes."  The previous driver exploited this with one thread-pool
barrier per tree level: all tiles at depth *d* had to finish before any tile
at depth *d-1* started, even though a parent only waits on its own children.
For unbalanced trees (one deep loop nest next to many shallow conditionals)
the deepest chain serializes everything at its level boundaries.

The scheduler here tracks readiness per tile instead:

* **phase 1** -- a tile becomes ready the moment its last child finishes;
* **phase 2** -- a tile becomes ready the moment its parent finishes.

Workers only compute; the coordinator thread performs every write to the
shared ``allocations`` dict *before* submitting any tile that could read it,
so workers never observe a partially-updated map.  Because each tile's
computation depends only on its children's (phase 1) or parent's (phase 2)
finished results -- never on scheduling order -- the outcome is identical to
the sequential postorder/preorder passes; the returned dict is rebuilt in
postorder so even its iteration order matches the sequential driver.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Callable, Dict, List, Optional

from repro.core.config import HierarchicalConfig
from repro.core.info import FunctionContext
from repro.core.phase1 import allocate_tile
from repro.core.phase2 import bind_tile
from repro.core.summary import TileAllocation
from repro.tiles.tile import Tile


def resolve_workers(config: HierarchicalConfig) -> Optional[int]:
    """Worker count for the pools: ``config.parallel_workers``, or ``None``
    to accept :class:`ThreadPoolExecutor`'s default sizing."""
    workers = getattr(config, "parallel_workers", None)
    if workers is not None and workers < 1:
        raise ValueError(f"parallel_workers must be >= 1, got {workers}")
    return workers


def run_phase1_scheduled(
    ctx: FunctionContext, config: HierarchicalConfig
) -> Dict[int, TileAllocation]:
    """Bottom-up coloring with per-tile readiness (children-complete)."""
    tree = ctx.tree
    tiles: List[Tile] = list(tree.postorder())
    pending_children = {tile.tid: len(tile.children) for tile in tiles}
    allocations: Dict[int, TileAllocation] = {}

    with ThreadPoolExecutor(max_workers=resolve_workers(config)) as pool:
        futures = {
            pool.submit(allocate_tile, ctx, config, tile, allocations): tile
            for tile in tiles
            if not tile.children
        }
        while futures:
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            ready: List[Tile] = []
            for future in done:
                tile = futures.pop(future)
                # .result() re-raises worker exceptions here, in the
                # coordinator, cancelling the remaining futures on exit.
                allocations[tile.tid] = future.result()
                parent = tile.parent
                if parent is not None:
                    pending_children[parent.tid] -= 1
                    if pending_children[parent.tid] == 0:
                        ready.append(parent)
            for tile in ready:
                futures[
                    pool.submit(allocate_tile, ctx, config, tile, allocations)
                ] = tile

    # Deterministic result: same key order as the sequential postorder pass.
    return {tile.tid: allocations[tile.tid] for tile in tree.postorder()}


def run_phase2_scheduled(
    ctx: FunctionContext,
    config: HierarchicalConfig,
    allocations: Dict[int, TileAllocation],
) -> None:
    """Top-down binding with per-tile readiness (parent-complete)."""
    tree = ctx.tree

    with ThreadPoolExecutor(max_workers=resolve_workers(config)) as pool:
        futures = {
            pool.submit(bind_tile, ctx, config, tree.root, allocations): tree.root
        }
        while futures:
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            ready: List[Tile] = []
            for future in done:
                tile = futures.pop(future)
                future.result()
                ready.extend(tile.children)
            for child in ready:
                futures[
                    pool.submit(bind_tile, ctx, config, child, allocations)
                ] = child
