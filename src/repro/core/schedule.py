"""Dependency-driven scheduling of tile allocation (paper section 6).

"Sibling subtrees can be processed concurrently in both the bottom-up and
top-down passes."  The previous driver exploited this with one thread-pool
barrier per tree level: all tiles at depth *d* had to finish before any tile
at depth *d-1* started, even though a parent only waits on its own children.
For unbalanced trees (one deep loop nest next to many shallow conditionals)
the deepest chain serializes everything at its level boundaries.

The scheduler here tracks readiness per tile instead:

* **phase 1** -- a tile becomes ready the moment its last child finishes;
* **phase 2** -- a tile becomes ready the moment its parent finishes.

Workers only compute; the coordinator thread performs every write to the
shared ``allocations`` dict *before* submitting any tile that could read it,
so workers never observe a partially-updated map.  Because each tile's
computation depends only on its children's (phase 1) or parent's (phase 2)
finished results -- never on scheduling order -- the outcome is identical to
the sequential postorder/preorder passes; the returned dict is rebuilt in
postorder so even its iteration order matches the sequential driver.

With tracing enabled each scheduled tile task additionally emits a
:class:`~repro.trace.events.StageTiming` (category ``"tile"``) carrying the
worker-thread name, which the Chrome trace sink lays out as one row per
worker -- the ``chrome://tracing`` view of scheduler utilisation.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Callable, Dict, List, Optional

from repro.core.config import HierarchicalConfig
from repro.core.info import FunctionContext
from repro.core.phase1 import allocate_tile
from repro.core.phase2 import bind_tile
from repro.core.summary import TileAllocation
from repro.tiles.tile import Tile
from repro.trace.events import StageTiming


def _traced_task(task, ctx: FunctionContext, phase: str):
    """Wrap a tile task so each run emits a per-tile ``StageTiming`` with
    its worker-thread name; returns *task* unchanged when tracing is off
    (the hot path pays nothing)."""
    tracer = ctx.tracer
    if not tracer.enabled:
        return task

    def run(ctx, config, tile, allocations):
        start = time.perf_counter()
        try:
            return task(ctx, config, tile, allocations)
        finally:
            tracer.emit(StageTiming(
                name=f"{phase}:tile{tile.tid}",
                category="tile",
                start=start,
                duration=time.perf_counter() - start,
                thread=threading.current_thread().name,
                tile_id=tile.tid,
            ))

    return run


#: Auto-fallback floor: below this many tiles the thread scheduler cannot
#: recover its submit/wait/lock overhead on CPython (tile coloring is pure
#: Python, so the GIL serializes the actual work; measured in bench E16's
#: ``drivers`` table, the dependency-driven pool *loses* 10-20% to the
#: sequential driver on every 100-200-tile bench workload).
PARALLEL_AUTO_MIN_TILES = 256


_default_pool_width: Optional[int] = None


def default_pool_width() -> int:
    """``ThreadPoolExecutor``'s default ``max_workers``, read off a
    throwaway executor (no threads are spawned before the first submit)
    so the auto-fallback threshold tracks whatever the running stdlib
    actually does rather than a mirrored copy of its sizing formula."""
    global _default_pool_width
    if _default_pool_width is None:
        pool = ThreadPoolExecutor()
        try:
            width = getattr(pool, "_max_workers", None)
        finally:
            pool.shutdown(wait=False)
        if not isinstance(width, int) or width < 1:
            # Private attribute gone: fall back to the documented formula.
            width = min(32, (os.cpu_count() or 1) + 4)
        _default_pool_width = width
    return _default_pool_width


def resolve_workers(config: HierarchicalConfig) -> Optional[int]:
    """Worker count for the pools: ``config.parallel_workers``, or ``None``
    to accept :class:`ThreadPoolExecutor`'s default sizing."""
    workers = getattr(config, "parallel_workers", None)
    if workers is not None and workers < 1:
        raise ValueError(f"parallel_workers must be >= 1, got {workers}")
    return workers


def effective_min_tiles(config: HierarchicalConfig) -> int:
    """The tile-count threshold below which ``parallel=True`` still runs
    the sequential driver.

    ``config.parallel_min_tiles`` when set; otherwise
    ``max(2 * workers, PARALLEL_AUTO_MIN_TILES)`` -- two tiles per worker
    is the minimum width at which the pool can even be busy, and the auto
    floor covers the measured regression range (the scheduler only pays
    off on trees large enough that coordination is a rounding error).
    """
    threshold = getattr(config, "parallel_min_tiles", None)
    if threshold is not None:
        return threshold
    workers = resolve_workers(config)
    if workers is None:
        workers = default_pool_width()
    return max(2 * workers, PARALLEL_AUTO_MIN_TILES)


def should_parallelize(config: HierarchicalConfig, tile_count: int) -> bool:
    """Whether the allocator should use the dependency-driven scheduler
    for a tree of *tile_count* tiles (output is identical either way)."""
    if not getattr(config, "parallel", False):
        return False
    return tile_count >= effective_min_tiles(config)


def run_phase1_scheduled(
    ctx: FunctionContext, config: HierarchicalConfig
) -> Dict[int, TileAllocation]:
    """Bottom-up coloring with per-tile readiness (children-complete)."""
    tree = ctx.tree
    tiles: List[Tile] = list(tree.postorder())
    pending_children = {tile.tid: len(tile.children) for tile in tiles}
    allocations: Dict[int, TileAllocation] = {}
    task = _traced_task(allocate_tile, ctx, "phase1")

    with ThreadPoolExecutor(max_workers=resolve_workers(config)) as pool:
        futures = {
            pool.submit(task, ctx, config, tile, allocations): tile
            for tile in tiles
            if not tile.children
        }
        while futures:
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            ready: List[Tile] = []
            for future in done:
                tile = futures.pop(future)
                # .result() re-raises worker exceptions here, in the
                # coordinator, cancelling the remaining futures on exit.
                allocations[tile.tid] = future.result()
                parent = tile.parent
                if parent is not None:
                    pending_children[parent.tid] -= 1
                    if pending_children[parent.tid] == 0:
                        ready.append(parent)
            for tile in ready:
                futures[
                    pool.submit(task, ctx, config, tile, allocations)
                ] = tile

    # Deterministic result: same key order as the sequential postorder pass.
    return {tile.tid: allocations[tile.tid] for tile in tree.postorder()}


def run_phase2_scheduled(
    ctx: FunctionContext,
    config: HierarchicalConfig,
    allocations: Dict[int, TileAllocation],
) -> None:
    """Top-down binding with per-tile readiness (parent-complete)."""
    tree = ctx.tree
    task = _traced_task(bind_tile, ctx, "phase2")

    with ThreadPoolExecutor(max_workers=resolve_workers(config)) as pool:
        futures = {
            pool.submit(task, ctx, config, tree.root, allocations): tree.root
        }
        while futures:
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            ready: List[Tile] = []
            for future in done:
                tile = futures.pop(future)
                future.result()
                ready.extend(tile.children)
            for child in ready:
                futures[
                    pool.submit(task, ctx, config, child, allocations)
                ] = child
