"""The hierarchical register allocator (facade).

Ties together tile-tree construction, the bottom-up coloring phase, the
top-down binding phase, and spill-code insertion, producing the same
:class:`~repro.allocators.base.AllocationOutcome` interface as the baseline
allocators.  Sibling subtrees are independent in both phases and can be
processed concurrently (section 6: "sibling subtrees can be processed
concurrently in both the bottom-up and top-down passes").
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from repro.allocators.base import (
    AllocationOutcome,
    Allocator,
    AllocStats,
    record_spill_blocks,
)
from repro.core.budget import BudgetLimits
from repro.core.config import HierarchicalConfig
from repro.core.incremental import (
    TileCacheStore,
    run_phase1_incremental,
    run_phase2_incremental,
    tile_invalidation_key,
)
from repro.core.info import FunctionContext, build_context
from repro.core.phase1 import allocate_tile, run_phase1
from repro.core.phase2 import bind_tile, run_phase2
from repro.core.schedule import (
    resolve_workers,
    run_phase1_scheduled,
    run_phase2_scheduled,
    should_parallelize,
)
from repro.core.spill_code import rewrite_program
from repro.core.summary import MEM, TileAllocation
from repro.ir.function import Function
from repro.machine.rewrite import check_physical
from repro.machine.target import Machine
from repro.perf.timers import StageTimers
from repro.tiles.construction import TileTreeOptions, build_tile_tree_detailed
from repro.tiles.validate import validate_tile_tree
from repro.trace.tracer import NULL_TRACER, NullTracer


class HierarchicalAllocator(Allocator):
    """Callahan-Koblenz hierarchical graph-coloring allocation."""

    name = "hierarchical"

    def __init__(
        self,
        config: Optional[HierarchicalConfig] = None,
        tracer: Optional[NullTracer] = None,
        tile_store: Optional[TileCacheStore] = None,
        budget_limits: Optional[BudgetLimits] = None,
    ) -> None:
        self.config = config or HierarchicalConfig()
        #: resource governor (:mod:`repro.core.budget`).  ``None`` or an
        #: unlimited :class:`BudgetLimits` keeps the zero-cost fast path;
        #: otherwise each :meth:`allocate` call mints a fresh
        #: :class:`~repro.core.budget.AllocationBudget` so fuel spend is a
        #: pure function of the input, never of allocator history.
        self.budget_limits = budget_limits
        #: structured-event recorder (see :mod:`repro.trace`); the shared
        #: null tracer by default, so untraced allocation pays only
        #: ``tracer.enabled`` checks.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: per-tile memoization store (:mod:`repro.core.incremental`);
        #: ``None`` (the default) allocates cold.  With a store attached,
        #: re-allocating an edited function reuses every clean subtree's
        #: phase-1 summary and phase-2 binding and recomputes only dirty
        #: tiles -- output is bit-identical to a cold run.
        self.tile_store = tile_store
        #: reuse counters of the most recent :meth:`allocate` call when a
        #: store was attached (also published in ``stats.extra``).
        self.last_tile_cache: Optional[Dict[str, int]] = None
        #: populated by :meth:`allocate` for introspection by examples,
        #: tests and benches.
        self.last_context: Optional[FunctionContext] = None
        self.last_allocations: Optional[Dict[int, TileAllocation]] = None
        #: fuel accounting of the most recent budgeted allocate() call
        #: (``AllocationBudget.snapshot()``), also published in
        #: ``stats.extra["budget"]``.
        self.last_budget: Optional[Dict] = None

    def allocate(self, fn: Function, machine: Machine) -> AllocationOutcome:
        config = self.config
        tracer = self.tracer
        budget = (
            self.budget_limits.start() if self.budget_limits is not None else None
        )
        timers = StageTimers()
        with timers.stage("tile_tree", tracer):
            work = fn.clone()
            build = build_tile_tree_detailed(
                work,
                TileTreeOptions(
                    conditional_tiles=config.conditional_tiles,
                    max_tile_width=config.max_tile_width,
                ),
            )
            validate_tile_tree(build.tree)
            # Normalize the process-global ids embedded in derived names
            # (summary vars ``ts:{tid}:...``, pseudo colors ``t{tid}.p{i}``,
            # operand temps ``tmp:{uid}:...``): preorder tile ids and
            # ordinal instruction uids make allocation a pure function of
            # (text, config, machine) instead of process history -- the
            # property the per-tile content-addressed cache keys on.
            build.tree.renumber()
            work.renumber_uids()
            if budget is not None:
                # Tile-tree depth is fuel too: pathological nesting burns
                # budget before either phase walks the tree.
                budget.charge(len(build.tree) + build.tree.height(), "tiles")
        with timers.stage("context", tracer):
            ctx = build_context(
                work, machine, build.tree, build.fixup, config.frequencies,
                tracer=tracer, budget=budget,
            )

        # Small trees fall back to the sequential driver even with
        # ``parallel=True``: the thread pool cannot recover its overhead
        # under the GIL (see ``schedule.should_parallelize``).  Output is
        # identical either way -- only the schedule differs.  The
        # incremental drivers are sequential-only (the dirty chain is a
        # dependency chain anyway); with a store attached they take
        # precedence over the thread scheduler.
        store = self.tile_store
        state = None
        use_scheduler = store is None and should_parallelize(
            config, len(build.tree)
        )
        if store is not None:
            invalidation = tile_invalidation_key(config, machine)
            with timers.stage("phase1", tracer):
                state = run_phase1_incremental(ctx, config, store, invalidation)
                allocations = state.allocations
            with timers.stage("phase2", tracer):
                run_phase2_incremental(ctx, config, store, state)
        elif use_scheduler:
            with timers.stage("phase1", tracer):
                allocations = run_phase1_scheduled(ctx, config)
            with timers.stage("phase2", tracer):
                run_phase2_scheduled(ctx, config, allocations)
        else:
            with timers.stage("phase1", tracer):
                allocations = run_phase1(ctx, config)
            with timers.stage("phase2", tracer):
                run_phase2(ctx, config, allocations)

        with timers.stage("rewrite", tracer):
            if ctx.arena is not None:
                # The rewrite mutates ``work`` in place; the arena is a
                # snapshot of the pre-rewrite function and must not serve
                # per-instruction scans past this point.
                ctx.arena.retire()
            out = rewrite_program(ctx, config, allocations)
            check_physical(out, machine.num_registers)

        stats = self._gather_stats(ctx, allocations, build)
        stats.extra["stage_times"] = timers.as_dict()
        stats.extra["stage_counts"] = timers.counts()
        self.last_budget = None
        if budget is not None:
            self.last_budget = budget.snapshot()
            stats.extra["budget"] = self.last_budget
        stats.extra["driver"] = (
            "incremental"
            if store is not None
            else "dep_parallel" if use_scheduler else "sequential"
        )
        self.last_tile_cache = None
        if state is not None:
            self.last_tile_cache = state.counters(ctx.tree)
            stats.extra["tile_cache"] = self.last_tile_cache
            stats.extra["tile_fingerprints"] = tuple(
                state.fingerprints[t.tid] for t in ctx.tree.postorder()
            )
        record_spill_blocks(out, stats)
        self.last_context = ctx
        self.last_allocations = allocations
        return AllocationOutcome(out, machine, stats)

    def _gather_stats(
        self,
        ctx: FunctionContext,
        allocations: Dict[int, TileAllocation],
        build,
    ) -> AllocStats:
        stats = AllocStats()
        stats.iterations = 1
        recolor = 0
        for alloc in allocations.values():
            if alloc.graph_counts is not None:
                # A memoized phase-2 overlay was applied: the live graph
                # is the pristine phase-1 version, the recorded counts
                # are the post-phase-2 ones a cold run would report.
                nodes, edges = alloc.graph_counts
            else:
                nodes = len(alloc.graph)
                edges = alloc.graph.edge_count()
            stats.observe_graph(nodes, edges)
            recolor += max(alloc.recolor_rounds - 1, 0)
            for var in alloc.spilled:
                if not var.startswith(("ts:", "tmp:")):
                    stats.spilled_vars.add(var)
        tree = ctx.tree
        stats.extra.update(
            {
                "tile_count": len(tree),
                "tree_height": tree.height(),
                "breadth_profile": tree.breadth_profile(),
                "fixup_blocks": build.fixup.total,
                "recolor_rounds": recolor,
                "allocations": allocations,
                "context": ctx,
            }
        )
        return stats


def _tiles_by_depth(ctx: FunctionContext) -> Dict[int, List]:
    levels: Dict[int, List] = {}
    for tile in ctx.tree.preorder():
        levels.setdefault(tile.depth(), []).append(tile)
    return levels


def _run_phase1_parallel(
    ctx: FunctionContext, config: HierarchicalConfig
) -> Dict[int, TileAllocation]:
    """Phase 1 with sibling tiles colored concurrently, deepest level first.

    Level-barrier driver, kept for benchmarking against the
    dependency-driven scheduler (:mod:`repro.core.schedule`), which the
    allocator now uses: all tiles at one depth are mutually independent
    (they are never ancestors of one another), and every child lies
    strictly deeper than its parent, so level-by-level scheduling respects
    the postorder dependency.  Results are identical to the sequential
    pass.  The shared dicts are passed to the worker explicitly rather than
    closed over, so the callable is self-contained.
    """
    allocations: Dict[int, TileAllocation] = {}
    levels = _tiles_by_depth(ctx)
    with ThreadPoolExecutor(max_workers=resolve_workers(config)) as pool:
        for depth in sorted(levels, reverse=True):
            tiles = levels[depth]
            results = list(
                pool.map(
                    allocate_tile,
                    [ctx] * len(tiles),
                    [config] * len(tiles),
                    tiles,
                    [allocations] * len(tiles),
                )
            )
            for tile, alloc in zip(tiles, results):
                allocations[tile.tid] = alloc
    return allocations


def _run_phase2_parallel(
    ctx: FunctionContext,
    config: HierarchicalConfig,
    allocations: Dict[int, TileAllocation],
) -> None:
    """Phase 2 with sibling tiles bound concurrently, shallowest first
    (level-barrier driver, kept for benchmarking -- see
    :func:`_run_phase1_parallel`)."""
    levels = _tiles_by_depth(ctx)
    with ThreadPoolExecutor(max_workers=resolve_workers(config)) as pool:
        for depth in sorted(levels):
            tiles = levels[depth]
            list(
                pool.map(
                    bind_tile,
                    [ctx] * len(tiles),
                    [config] * len(tiles),
                    tiles,
                    [allocations] * len(tiles),
                )
            )
