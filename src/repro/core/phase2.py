"""Phase 2: top-down binding of pseudo registers to physical registers.

Visiting tiles in preorder, each tile recolors its interference graph with
*physical* registers:

* nodes whose phase-1 color has a tile summary variable are preferenced to
  the physical register the parent bound that summary variable to;
* globals are preferenced to their parent binding;
* parent-register variables live across the tile but absent from its graph
  are added as *intruders* conflicting with every node ("we make these
  variables conflict with every other variable in the conflict graph and
  preference them to the physical register they received in the parent");
* the demotion rule runs first: a global in a register here but in memory
  in the parent with ``weight <= transfer`` flips to memory ("otherwise we
  change the allocation of v in t to reflect that it should be in memory").

Spill/transfer code between the tile and its parent is planned later by
:mod:`repro.core.spill_code` from the recorded per-tile locations.

Invariants callers rely on:

* :func:`bind_tile` requires the parent's ``phys`` map to be complete
  (preorder discipline); the parallel scheduler submits a tile only after
  its parent finishes.
* after ``bind_tile`` returns, ``alloc.phys`` maps *every* node the
  rewrite stage can encounter in the tile -- visible variables, operand
  temporaries, intruders -- to a physical register or :data:`MEM`.
* phase-1 spill decisions are never undone: a variable spilled bottom-up
  stays in ``pre_spilled`` here ("spill decisions are never undone").
* tracing via ``ctx.tracer`` is observational only.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.config import HierarchicalConfig
from repro.core.info import FunctionContext
from repro.core.summary import MEM, TileAllocation, is_summary_var, is_temp_node
from repro.core.tilecolor import TileColoringSpec, color_tile
from repro.ir.instructions import is_phys
from repro.tiles.tile import Tile
from repro.core.metrics import snapshot_candidates
from repro.trace.events import PseudoBound, SpillDecision, TileColored


def run_phase2(
    ctx: FunctionContext,
    config: HierarchicalConfig,
    allocations: Dict[int, TileAllocation],
) -> None:
    """Bind every tile top-down; fills ``alloc.phys`` per tile."""
    budget = ctx.budget
    for tile in ctx.tree.preorder():
        if budget is not None:
            budget.charge(1, "tiles")
        bind_tile(ctx, config, tile, allocations)


def bind_tile(
    ctx: FunctionContext,
    config: HierarchicalConfig,
    tile: Tile,
    allocations: Dict[int, TileAllocation],
) -> None:
    """Phase-2 processing of one tile (parent must already be bound)."""
    alloc = allocations[tile.tid]
    parent_alloc: Optional[TileAllocation] = (
        allocations[tile.parent.tid] if tile.parent is not None else None
    )

    def parent_loc(var: str) -> Optional[str]:
        if parent_alloc is None:
            return None
        return parent_alloc.phys.get(var, MEM)

    # ------------------------------------------------------------------
    # demotion pre-pass (spill decisions are never undone, so these join
    # the spilled set before coloring and get operand temporaries)
    # ------------------------------------------------------------------
    tracer = ctx.tracer
    pre_spilled: Set[str] = set(alloc.spilled)
    if parent_alloc is not None and config.demotion:
        for var in sorted(alloc.globals_):
            if var in pre_spilled or var not in alloc.assignment:
                continue
            if parent_loc(var) == MEM:
                weight = alloc.metrics.weight.get(var, 0.0)
                transfer = alloc.metrics.transfer.get(var, 0.0)
                if weight <= transfer:
                    pre_spilled.add(var)
                    if tracer.enabled:
                        tracer.emit(SpillDecision(
                            tile_id=tile.tid, phase="phase2", var=var,
                            reason="demotion",
                            weight=weight, transfer=transfer,
                        ))

    # ------------------------------------------------------------------
    # preferences from the parent's bindings
    # ------------------------------------------------------------------
    local_prefs: Dict[str, str] = {}
    if config.preferencing:
        local_prefs.update(alloc.local_prefs_all)
    alloc.summary_phys = {}
    for color, summary in alloc.summary_vars.items():
        binding = parent_loc(summary)
        alloc.summary_phys[summary] = binding if binding is not None else MEM
        if tracer.enabled:
            tracer.emit(PseudoBound(
                tile_id=tile.tid, pseudo=color, summary=summary,
                binding=alloc.summary_phys[summary],
            ))

    globals_ = alloc.globals_
    ts_get = alloc.ts_map.get
    summary_phys_get = alloc.summary_phys.get
    for node in alloc.graph.nodes():
        if node in pre_spilled or is_phys(node):
            continue
        if parent_alloc is not None and node in globals_:
            binding = parent_loc(node)
            if binding is not None and binding != MEM:
                local_prefs[node] = binding
            continue
        summary = ts_get(node)
        if summary is not None:
            binding = summary_phys_get(summary)
            if binding is not None and binding != MEM:
                local_prefs[node] = binding

    # Sorted: the precolored map seeds the coloring engine's color-reuse
    # list, whose order is outcome-relevant.
    precolored = {v: v for v in sorted(alloc.graph.nodes()) if is_phys(v)}

    # ------------------------------------------------------------------
    # intruders: parent-register variables live across this tile that the
    # bottom-up pass ignored (unreferenced in the subtree)
    # ------------------------------------------------------------------
    priorities: Dict[str, float] = dict(alloc.metrics.weight)
    if parent_alloc is not None:
        boundary_edges = ctx.tree.boundary_edges(tile)
        boundary_live = ctx.liveness.index.frozenset_of(
            ctx.boundary_live_mask(tile)
        )
        graph = alloc.graph
        for var in sorted(boundary_live):
            if var in graph:
                continue
            binding = parent_loc(var)
            if binding is None or binding == MEM:
                continue
            # Conflicts with every existing node (including intruders
            # inserted on earlier iterations), in bulk.
            graph.add_conflicts_all(var)
            local_prefs[var] = binding
            # Spilling an intruder costs a store/load around the tile.
            transfer = sum(
                ctx.edge_freq(src, dst)
                for src, dst in boundary_edges
                if var in ctx.liveness.live_on_edge(src, dst)
            )
            priorities[var] = transfer
            alloc.metrics.transfer.setdefault(var, transfer)
            alloc.metrics.weight.setdefault(var, transfer)

    # ------------------------------------------------------------------
    # physical coloring
    # ------------------------------------------------------------------
    reserve = config.spill_temp_strategy == "reserve"
    color_order = list(ctx.machine.registers)
    if reserve:
        color_order = color_order[: -len(alloc.reserved_regs)] if alloc.reserved_regs else color_order
    spec = TileColoringSpec(
        k=len(color_order),
        color_order=color_order,
        priorities=priorities,
        precolored=precolored,
        local_prefs=local_prefs,
        pref_pairs=list(alloc.pref_pairs_all) if config.preferencing else [],
        boundary=set(),
        pre_spilled=pre_spilled,
        make_temps=not reserve,
        spill_heuristic=config.spill_heuristic,
        phase="phase2",
        transfer_costs=alloc.metrics.transfer,
    )
    outcome = color_tile(ctx, tile, alloc.graph, spec)

    alloc.temp_nodes = outcome.temp_nodes
    alloc.recolor_rounds += outcome.rounds - 1
    phys: Dict[str, str] = {}
    for node, color in outcome.assignment.items():
        phys[node] = color
    for node in outcome.spilled:
        phys[node] = MEM
    alloc.phys = phys
    if tracer.enabled:
        tracer.emit(TileColored(
            tile_id=tile.tid, phase="phase2", kind=tile.kind,
            blocks=tuple(sorted(tile.own_blocks())),
            rounds=outcome.rounds,
            assignment={n: c for n, c in phys.items() if c != MEM},
            spilled=tuple(sorted(n for n, c in phys.items() if c == MEM)),
            used_colors=tuple(outcome.used_colors),
            candidates=snapshot_candidates(
                alloc.metrics, sorted(alloc.metrics.weight)
            ),
        ))
