"""Phase 1: bottom-up tile coloring (paper section 3, Figure 2).

Each tile, visited in postorder:

1. classifies its visible variables into locals and globals,
2. builds the tile interference graph -- conflicts from its own blocks,
   the children's conflict summaries, and boundary liveness,
3. adds preferences (copies in its own blocks plus the children's
   propagated preferences),
4. computes the section-4 metrics and pre-spills variables "not worth a
   register",
5. colors the graph with pseudo registers (physical where required),
   re-coloring with operand temporaries as needed, and
6. condenses its local allocation into tile summary variables and the
   conflict/preference summary for its parent.

Invariants callers rely on:

* :func:`allocate_tile` requires every child's :class:`TileAllocation` to
  be present in *allocations* (postorder discipline); the parallel
  scheduler preserves this by submitting a tile only after its last child
  finishes.
* a tile's returned allocation is complete and immutable from the
  parent's perspective: summary variables, conflict summaries and
  finalized ``Reg``/``Mem`` metrics never change once returned.
* every hash-order-sensitive walk (visible set, conflict summaries,
  ref-block sums) runs in canonical sorted order -- the bit-determinism
  guarantee (``repro.determinism``) rests on this.
* tracing via ``ctx.tracer`` is observational; the event stream never
  feeds back into any decision.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import HierarchicalConfig
from repro.core.info import FunctionContext
from repro.core.metrics import (
    compute_pre_metrics,
    finalize_metrics,
    not_worth_a_register,
    snapshot_candidates,
)
from repro.core.summary import (
    TileAllocation,
    is_summary_var,
    is_temp_node,
    summary_var_name,
)
from repro.core.tilecolor import TileColoringSpec, color_tile
from repro.graph.interference import InterferenceGraph, build_interference
from repro.ir.instructions import Opcode, is_phys
from repro.tiles.tile import Tile
from repro.trace.events import SpillDecision, TileColored


def run_phase1(
    ctx: FunctionContext, config: HierarchicalConfig
) -> Dict[int, TileAllocation]:
    """Allocate every tile bottom-up; returns allocations keyed by tile id."""
    allocations: Dict[int, TileAllocation] = {}
    budget = ctx.budget
    for tile in ctx.tree.postorder():
        if budget is not None:
            budget.charge(1, "tiles")
        allocations[tile.tid] = allocate_tile(ctx, config, tile, allocations)
    return allocations


def allocate_tile(
    ctx: FunctionContext,
    config: HierarchicalConfig,
    tile: Tile,
    allocations: Dict[int, TileAllocation],
) -> TileAllocation:
    """Process one tile (children must already be in *allocations*)."""
    alloc = TileAllocation(tile_id=tile.tid)
    own = tile.own_blocks()
    children = tile.children

    # ------------------------------------------------------------------
    # visibility and locality
    # ------------------------------------------------------------------
    visible: Set[str] = set(ctx.referenced_in_blocks(own))
    for child in children:
        visible |= allocations[child.tid].globals_
    alloc.locals_ = {v for v in visible if ctx.is_local(tile, v)}
    alloc.globals_ = visible - alloc.locals_
    alloc.boundary_globals = {
        v for v in alloc.globals_ if ctx.live_on_boundary(tile, v)
    }

    # ------------------------------------------------------------------
    # interference graph
    # ------------------------------------------------------------------
    graph = build_interference(
        ctx.fn, ctx.liveness, labels=sorted(own), relevant=visible,
        budget=ctx.budget,
    )
    # Sorted once, reused below: node insertion order is the canonical
    # order for every downstream dict walk (subgraphs, phase-2
    # precoloring), so it must not inherit the hash-salted iteration
    # order of ``visible``.
    ordered_visible = sorted(visible)
    for var in ordered_visible:
        graph.add_node(var)

    # Boundary-liveness cliques: variables simultaneously live at a tile
    # boundary conflict even when neither is defined in blocks(t).  (The
    # paper's def-point construction is complete for whole programs; per
    # tile it needs this seeding -- see DESIGN.md section 4.)  Boundary
    # edges sharing a destination carry identical live sets; clique
    # insertion is idempotent, so duplicates are skipped up front.
    for live in dict.fromkeys(ctx.boundary_live_sets(tile)):
        graph.add_clique(live & visible)

    for child in children:
        child_alloc = allocations[child.tid]
        for summary in child_alloc.summary_vars.values():
            graph.add_node(summary)
        # The conflict summaries are sets of pairs -- iterate them sorted
        # so edge (and therefore node) insertion order is canonical.
        for g, summary in sorted(child_alloc.conflict_global_summary):
            graph.add_edge(g, summary)
        for g1, g2 in sorted(child_alloc.conflict_global_global):
            graph.add_edge(g1, g2)
        for s1, s2 in sorted(child_alloc.conflict_summary_summary):
            graph.add_edge(s1, s2)

        child_summaries = list(child_alloc.summary_vars.values())
        child_boundary_live: Set[str] = set()
        for live in dict.fromkeys(ctx.boundary_live_sets(child)):
            child_boundary_live |= live
            graph.add_clique(live & visible)
        # Variables live across the child without a register there conflict
        # with all of the child's summary variables (conflict source 3).
        for var in sorted(child_boundary_live):
            if var in visible and var not in child_alloc.global_regs:
                for summary in child_summaries:
                    graph.add_edge(var, summary)

    # ------------------------------------------------------------------
    # preferences
    # ------------------------------------------------------------------
    local_prefs: Dict[str, str] = {}
    pref_pairs: List[Tuple[str, str]] = []
    if config.preferencing:
        pref_pairs.extend(_copy_pairs(ctx, own, visible))
        for child in children:
            child_alloc = allocations[child.tid]
            for var, reg in child_alloc.phys_prefs_up.items():
                local_prefs.setdefault(var, reg)
            pref_pairs.extend(child_alloc.pref_pairs_up)
            pref_pairs.extend(child_alloc.summary_prefs_up)

    # Variables that *are* physical register names carry a hard linkage
    # requirement (they were produced by call lowering).  Canonical order:
    # the precolored map seeds the coloring engine's color-reuse list.
    precolored = {v: v for v in ordered_visible if is_phys(v)}

    # ------------------------------------------------------------------
    # metrics and forced spills
    # ------------------------------------------------------------------
    tracer = ctx.tracer
    alloc.metrics = compute_pre_metrics(
        ctx, tile, ordered_visible, allocations, children
    )
    for var in ordered_visible:
        if var in precolored:
            continue
        if not_worth_a_register(alloc.metrics, var):
            alloc.forced_memory.add(var)
            if tracer.enabled:
                tracer.emit(SpillDecision(
                    tile_id=tile.tid, phase="phase1", var=var,
                    reason="not_worth_a_register",
                    weight=alloc.metrics.weight.get(var, 0.0),
                    transfer=alloc.metrics.transfer.get(var, 0.0),
                ))

    # ------------------------------------------------------------------
    # color
    # ------------------------------------------------------------------
    k = ctx.machine.num_registers
    reserve = config.spill_temp_strategy == "reserve"
    reserved_regs: List[str] = []
    if reserve:
        reserved_regs = ctx.machine.registers[-2:]
        if k <= len(reserved_regs):
            raise ValueError(
                "reserve strategy needs more than 2 registers"
            )
        k = k - len(reserved_regs)

    spec = TileColoringSpec(
        k=k,
        color_order=[f"t{tile.tid}.p{i}" for i in range(k)],
        priorities=dict(alloc.metrics.weight),
        precolored=precolored,
        local_prefs=local_prefs,
        pref_pairs=pref_pairs,
        boundary=set(alloc.boundary_globals),
        pre_spilled=set(alloc.forced_memory),
        make_temps=not reserve,
        spill_heuristic=config.spill_heuristic,
        phase="phase1",
        transfer_costs=alloc.metrics.transfer,
    )
    outcome = color_tile(ctx, tile, graph, spec)

    alloc.graph = graph
    alloc.assignment = outcome.assignment
    alloc.spilled = outcome.spilled
    alloc.temp_nodes = outcome.temp_nodes
    alloc.reserved_regs = reserved_regs
    alloc.recolor_rounds = outcome.rounds
    alloc.pref_pairs_all = list(pref_pairs)
    alloc.local_prefs_all = dict(local_prefs)

    # ------------------------------------------------------------------
    # summary for the parent
    # ------------------------------------------------------------------
    _build_summary(ctx, config, tile, alloc, allocations, pref_pairs, local_prefs)
    finalize_metrics(
        alloc.metrics,
        alloc.assignment,
        alloc.spilled,
        ordered_visible,
    )
    if tracer.enabled:
        tracer.emit(TileColored(
            tile_id=tile.tid, phase="phase1", kind=tile.kind,
            blocks=tuple(sorted(own)),
            rounds=outcome.rounds,
            assignment=dict(alloc.assignment),
            spilled=tuple(sorted(alloc.spilled)),
            used_colors=tuple(outcome.used_colors),
            candidates=snapshot_candidates(
                alloc.metrics, sorted(alloc.metrics.weight)
            ),
        ))
    return alloc


def _copy_pairs(
    ctx: FunctionContext, own_labels, visible: Set[str]
) -> List[Tuple[str, str]]:
    pairs = []
    for label in own_labels:
        for instr in ctx.fn.blocks[label].instrs:
            if (
                instr.op in (Opcode.COPY, Opcode.MOVE)
                and instr.defs
                and instr.uses
                and instr.defs[0] in visible
                and instr.uses[0] in visible
            ):
                pairs.append((instr.defs[0], instr.uses[0]))
    return pairs


def _build_summary(
    ctx: FunctionContext,
    config: HierarchicalConfig,
    tile: Tile,
    alloc: TileAllocation,
    allocations: Dict[int, TileAllocation],
    pref_pairs: List[Tuple[str, str]],
    local_prefs: Dict[str, str],
) -> None:
    """Condense the tile's allocation into the parent-facing summary."""
    # "Local-ish" nodes: the tile's locals, its operand temporaries, and
    # the children's summary variables -- everything whose register usage
    # the parent should see only through this tile's summary variables.
    localish: Set[str] = set()
    child_summary_names: Set[str] = set()
    for child in tile.children:
        child_summary_names |= set(
            allocations[child.tid].summary_vars.values()
        )
    for node in alloc.graph.nodes():
        if node in alloc.locals_ or is_temp_node(node) or node in child_summary_names:
            localish.add(node)

    # Summary variables: one per color used by a local-ish node.
    for node in sorted(localish):
        color = alloc.assignment.get(node)
        if color is None:
            continue
        if color not in alloc.summary_vars:
            alloc.summary_vars[color] = summary_var_name(tile.tid, color)
        alloc.ts_map[node] = alloc.summary_vars[color]

    # Globals holding registers here.
    for var in sorted(alloc.globals_):
        color = alloc.assignment.get(var)
        if color is not None and var not in alloc.spilled:
            alloc.global_regs[var] = color

    # Conflict summary, derived from the tile graph's edges.  Walks the
    # id-level neighbour lists (each pair once, via ``a < b`` on names) --
    # equivalent to graph.edges() without materializing the string facade;
    # every insertion below lands in a set, so neighbour order is free.
    assignment_get = alloc.assignment.get
    ts_get = alloc.ts_map.get
    global_regs = alloc.global_regs
    names = alloc.graph.id_names()
    nbrs = alloc.graph.neighbor_ids()
    # Ranks order exactly like names (memoized on the graph since the
    # coloring pass), so the each-pair-once filter compares two ints and
    # only materializes the neighbour's name for kept pairs.
    rank = alloc.graph.name_rank_array()
    for a, ia in alloc.graph.node_ids().items():
        ca = assignment_get(a)
        if ca is None:
            continue
        a_local = a in localish
        ra = rank[ia]
        for ib in nbrs[ia]:
            if rank[ib] < ra:
                continue
            b = names[ib]
            cb = assignment_get(b)
            if cb is None:
                continue
            b_local = b in localish
            if a_local and b_local:
                sa, sb = ts_get(a), ts_get(b)
                if sa and sb and sa != sb:
                    alloc.conflict_summary_summary.add(_ordered(sa, sb))
            elif a_local != b_local:
                g = b if a_local else a
                l = a if a_local else b
                if g in global_regs:
                    summary = ts_get(l)
                    if summary:
                        alloc.conflict_global_summary.add((g, summary))
            else:
                if a in global_regs and b in global_regs:
                    alloc.conflict_global_global.add(_ordered(a, b))

    # Propagated preferences (paper section 3, special cases 1-3).
    if config.preferencing:
        for var, color in alloc.global_regs.items():
            if is_phys(color):
                alloc.phys_prefs_up[var] = color
        seen_pairs = set()
        for a, b in pref_pairs:
            ca, cb = alloc.assignment.get(a), alloc.assignment.get(b)
            if ca is None or ca != cb:
                continue
            if a in alloc.global_regs and b in alloc.global_regs:
                pair = _ordered(a, b)
                if pair not in seen_pairs:
                    seen_pairs.add(pair)
                    alloc.pref_pairs_up.append(pair)
            elif a in alloc.global_regs or b in alloc.global_regs:
                g = a if a in alloc.global_regs else b
                l = b if g == a else a
                summary = alloc.ts_map.get(l)
                if summary:
                    pair = (g, summary)
                    if pair not in seen_pairs:
                        seen_pairs.add(pair)
                        alloc.summary_prefs_up.append(pair)


def _ordered(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)
