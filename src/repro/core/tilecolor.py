"""Shared tile-coloring loop with operand-temporary handling.

Both phases color a tile's interference graph; whenever a variable with
references in the tile's own blocks ends up in memory, those references need
scratch registers.  Following section 6 of the paper, the temporaries are
added to the graph as local variables with *infinite spill cost* and the
tile is recolored -- "our method avoids the need to iterate [the whole
allocation]" because the iteration stays inside one small tile graph and the
temporaries' one-instruction live ranges keep them trivially colorable.

Invariants callers rely on:

* ``graph`` is mutated only by *adding* temp nodes and their conflicts --
  existing nodes and edges are never removed, so phase 2 can recolor the
  same graph object that phase 1 colored.
* spill decisions are monotone: once a variable enters the spilled set (a
  caller's ``pre_spilled`` or a coloring round), no later round removes it
  ("spill decisions are never undone").
* every spilled variable with references in the tile's own blocks has a
  colored operand temporary per reference in the returned assignment
  (``make_temps=True``), which the rewrite stage looks up by name.
* tracing (``ctx.tracer``) is observational only; enabling it cannot
  change the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.info import FunctionContext
from repro.core.summary import (
    is_summary_var,
    is_temp_node,
    parse_temp_node,
    temp_node_name,
)
from repro.graph.coloring import ColoringResult, NoColorForRequiredNode, color_graph
from repro.graph.interference import InterferenceGraph
from repro.tiles.tile import Tile
from repro.trace.events import PreferenceApplied, SpillDecision

#: Recolor rounds per tile before giving up (each round only adds temps for
#: newly spilled variables, so a handful suffices).
MAX_RECOLOR_ROUNDS = 25


@dataclass
class TileColoringSpec:
    """Inputs to one tile-coloring run (phase independent)."""

    k: int
    color_order: List[str]
    priorities: Dict[str, float] = field(default_factory=dict)
    precolored: Dict[str, str] = field(default_factory=dict)
    local_prefs: Dict[str, str] = field(default_factory=dict)
    pref_pairs: List[Tuple[str, str]] = field(default_factory=list)
    boundary: Set[str] = field(default_factory=set)
    #: nodes never allowed to spill (besides temps, which are implied).
    never_spill: Set[str] = field(default_factory=set)
    #: nodes excluded from coloring (already decided to live in memory).
    pre_spilled: Set[str] = field(default_factory=set)
    #: create operand temporaries for spilled references ("recolor"
    #: strategy); with False the caller reserved registers instead.
    make_temps: bool = True
    #: spill-candidate ranking (see graph.coloring.color_graph).
    spill_heuristic: str = "cost_over_degree"
    #: which allocation phase this run belongs to (trace events only).
    phase: str = "phase1"
    #: ``Transfer_t(v)`` per variable, for spill-decision events only.
    transfer_costs: Mapping[str, float] = field(default_factory=dict)


@dataclass
class TileColoringOutcome:
    assignment: Dict[str, str]
    spilled: Set[str]
    temp_nodes: Set[str]
    rounds: int
    used_colors: List[str]


def color_tile(
    ctx: FunctionContext,
    tile: Tile,
    graph: InterferenceGraph,
    spec: TileColoringSpec,
) -> TileColoringOutcome:
    """Color *graph*, adding operand temporaries until a fixed point.

    ``graph`` is mutated: temp nodes and their conflicts are added so later
    phases see them.  Nodes in ``spec.pre_spilled`` never participate; their
    references get temporaries immediately.
    """
    own_labels = sorted(tile.own_blocks())
    tracer = ctx.tracer
    trace_hook = None
    if tracer.enabled:
        def trace_hook(var: str, color: str, kind: str) -> None:
            tracer.emit(PreferenceApplied(
                tile_id=tile.tid, phase=spec.phase,
                var=var, color=color, kind=kind,
            ))
    all_spilled: Set[str] = set(spec.pre_spilled)
    temp_nodes: Set[str] = {n for n in graph.nodes() if is_temp_node(n)}
    vars_with_temps: Set[str] = set()  # real vars whose references have temps
    # Same-instruction peer index: uid -> ([use temps], [def temps]).
    # ``_add_temp_nodes`` consults it instead of rescanning every graph
    # node per spilled-var instruction, and extends it with what it adds,
    # so it stays current across recolor rounds (uids are function-global
    # and each instruction is visited at most once per round).
    temps_by_uid: Dict[int, Tuple[List[str], List[str]]] = {}
    for name in temp_nodes:
        uid, var, kind = parse_temp_node(name)
        vars_with_temps.add(var)
        entry = temps_by_uid.get(uid)
        if entry is None:
            entry = temps_by_uid[uid] = ([], [])
        entry[0 if kind == "u" else 1].append(name)

    # Stable across rounds except for newly added temps / spills; built
    # once and updated incrementally rather than rebuilt per round.
    priorities = dict(spec.priorities)
    for t in temp_nodes:
        priorities[t] = float("inf")

    budget = ctx.budget
    rounds = 0
    while True:
        rounds += 1
        if budget is not None:
            budget.charge(1, "rounds")
        if rounds > MAX_RECOLOR_ROUNDS:
            raise RuntimeError(
                f"tile #{tile.tid}: no coloring fixed point after "
                f"{MAX_RECOLOR_ROUNDS} rounds"
            )
        if spec.make_temps:
            new_vars = {
                v
                for v in all_spilled
                if v not in vars_with_temps and not is_summary_var(v)
            }
            added = _add_temp_nodes(
                ctx, own_labels, graph, new_vars, all_spilled, temps_by_uid
            )
            temp_nodes |= added
            vars_with_temps |= new_vars
            for t in added:
                priorities[t] = float("inf")

        if all_spilled:
            work = graph.subgraph(graph.node_ids().keys() - all_spilled)
            precolored = {
                v: c
                for v, c in spec.precolored.items()
                if v not in all_spilled
            }
        else:
            # Nothing excluded: color the tile graph directly (color_graph
            # never mutates its input).
            work = graph
            precolored = spec.precolored
        try:
            result = color_graph(
                work,
                k=spec.k,
                color_order=spec.color_order,
                priorities=priorities,
                precolored=precolored,
                local_prefs=spec.local_prefs,
                pref_pairs=spec.pref_pairs,
                never_spill=spec.never_spill | temp_nodes,
                boundary=spec.boundary,
                spill_heuristic=spec.spill_heuristic,
                trace_hook=trace_hook,
                budget=budget,
            )
        except NoColorForRequiredNode as exc:
            # Extreme pressure: an unspillable node (operand temporary) has
            # no color left.  Spill its least valuable ordinary neighbour
            # and recolor -- "the paper's temporaries do not contribute
            # significantly" holds only when something else yields.
            victims = [
                n
                for n in work.neighbors(exc.node)
                if n not in temp_nodes
                and n not in spec.never_spill
                and n not in spec.precolored
            ]
            if not victims:
                raise
            victim = min(
                victims, key=lambda n: (spec.priorities.get(n, 0.0), n)
            )
            if tracer.enabled:
                tracer.emit(SpillDecision(
                    tile_id=tile.tid, phase=spec.phase, var=victim,
                    reason="pressure_victim",
                    weight=spec.priorities.get(victim, 0.0),
                    transfer=spec.transfer_costs.get(victim, 0.0),
                ))
            all_spilled.add(victim)
            continue
        if not result.spilled:
            return TileColoringOutcome(
                assignment=result.assignment,
                spilled=all_spilled,
                temp_nodes=temp_nodes,
                rounds=rounds,
                used_colors=result.used_colors,
            )
        if tracer.enabled:
            # result.spilled excludes all_spilled (those never entered the
            # work graph), so each spill is reported exactly once.
            for var in sorted(result.spilled):
                tracer.emit(SpillDecision(
                    tile_id=tile.tid, phase=spec.phase, var=var,
                    reason="no_color",
                    weight=spec.priorities.get(var, 0.0),
                    transfer=spec.transfer_costs.get(var, 0.0),
                ))
        all_spilled |= result.spilled
        if not spec.make_temps:
            # Reserve strategy: no recoloring needed, spilled references
            # will use the reserved registers at rewrite time.
            return TileColoringOutcome(
                assignment={
                    v: c
                    for v, c in result.assignment.items()
                    if v not in all_spilled
                },
                spilled=all_spilled,
                temp_nodes=set(),
                rounds=rounds,
                used_colors=result.used_colors,
            )


def _instr_temps(
    instr, new_vars: Set[str]
) -> Tuple[List[str], List[str]]:
    """Temp-node names for *instr*'s references to *new_vars* -- operand
    order (first occurrence), because the list order decides graph node
    insertion order downstream."""
    use_temps: List[str] = []
    def_temps: List[str] = []
    uid = instr.uid
    for var in dict.fromkeys(instr.uses):
        if var in new_vars:
            use_temps.append(temp_node_name(uid, var, "u"))
    for var in dict.fromkeys(instr.defs):
        if var in new_vars:
            def_temps.append(temp_node_name(uid, var, "d"))
    return use_temps, def_temps


def _connect_temps(
    graph: InterferenceGraph,
    added: Set[str],
    temps: List[str],
    live_regs: Iterable[str],
    peers: Iterable[str],
) -> None:
    """Insert *temps* with conflicts against the live registers, each
    other, and same-kind peers.  The neighbour list is identical for
    every temp of one kind at one instruction, so it is sorted once --
    the union is a set, and edge insertion order decides node order for
    nodes first seen here."""
    if not temps:
        return
    others = sorted(set(live_regs) | set(temps) | set(peers))
    for temp in temps:
        graph.add_node(temp)
        graph.add_star(temp, others)
        added.add(temp)


def _record_temps(
    temps_by_uid: Dict[int, Tuple[List[str], List[str]]],
    uid: int,
    use_temps: List[str],
    def_temps: List[str],
) -> None:
    entry = temps_by_uid.get(uid)
    if entry is None:
        entry = temps_by_uid[uid] = ([], [])
    entry[0].extend(use_temps)
    entry[1].extend(def_temps)


def _mask_names(mask: int, name_of) -> List[str]:
    out: List[str] = []
    append = out.append
    while mask:
        low = mask & -mask
        append(name_of(low.bit_length() - 1))
        mask ^= low
    return out


def _add_temp_nodes(
    ctx: FunctionContext,
    own_labels: Iterable[str],
    graph: InterferenceGraph,
    new_vars: Set[str],
    all_spilled: Set[str],
    temps_by_uid: Dict[int, Tuple[List[str], List[str]]],
) -> Set[str]:
    """Create temp nodes for every reference to *new_vars* in the tile's own
    blocks, with conflicts against whatever is live (and not itself spilled)
    at the reference point.

    Existing temps at an instruction conflict with new temps of the same
    kind: use temps coexist before the instruction, def temps after it.
    A def temp may share a register with a use temp -- all uses are read
    before any def is written.  Same-kind peers come from *temps_by_uid*
    (maintained by the caller across rounds), never from a graph rescan.

    The arena path walks only blocks whose referenced-variable mask
    intersects the newly spilled set, and within them only instructions
    whose use/def bitmasks do, so spill-free regions cost one word AND
    per block.  The object path (arena retired or absent) walks every
    instruction like the original implementation.
    """
    added: Set[str] = set()
    if not new_vars:
        return added
    liveness = ctx.liveness
    arena = ctx.arena
    if arena is not None and (arena.fn is not ctx.fn or arena.retired):
        arena = None

    if arena is not None:
        index = liveness.index
        mask_of_known = index.mask_of_known
        new_mask = mask_of_known(new_vars)
        # Graph nodes that are function variables, minus everything
        # spilled: the register-resident candidates a temp conflicts
        # with.  Temp/summary/physical nodes have no vid and fall out.
        reg_mask = mask_of_known(graph.node_ids()) & ~mask_of_known(all_spilled)
        name_of = index.name_of
        block_id = arena.block_id
        block_start = arena.block_start
        block_ref = arena.block_ref
        i_uses = arena.i_uses
        i_defs = arena.i_defs
        instrs = arena.instrs
        for label in own_labels:
            bid = block_id[label]
            if not block_ref[bid] & new_mask:
                continue
            live_in_bits = liveness.instr_live_in_bits(label)
            live_out_bits = liveness.instr_live_out_bits(label)
            start = block_start[bid]
            for idx in range(block_start[bid + 1] - start):
                i = start + idx
                if not (i_uses[i] | i_defs[i]) & new_mask:
                    continue
                instr = instrs[i]
                use_temps, def_temps = _instr_temps(instr, new_vars)
                peers = temps_by_uid.get(instr.uid)
                _connect_temps(
                    graph, added, use_temps,
                    _mask_names(live_in_bits[idx] & reg_mask, name_of),
                    peers[0] if peers else (),
                )
                _connect_temps(
                    graph, added, def_temps,
                    _mask_names(live_out_bits[idx] & reg_mask, name_of),
                    peers[1] if peers else (),
                )
                _record_temps(temps_by_uid, instr.uid, use_temps, def_temps)
        return added

    node_set = set(graph.nodes())
    for label in own_labels:
        block = ctx.fn.blocks[label]
        live_in = liveness.instr_live_in(label)
        live_out = liveness.instr_live_out(label)
        for idx, instr in enumerate(block.instrs):
            use_temps, def_temps = _instr_temps(instr, new_vars)
            if not use_temps and not def_temps:
                continue
            peers = temps_by_uid.get(instr.uid)
            live_in_regs = {
                v for v in live_in[idx] if v in node_set and v not in all_spilled
            }
            live_out_regs = {
                v for v in live_out[idx] if v in node_set and v not in all_spilled
            }
            _connect_temps(
                graph, added, use_temps, live_in_regs,
                peers[0] if peers else (),
            )
            _connect_temps(
                graph, added, def_temps, live_out_regs,
                peers[1] if peers else (),
            )
            _record_temps(temps_by_uid, instr.uid, use_temps, def_temps)
    return added
