"""Spill-code placement and final program rewriting.

Once phase 2 has bound every tile, two jobs remain:

1. **Boundary code** (paper section 3, "Inserting Spill Code"): for every
   edge crossing a tile boundary and every variable live along it, compare
   the parent and child locations and plan the four cases -- Spill,
   Transfer, Reload, No Change.  Code lands in a fresh block on the edge;
   "stores and moves from a register must precede loads and moves to a
   register", and move cycles are broken with an idle register (or, in the
   worst case, a memory bounce).
2. **Reference rewriting**: within each tile's own blocks, references map
   to the tile's physical registers; references to memory-resident
   variables go through the operand temporaries colored during allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import HierarchicalConfig
from repro.core.info import FunctionContext
from repro.core.summary import MEM, TileAllocation, temp_node_name
from repro.ir.function import Function
from repro.ir.instructions import Instr, Opcode, is_phys
from repro.machine.rewrite import spill_slot
from repro.tiles.tile import Tile
from repro.trace.events import BoundaryAction


@dataclass
class EdgePlan:
    """Planned fix-up operations for one boundary edge."""

    stores: List[Tuple[str, str]] = field(default_factory=list)  # (slot, src reg)
    moves: List[Tuple[str, str]] = field(default_factory=list)   # (dst, src)
    loads: List[Tuple[str, str]] = field(default_factory=list)   # (dst reg, slot)
    #: registers holding live values across this edge (cycle breaking).
    busy: Set[str] = field(default_factory=set)

    def empty(self) -> bool:
        return not (self.stores or self.moves or self.loads)


def plan_boundary_code(
    ctx: FunctionContext,
    config: HierarchicalConfig,
    allocations: Dict[int, TileAllocation],
) -> Dict[Tuple[str, str], EdgePlan]:
    """Compute the :class:`EdgePlan` for every tile-crossing edge."""
    plans: Dict[Tuple[str, str], EdgePlan] = {}
    tree = ctx.tree
    tracer = ctx.tracer
    budget = ctx.budget
    for src, dst in ctx.fn.edges():
        if budget is not None:
            budget.charge(1, "edges")
        t_src = tree.tile_of(src)
        t_dst = tree.tile_of(dst)
        if t_src is t_dst:
            continue
        if t_dst.parent is t_src:
            parent, child, child_tile, entering = t_src, t_dst, t_dst, True
        elif t_src.parent is t_dst:
            parent, child, child_tile, entering = t_dst, t_src, t_src, False
        else:  # pragma: no cover - tree legality guarantees adjacency
            raise AssertionError(f"edge {src}->{dst} spans non-adjacent tiles")

        parent_phys = allocations[parent.tid].phys
        child_phys = allocations[child.tid].phys
        plan = EdgePlan()
        live = sorted(ctx.liveness.live_on_edge(src, dst))
        for var in live:
            lp = parent_phys.get(var, MEM)
            lc = child_phys.get(var, MEM)
            for loc in (lp, lc):
                if loc != MEM:
                    plan.busy.add(loc)
            store_avoided = False
            if lp == lc:
                pass  # No Change (or same register throughout)
            elif entering:
                if lp != MEM and lc == MEM:       # Spill
                    plan.stores.append((spill_slot(var), lp))
                elif lp != MEM and lc != MEM:     # Transfer
                    plan.moves.append((lc, lp))
                elif lp == MEM and lc != MEM:     # Reload
                    plan.loads.append((lc, spill_slot(var)))
            else:
                if lp != MEM and lc == MEM:       # Spill (exit half)
                    plan.loads.append((lp, spill_slot(var)))
                elif lp != MEM and lc != MEM:     # Transfer (exit half)
                    plan.moves.append((lp, lc))
                elif lp == MEM and lc != MEM:     # Reload (exit half)
                    # "The spill is unnecessary because v was never
                    # modified in the loop": skip the store when nothing in
                    # the subtile defines the variable.
                    if not config.store_avoidance or ctx.defined_in_subtree(
                        child_tile, var
                    ):
                        plan.stores.append((spill_slot(var), lc))
                    else:
                        store_avoided = True
            if tracer.enabled:
                action = _boundary_case(lp, lc)
                tracer.emit(BoundaryAction(
                    edge=(src, dst),
                    parent_tile=parent.tid, child_tile=child.tid,
                    entering=entering, var=var, action=action,
                    parent_loc=lp, child_loc=lc,
                    store_avoided=store_avoided,
                ))
                tracer.count(f"boundary.{action}")
        if not plan.empty():
            plans[(src, dst)] = plan
    return plans


def _boundary_case(parent_loc: str, child_loc: str) -> str:
    """Name the paper's section-3 case for one (parent, child) location
    pair: Spill, Transfer, Reload, or No Change."""
    if parent_loc == child_loc:
        return "no_change"
    if parent_loc != MEM and child_loc == MEM:
        return "spill"
    if parent_loc != MEM and child_loc != MEM:
        return "transfer"
    return "reload"


def sequence_moves(
    plan: EdgePlan, registers: List[str], edge: Tuple[str, str],
    budget=None,
) -> List[Instr]:
    """Order one edge's operations; break register-move cycles.

    Returns the instruction list for the fix-up block: stores first, then
    the sequenced moves, then loads.
    """
    instrs: List[Instr] = [
        Instr(Opcode.SPILL_ST, uses=(src,), imm=slot) for slot, src in plan.stores
    ]

    pending: Dict[str, str] = {}
    for dst, src in plan.moves:
        if dst != src:
            if dst in pending:  # pragma: no cover - planner keeps dsts unique
                raise AssertionError(f"duplicate move target {dst} on {edge}")
            pending[dst] = src

    bounce_slot = f"cycle:{edge[0]}->{edge[1]}"
    free_candidates = [r for r in registers if r not in plan.busy]

    while pending:
        if budget is not None:
            budget.charge(1, "moves")
        sources = set(pending.values())
        movable = [d for d in pending if d not in sources]
        if movable:
            dst = movable[0]
            src = pending.pop(dst)
            instrs.append(Instr(Opcode.MOVE, defs=(dst,), uses=(src,)))
            continue
        # Pure cycle: save one destination's current value, redirect the
        # move that consumes it.
        dst = next(iter(sorted(pending)))
        if free_candidates:
            temp = free_candidates[0]
            instrs.append(Instr(Opcode.MOVE, defs=(temp,), uses=(dst,)))
            replacement = temp
        else:
            # "In the worst case a register must be spilled just to provide
            # an idle register" -- we bounce through memory instead, which
            # is the same cost without disturbing a third register.
            instrs.append(
                Instr(Opcode.SPILL_ST, uses=(dst,), imm=f"{bounce_slot}:{dst}")
            )
            replacement = f"{bounce_slot}:{dst}"
        for d, s in list(pending.items()):
            if s == dst:
                pending[d] = replacement

    # Resolve memory bounces among sequenced moves.
    resolved: List[Instr] = []
    for instr in instrs:
        if instr.op is Opcode.MOVE and instr.uses[0].startswith("cycle:"):
            resolved.append(
                Instr(Opcode.SPILL_LD, defs=instr.defs, imm=instr.uses[0])
            )
        else:
            resolved.append(instr)
    instrs = resolved

    instrs.extend(
        Instr(Opcode.SPILL_LD, defs=(dst,), imm=slot) for dst, slot in plan.loads
    )
    return instrs


def rewrite_program(
    ctx: FunctionContext,
    config: HierarchicalConfig,
    allocations: Dict[int, TileAllocation],
) -> Function:
    """Produce the final physical-register function (mutates ``ctx.fn``)."""
    fn = ctx.fn
    plans = plan_boundary_code(ctx, config, allocations)

    # Rewrite references block by block.
    for label in list(fn.blocks):
        tile = ctx.tree.tile_of(label)
        _rewrite_block(fn.blocks[label], allocations[tile.tid], config)

    # Materialize boundary code on its edges.  all_occurrences: when a CBR's
    # arms coincide, the edge appears twice in the successor list and the
    # spill block must intercept both traversals.
    for (src, dst), plan in sorted(plans.items()):
        instrs = sequence_moves(
            plan, ctx.machine.registers, (src, dst), budget=ctx.budget
        )
        block = fn.insert_block_on_edge(
            src, dst, label=fn.new_label("sp"), all_occurrences=True
        )
        block.instrs = instrs

    # Drop construction fix-up blocks that received no code.
    for label in ctx.fixup.inserted_labels:
        block = fn.blocks.get(label)
        if block is not None and block.is_empty() and len(block.succ_labels) == 1:
            if label not in (fn.start_label, fn.stop_label):
                fn.remove_empty_block(label)

    # Parameters: rename to the root tile's register when it has one.
    root_phys = allocations[ctx.tree.root.tid].phys
    fn.params = [
        root_phys[p] if root_phys.get(p) not in (None, MEM) else p
        for p in fn.params
    ]
    return fn


def _rewrite_block(
    block, alloc: TileAllocation, config: HierarchicalConfig
) -> None:
    loc = alloc.phys
    reserve = config.spill_temp_strategy == "reserve"
    new_instrs: List[Instr] = []
    for instr in block.instrs:
        loads: List[Instr] = []
        stores: List[Instr] = []
        use_map: Dict[str, str] = {}
        reserved_idx = 0
        for var in dict.fromkeys(instr.uses):
            location = loc.get(var)
            if location is None:
                raise AssertionError(
                    f"variable {var!r} has no location in tile #{alloc.tile_id}"
                )
            if location != MEM:
                use_map[var] = location
                continue
            if reserve:
                reg = alloc.reserved_regs[reserved_idx % len(alloc.reserved_regs)]
                reserved_idx += 1
            else:
                reg = loc[temp_node_name(instr.uid, var, "u")]
            loads.append(Instr(Opcode.SPILL_LD, defs=(reg,), imm=spill_slot(var)))
            use_map[var] = reg
        def_map: Dict[str, str] = {}
        reserved_idx = 0
        for var in dict.fromkeys(instr.defs):
            location = loc.get(var)
            if location is None:
                raise AssertionError(
                    f"variable {var!r} has no location in tile #{alloc.tile_id}"
                )
            if location != MEM:
                def_map[var] = location
                continue
            if reserve:
                reg = alloc.reserved_regs[reserved_idx % len(alloc.reserved_regs)]
                reserved_idx += 1
            else:
                reg = loc[temp_node_name(instr.uid, var, "d")]
            def_map[var] = reg
            stores.append(Instr(Opcode.SPILL_ST, uses=(reg,), imm=spill_slot(var)))
        renamed = instr.clone()
        renamed.uses = tuple(use_map[v] for v in instr.uses)
        renamed.defs = tuple(def_map[v] for v in instr.defs)
        new_instrs.extend(loads)
        new_instrs.append(renamed)
        new_instrs.extend(stores)
    block.instrs = new_instrs
