"""Per-tile allocation state and the tile summary (paper section 3).

After phase 1 processes a tile, local variables coalesced per register are
represented upward by *tile summary variables* (at most ``|R|`` of them),
together with the conflict summary: ``e_t(g)`` (local conflicts of each
register-resident global, expressed against summary variables),
global-global conflicts, and the summary-summary bit relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.graph.interference import InterferenceGraph

#: Sentinel location: the variable lives in its memory slot.
MEM = "<mem>"


def summary_var_name(tile_id: int, color: str) -> str:
    """Name of the tile summary variable for register *color* of a tile."""
    return f"ts:{tile_id}:{color}"


def is_summary_var(name: str) -> bool:
    return name.startswith("ts:")


def temp_node_name(instr_uid: int, var: str, kind: str) -> str:
    """Name of an operand-temporary node (kind: 'u' use / 'd' def)."""
    return f"tmp:{instr_uid}:{var}:{kind}"


def is_temp_node(name: str) -> bool:
    return name.startswith("tmp:")


def parse_temp_node(name: str) -> Tuple[int, str, str]:
    """Inverse of :func:`temp_node_name`; variable names may contain
    colons (e.g. callee-save pseudos), so parse from both ends."""
    _, uid, rest = name.split(":", 2)
    var, _, kind = rest.rpartition(":")
    return int(uid), var, kind


@dataclass
class TileMetrics:
    """Section 4 quantities for the variables visible in one tile."""

    local_weight: Dict[str, float] = field(default_factory=dict)
    transfer: Dict[str, float] = field(default_factory=dict)
    weight: Dict[str, float] = field(default_factory=dict)
    reg: Dict[str, float] = field(default_factory=dict)
    mem: Dict[str, float] = field(default_factory=dict)


@dataclass
class TileAllocation:
    """Everything phase 1 decided about one tile, extended by phase 2.

    Phase-1 fields:

    * ``graph``: the tile interference graph (real variables visible in the
      tile, operand-temporary nodes, children's summary variables).
    * ``assignment``: node -> pseudo/physical color.
    * ``spilled``: nodes allocated to memory in this tile.
    * ``locals_`` / ``globals_``: visibility classification.
    * ``ts_map``: local variable -> its tile summary variable.
    * ``summary_vars``: color -> summary variable (for colors holding at
      least one local).
    * ``global_regs``: globals of this tile that hold a register here.
    * conflict summary sets and propagated preferences for the parent.
    * ``metrics``: the section-4 numbers.

    Phase-2 fields:

    * ``phys``: node -> physical register (or :data:`MEM`), the final
      binding for this tile's level.
    """

    tile_id: int
    graph: InterferenceGraph = field(default_factory=InterferenceGraph)
    assignment: Dict[str, str] = field(default_factory=dict)
    spilled: Set[str] = field(default_factory=set)
    locals_: Set[str] = field(default_factory=set)
    globals_: Set[str] = field(default_factory=set)
    boundary_globals: Set[str] = field(default_factory=set)
    ts_map: Dict[str, str] = field(default_factory=dict)
    summary_vars: Dict[str, str] = field(default_factory=dict)
    global_regs: Dict[str, str] = field(default_factory=dict)

    conflict_global_summary: Set[Tuple[str, str]] = field(default_factory=set)
    conflict_global_global: Set[Tuple[str, str]] = field(default_factory=set)
    conflict_summary_summary: Set[Tuple[str, str]] = field(default_factory=set)

    #: globals bound to a *physical* register here (linkage), propagated as
    #: local preferences in the parent (Preferencing special case 1).
    phys_prefs_up: Dict[str, str] = field(default_factory=dict)
    #: global pairs successfully sharing a pseudo register here,
    #: re-preferenced in the parent (special case 2).
    pref_pairs_up: List[Tuple[str, str]] = field(default_factory=list)
    #: (global, summary var) preferences (special case 3).
    summary_prefs_up: List[Tuple[str, str]] = field(default_factory=list)

    #: preference inputs used in phase 1, reused when phase 2 recolors.
    pref_pairs_all: List[Tuple[str, str]] = field(default_factory=list)
    local_prefs_all: Dict[str, str] = field(default_factory=dict)

    metrics: TileMetrics = field(default_factory=TileMetrics)
    #: variables marked "not worth a register" (transfer + weight < 0).
    forced_memory: Set[str] = field(default_factory=set)
    #: temp nodes introduced for references to spilled variables.
    temp_nodes: Set[str] = field(default_factory=set)
    #: registers reserved for spill temps under the "reserve" strategy.
    reserved_regs: List[str] = field(default_factory=list)
    recolor_rounds: int = 0

    # ---- phase 2 ----
    phys: Dict[str, str] = field(default_factory=dict)
    #: summary var -> physical register (or MEM) chosen by the parent.
    summary_phys: Dict[str, str] = field(default_factory=dict)
    #: post-phase-2 (node count, edge count), recorded when a memoized
    #: phase-2 overlay was applied without materializing the mutated
    #: graph; ``None`` means read the live ``graph`` instead.
    graph_counts: Optional[Tuple[int, int]] = None

    def location(self, var: str) -> Optional[str]:
        """Final location of *var* at this tile's level (phase 2)."""
        return self.phys.get(var)

    def colors_in_use(self) -> Set[str]:
        return set(self.assignment.values())

    def describe(self) -> str:
        """Human-readable dump used by examples."""
        lines = [f"tile #{self.tile_id}:"]
        for var in sorted(self.assignment):
            lines.append(f"  {var} -> {self.assignment[var]}")
        for var in sorted(self.spilled):
            lines.append(f"  {var} -> MEMORY")
        return "\n".join(lines)
