"""Target machine description.

The paper's machine model: "The target machine has a finite set R of
physical registers and an unbounded set M of memory locations."  We add the
linkage-convention attributes discussed in section 6 (caller/callee-save
partitions, argument/result registers) so the shrink-wrapping experiment can
be expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Tuple

from repro.ir.instructions import phys_reg


@dataclass(frozen=True)
class Machine:
    """An abstract register machine.

    Attributes:
        num_registers: ``|R|``, the number of allocatable physical registers.
        callee_save: indices of registers the callee must preserve.
        arg_regs: indices used to pass call arguments, in order.
        ret_regs: indices used to return call results, in order.
        load_cost / store_cost: unit costs of a dynamic memory reference;
            the paper assumes "unit cost to load or store a variable" and
            the defaults keep that, but the cost model is a knob.
        move_cost: cost of a register-to-register transfer (cheap but not
            free, so benches can report it separately).
    """

    num_registers: int
    callee_save: FrozenSet[int] = frozenset()
    arg_regs: Tuple[int, ...] = ()
    ret_regs: Tuple[int, ...] = ()
    load_cost: float = 1.0
    store_cost: float = 1.0
    move_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.num_registers < 1:
            raise ValueError("machine needs at least one register")
        for idx in self.callee_save:
            if not 0 <= idx < self.num_registers:
                raise ValueError(f"callee-save register {idx} out of range")
        for idx in self.arg_regs + self.ret_regs:
            if not 0 <= idx < self.num_registers:
                raise ValueError(f"linkage register {idx} out of range")

    @property
    def registers(self) -> List[str]:
        """Names of all physical registers."""
        return [phys_reg(i) for i in range(self.num_registers)]

    @property
    def caller_save(self) -> FrozenSet[int]:
        return frozenset(range(self.num_registers)) - self.callee_save

    def callee_save_names(self) -> List[str]:
        return [phys_reg(i) for i in sorted(self.callee_save)]

    @staticmethod
    def simple(num_registers: int) -> "Machine":
        """A machine with *num_registers* and no linkage structure.

        This is the configuration of the paper's Figure 1 example
        ("a two-register machine" when ``num_registers=2``).
        """
        return Machine(num_registers=num_registers)

    @staticmethod
    def with_linkage(num_registers: int, num_callee_save: int = 0,
                     num_args: int = 2) -> "Machine":
        """A machine with a conventional linkage split.

        Low registers are caller-save scratch/argument registers, the top
        *num_callee_save* registers are callee-save.  Result register is
        ``R0`` as on most conventional targets.
        """
        if num_callee_save >= num_registers:
            raise ValueError("need at least one caller-save register")
        callee = frozenset(
            range(num_registers - num_callee_save, num_registers)
        )
        args = tuple(range(min(num_args, num_registers - num_callee_save)))
        return Machine(
            num_registers=num_registers,
            callee_save=callee,
            arg_regs=args,
            ret_regs=(0,),
        )
