"""Machine model: target description, simulator/profiler, rewriting."""

from repro.machine.target import Machine
from repro.machine.simulator import (
    ExecutionResult,
    Profile,
    SimulationError,
    simulate,
)

__all__ = [
    "Machine",
    "ExecutionResult",
    "Profile",
    "SimulationError",
    "simulate",
]
