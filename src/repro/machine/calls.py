"""Linkage-convention lowering (paper section 6).

Two transformations executed *before* allocation:

* :func:`lower_calls` rewrites every ``CALL`` so that arguments flow through
  the machine's argument registers and results through its result registers,
  using explicit copies to/from variables *named* after physical registers.
  Such names act as precolored nodes in every allocator ("when certain
  values must be in particular physical registers ... those variables are
  assigned to the appropriate physical registers"), and the copies supply
  the preferences that let the allocator compute arguments directly into
  place.  The call itself clobbers the caller-save registers, so values
  live across it must sit in callee-save registers or memory.

* :func:`with_callee_save` materializes the paper's callee-save model:
  "each callee-save register is assumed to contain a live variable with
  weight commensurate with the save and restore cost and a preference to
  the callee-save register."  Each callee-save register becomes an incoming
  parameter copied into a pseudo variable at entry and restored before
  every return -- the allocator's ordinary spill analysis then performs
  shrink wrapping: the pseudo is only pushed to memory around the regions
  that actually need the register.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Instr, Opcode, phys_reg
from repro.machine.target import Machine


class LinkageError(ValueError):
    """Raised when a call cannot be expressed in the machine's linkage."""


def callee_save_pseudo(index: int) -> str:
    """Name of the pseudo variable holding callee-save register *index*."""
    return f"csv:{index}"


def lower_calls(fn: Function, machine: Machine) -> Function:
    """Rewrite CALLs to use the machine's argument/result registers."""
    out = fn.clone()
    caller_save = tuple(phys_reg(i) for i in sorted(machine.caller_save))
    for block in out.blocks.values():
        new_instrs: List[Instr] = []
        for instr in block.instrs:
            if instr.op is not Opcode.CALL:
                new_instrs.append(instr)
                continue
            if len(instr.uses) > len(machine.arg_regs):
                raise LinkageError(
                    f"call to {instr.imm!r} passes {len(instr.uses)} args "
                    f"but the machine has {len(machine.arg_regs)} argument "
                    "registers"
                )
            if len(instr.defs) > len(machine.ret_regs):
                raise LinkageError(
                    f"call to {instr.imm!r} returns {len(instr.defs)} values "
                    f"but the machine has {len(machine.ret_regs)} result "
                    "registers"
                )
            arg_regs = [phys_reg(machine.arg_regs[i]) for i in range(len(instr.uses))]
            ret_regs = [phys_reg(machine.ret_regs[i]) for i in range(len(instr.defs))]
            for reg, var in zip(arg_regs, instr.uses):
                new_instrs.append(Instr(Opcode.COPY, defs=(reg,), uses=(var,)))
            lowered = instr.clone()
            lowered.uses = tuple(arg_regs)
            lowered.defs = tuple(ret_regs)
            lowered.clobbers = tuple(
                r for r in caller_save if r not in ret_regs
            )
            new_instrs.append(lowered)
            for var, reg in zip(instr.defs, ret_regs):
                new_instrs.append(Instr(Opcode.COPY, defs=(var,), uses=(reg,)))
        block.instrs = new_instrs
    return out


def with_callee_save(fn: Function, machine: Machine) -> Function:
    """Thread the callee-save registers through *fn* as live pseudos.

    The callee-save registers become extra parameters (their incoming
    values), are copied into ``csv:k`` pseudo variables at entry, restored
    into their registers before every return, and appended to the returned
    values -- so the standard differential check verifies the callee-save
    contract end to end.
    """
    if not machine.callee_save:
        return fn.clone()
    out = fn.clone()
    regs = [phys_reg(i) for i in sorted(machine.callee_save)]
    pseudos = [callee_save_pseudo(i) for i in sorted(machine.callee_save)]

    start = out.blocks[out.start_label]
    saves = [
        Instr(Opcode.COPY, defs=(pseudo,), uses=(reg,))
        for pseudo, reg in zip(pseudos, regs)
    ]
    start.instrs = saves + start.instrs
    out.params = list(out.params) + regs

    for block in out.blocks.values():
        term = block.terminator
        if term is None or term.op is not Opcode.RET:
            continue
        restores = [
            Instr(Opcode.COPY, defs=(reg,), uses=(pseudo,))
            for pseudo, reg in zip(pseudos, regs)
        ]
        ret = term.clone()
        ret.uses = tuple(term.uses) + tuple(regs)
        block.instrs = block.instrs[:-1] + restores + [ret]
    return out
