"""An interpreter for the toy IR.

The simulator serves three purposes:

1. **Objective function.** The paper's goal is "to minimize the number of
   dynamic memory references"; the simulator counts them exactly, split
   into program traffic (``LOAD``/``STORE``) and spill traffic
   (``SPILL_LD``/``SPILL_ST``), plus register moves.
2. **Differential verification.** The same interpreter runs both the
   virtual-register input program and the allocator's physical-register
   output; matching results certify the allocation was semantics-preserving.
3. **Profiler.** Block and edge execution counts form a profile that
   :mod:`repro.analysis.frequency` can consume, reproducing the paper's
   claim that "profiling information can be trivially incorporated".

Values are Python ints/floats.  Reading a never-written variable or a
clobbered (caller-save, post-call) register raises, which turns allocation
bugs into loud test failures instead of silent wrong answers.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.ir.function import Function
from repro.ir.instructions import (
    BINARY_EVAL_BY_VALUE,
    Instr,
    Opcode,
    UNARY_EVAL_BY_VALUE,
)


class SimulationError(RuntimeError):
    """Raised on runtime errors: unset variables, step overruns, bad ops."""


class _Poison:
    """Sentinel stored into caller-save registers across calls."""

    def __repr__(self) -> str:  # pragma: no cover
        return "<poison>"


POISON = _Poison()

#: Intrinsics callable via ``CALL``; deliberately small and pure.
INTRINSICS: Dict[str, Callable[..., Any]] = {
    "abs": lambda a: abs(a),
    "min2": lambda a, b: min(a, b),
    "max2": lambda a, b: max(a, b),
    "clamp": lambda x, lo, hi: max(lo, min(hi, x)),
    "sq": lambda a: a * a,
    "id": lambda a: a,
    "zero": lambda: 0,
}


@dataclass
class Profile:
    """Execution counts gathered during a run."""

    block_counts: Dict[str, int] = field(default_factory=dict)
    edge_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def merge(self, other: "Profile") -> "Profile":
        merged = Profile(dict(self.block_counts), dict(self.edge_counts))
        for label, count in other.block_counts.items():
            merged.block_counts[label] = merged.block_counts.get(label, 0) + count
        for edge, count in other.edge_counts.items():
            merged.edge_counts[edge] = merged.edge_counts.get(edge, 0) + count
        return merged


@dataclass
class ExecutionResult:
    """Outcome of one simulated run."""

    returned: Tuple[Any, ...]
    arrays: Dict[str, Dict[int, Any]]
    steps: int
    opcode_counts: Counter
    profile: Profile
    #: spill references that hit the intermediate scratch level (slot keys
    #: prefixed "scratch:"), a subset of the spill loads/stores.
    scratch_refs: int = 0

    @property
    def program_memory_refs(self) -> int:
        """Dynamic LOAD/STORE count (inherent to the program)."""
        return (
            self.opcode_counts[Opcode.LOAD] + self.opcode_counts[Opcode.STORE]
        )

    @property
    def spill_memory_refs(self) -> int:
        """Dynamic spill loads + stores (allocation overhead -- the paper's
        objective)."""
        return (
            self.opcode_counts[Opcode.SPILL_LD]
            + self.opcode_counts[Opcode.SPILL_ST]
        )

    @property
    def spill_loads(self) -> int:
        return self.opcode_counts[Opcode.SPILL_LD]

    @property
    def spill_stores(self) -> int:
        return self.opcode_counts[Opcode.SPILL_ST]

    @property
    def total_memory_refs(self) -> int:
        return self.program_memory_refs + self.spill_memory_refs

    @property
    def register_moves(self) -> int:
        """Dynamic register-to-register transfers inserted by allocation."""
        return self.opcode_counts[Opcode.MOVE]

    def cost(self, load_cost: float = 1.0, store_cost: float = 1.0,
             move_cost: float = 0.0) -> float:
        """Weighted allocation-overhead cost of the run."""
        return (
            self.opcode_counts[Opcode.SPILL_LD] * load_cost
            + self.opcode_counts[Opcode.SPILL_ST] * store_cost
            + self.opcode_counts[Opcode.MOVE] * move_cost
        )


def simulate(
    fn: Function,
    args: Optional[Mapping[str, Any]] = None,
    arrays: Optional[Mapping[str, Sequence[Any]]] = None,
    max_steps: int = 2_000_000,
    intrinsics: Optional[Mapping[str, Callable[..., Any]]] = None,
) -> ExecutionResult:
    """Execute *fn* and return an :class:`ExecutionResult`.

    Args:
        fn: the function to run (virtual- or physical-register form).
        args: values for ``fn.params``.
        arrays: initial array contents, copied before execution; indexable
            by non-negative int.  Out-of-range reads return 0 (arrays are
            conceptually unbounded zero-initialized memory).
        max_steps: instruction budget; exceeding it raises
            :class:`SimulationError` (guards non-terminating tests).
        intrinsics: overrides/extends the default ``CALL`` intrinsics.
    """
    env: Dict[str, Any] = {}
    slots: Dict[Any, Any] = {}
    args = dict(args or {})
    for param in fn.params:
        if param not in args:
            raise SimulationError(f"missing argument for parameter {param!r}")
        value = args.pop(param)
        env[param] = value
        # Calling convention: arguments are available both in their
        # parameter register and in their home memory slot, so an allocator
        # that spills a parameter finds it in memory without a prologue.
        slots[f"slot:{param}"] = value
    if args:
        raise SimulationError(f"unknown arguments: {sorted(args)}")

    memory: Dict[str, Dict[int, Any]] = {}
    for name, contents in (arrays or {}).items():
        if isinstance(contents, Mapping):
            memory[name] = dict(contents)
        else:
            memory[name] = {i: v for i, v in enumerate(contents)}

    callees = dict(INTRINSICS)
    if intrinsics:
        callees.update(intrinsics)

    counts: Counter = Counter()
    scratch_refs = 0
    block_counts: Dict[str, int] = defaultdict(int)
    edge_counts: Dict[Tuple[str, str], int] = defaultdict(int)
    returned: Tuple[Any, ...] = ()

    def read(name: str, instr: Instr, label: str) -> Any:
        try:
            value = env[name]
        except KeyError:
            raise SimulationError(
                f"read of unset variable {name!r} at {label}:{instr.op.value}"
            ) from None
        if value is POISON:
            raise SimulationError(
                f"read of clobbered register {name!r} at {label}:{instr.op.value}"
            )
        return value

    steps = 0
    label = fn.start_label
    finished = False
    while not finished:
        block = fn.blocks[label]
        block_counts[label] += 1
        next_label: Optional[str] = None
        for instr in block.instrs:
            steps += 1
            if steps > max_steps:
                raise SimulationError(f"exceeded {max_steps} steps")
            op = instr.op
            # Keyed by the opcode's string value (``_value_`` is the
            # plain instance attribute behind the ``value`` descriptor):
            # str hashing is C-level and cached, Enum.__hash__ is a
            # Python call paid once per dynamic instruction.  Rekeyed to
            # Opcode on return.  The arithmetic branches likewise dispatch
            # through value-keyed evaluator tables and inline the common
            # case of ``read`` (present, non-poison) to keep the dominant
            # opcodes free of extra Python calls.
            opv = op._value_
            counts[opv] += 1
            if op is Opcode.CONST:
                env[instr.defs[0]] = instr.imm
            elif op in (Opcode.COPY, Opcode.MOVE):
                name = instr.uses[0]
                value = env.get(name, POISON)
                if value is POISON:
                    value = read(name, instr, label)
                env[instr.defs[0]] = value
            elif (binfn := BINARY_EVAL_BY_VALUE.get(opv)) is not None:
                name = instr.uses[0]
                a = env.get(name, POISON)
                if a is POISON:
                    a = read(name, instr, label)
                name = instr.uses[1]
                b = env.get(name, POISON)
                if b is POISON:
                    b = read(name, instr, label)
                env[instr.defs[0]] = binfn(a, b)
            elif (unfn := UNARY_EVAL_BY_VALUE.get(opv)) is not None:
                name = instr.uses[0]
                a = env.get(name, POISON)
                if a is POISON:
                    a = read(name, instr, label)
                env[instr.defs[0]] = unfn(a)
            elif op is Opcode.LOAD:
                idx = read(instr.uses[0], instr, label)
                env[instr.defs[0]] = memory.setdefault(instr.imm, {}).get(idx, 0)
            elif op is Opcode.STORE:
                idx = read(instr.uses[0], instr, label)
                memory.setdefault(instr.imm, {})[idx] = read(
                    instr.uses[1], instr, label
                )
            elif op is Opcode.SPILL_ST:
                if isinstance(instr.imm, str) and instr.imm.startswith("scratch:"):
                    scratch_refs += 1
                slots[instr.imm] = read(instr.uses[0], instr, label)
            elif op is Opcode.SPILL_LD:
                if isinstance(instr.imm, str) and instr.imm.startswith("scratch:"):
                    scratch_refs += 1
                if instr.imm not in slots:
                    raise SimulationError(
                        f"reload from never-stored slot {instr.imm!r} at {label}"
                    )
                env[instr.defs[0]] = slots[instr.imm]
            elif op is Opcode.CALL:
                fnval = callees.get(instr.imm)
                if fnval is None:
                    raise SimulationError(f"unknown callee {instr.imm!r}")
                argv = [read(u, instr, label) for u in instr.uses]
                result = fnval(*argv)
                results = result if isinstance(result, tuple) else (result,)
                for dst, value in zip(instr.defs, results):
                    env[dst] = value
                for reg in instr.clobbers:
                    if reg not in instr.defs:
                        env[reg] = POISON
            elif op is Opcode.BR or op is Opcode.NOP:
                pass
            elif op is Opcode.CBR:
                cond = read(instr.uses[0], instr, label)
                next_label = block.succ_labels[0] if cond else block.succ_labels[1]
            elif op is Opcode.RET:
                returned = tuple(read(u, instr, label) for u in instr.uses)
            else:  # pragma: no cover - all opcodes handled
                raise SimulationError(f"unhandled opcode {op}")

        if label == fn.stop_label:
            finished = True
        else:
            if next_label is None:
                if not block.succ_labels:
                    raise SimulationError(
                        f"block {label} has no successors but is not stop"
                    )
                next_label = block.succ_labels[0]
            edge_counts[(label, next_label)] += 1
            label = next_label

    profile = Profile(dict(block_counts), dict(edge_counts))
    return ExecutionResult(
        returned=returned,
        arrays=memory,
        steps=steps,
        opcode_counts=Counter({Opcode(v): c for v, c in counts.items()}),
        profile=profile,
        scratch_refs=scratch_refs,
    )


def run_equivalent(
    original: Function,
    allocated: Function,
    args: Optional[Mapping[str, Any]] = None,
    arrays: Optional[Mapping[str, Sequence[Any]]] = None,
    max_steps: int = 2_000_000,
) -> Tuple[ExecutionResult, ExecutionResult]:
    """Run *original* and *allocated* on identical inputs and compare.

    Raises :class:`SimulationError` if the observable outcomes (returned
    values and final array contents) differ; returns both results so
    callers can compare memory-reference statistics.
    """
    ref = simulate(original, args=args, arrays=arrays, max_steps=max_steps)
    out = simulate(allocated, args=args, arrays=arrays, max_steps=max_steps)
    if ref.returned != out.returned:
        raise SimulationError(
            f"return mismatch: original {ref.returned} vs allocated {out.returned}"
        )
    if _canonical(ref.arrays) != _canonical(out.arrays):
        raise SimulationError(
            "final memory mismatch between original and allocated programs"
        )
    return ref, out


def _canonical(arrays: Dict[str, Dict[int, Any]]) -> Dict[str, Dict[int, Any]]:
    """Drop zero entries so sparse/dense representations compare equal."""
    return {
        name: {i: v for i, v in contents.items() if v != 0}
        for name, contents in arrays.items()
    }
