"""Post-allocation program rewriting.

Two jobs:

* :func:`rewrite_spilled` -- Chaitin-style spill materialization: rewrite
  every reference to a spilled variable through a fresh short-lived
  temporary, inserting ``SPILL_LD``/``SPILL_ST`` around the reference.  Used
  by the flat baseline allocators between coloring iterations.
* :func:`apply_assignment` -- substitute every variable by its physical
  register once a complete assignment exists, and check the result.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.analysis.liveness import compute_liveness
from repro.ir.function import Function
from repro.ir.instructions import Instr, Opcode, is_phys

def spill_slot(var: str) -> str:
    """The memory slot key for a spilled variable.

    One slot per (renamed) variable: "there is a single memory location
    associated with each spilled variable."
    """
    return f"slot:{var}"


def fresh_temp(var: str, counter: "itertools.count") -> str:
    """A fresh operand-temporary name for a spilled variable reference.

    *counter* is per ``rewrite_spilled`` call, never process-global:
    temp names must be a pure function of the input so flat-allocator
    output (the degradation ladder's fallback rungs included) is
    bit-identical across repeated allocations in one process.  No
    cross-round collision is possible: a variable spilled in round *n*
    no longer appears as an operand in round *n+1*, and re-spilled temps
    get a longer ``@t``-suffixed name.
    """
    return f"{var}@t{next(counter)}"


def rewrite_spilled(
    fn: Function, spilled: Set[str], reuse_within_block: bool = False
) -> Tuple[Function, Set[str]]:
    """Rewrite references to *spilled* variables through spill temporaries.

    Every use gets a ``SPILL_LD`` into a fresh temporary immediately before
    the instruction; every def goes to a fresh temporary followed by a
    ``SPILL_ST``.  With *reuse_within_block* a loaded value is reused by
    subsequent uses in the same block until the next definition -- the
    "simple methods within a basic block [2][6]" the paper mentions.

    Returns the rewritten copy and the set of *single-reference*
    temporaries created.  Those have one-instruction live ranges and may
    safely be given infinite spill cost in the next coloring round; temps
    extended by within-block reuse are ordinary short-lived variables and
    must remain spillable.
    """
    out = fn.clone()
    temps: Set[str] = set()
    reused: Set[str] = set()
    temp_counter = itertools.count(1)
    for block in out.blocks.values():
        new_instrs: List[Instr] = []
        cached: Dict[str, str] = {}  # spilled var -> temp currently holding it
        for instr in block.instrs:
            use_map: Dict[str, str] = {}
            for var in instr.uses:
                if var not in spilled or var in use_map:
                    continue
                if reuse_within_block and var in cached:
                    use_map[var] = cached[var]
                    reused.add(cached[var])
                    continue
                temp = fresh_temp(var, temp_counter)
                temps.add(temp)
                new_instrs.append(
                    Instr(Opcode.SPILL_LD, defs=(temp,), imm=spill_slot(var))
                )
                use_map[var] = temp
                if reuse_within_block:
                    cached[var] = temp
            def_map: Dict[str, str] = {}
            stores: List[Instr] = []
            for var in instr.defs:
                if var not in spilled:
                    continue
                temp = fresh_temp(var, temp_counter)
                temps.add(temp)
                def_map[var] = temp
                stores.append(
                    Instr(Opcode.SPILL_ST, uses=(temp,), imm=spill_slot(var))
                )
                if reuse_within_block:
                    cached[var] = temp

            if use_map or def_map:
                # defs and uses map independently: an instruction that both
                # uses and defines a spilled variable reads one temp and
                # writes another.
                new_instrs.append(_def_then_use_rewrite(instr, def_map, use_map))
            else:
                new_instrs.append(instr)
            new_instrs.extend(stores)
        block.instrs = new_instrs
    return out, temps - reused


def _def_then_use_rewrite(instr: Instr, def_map, use_map) -> Instr:
    renamed = instr.clone()
    renamed.uses = tuple(use_map.get(v, v) for v in instr.uses)
    renamed.defs = tuple(def_map.get(v, v) for v in instr.defs)
    return renamed


def apply_assignment(
    fn: Function, assignment: Mapping[str, str], strict: bool = True
) -> Function:
    """Substitute variables by their assigned physical registers.

    With *strict* every variable occurring in *fn* must be mapped to a
    physical register name; the output is checked by
    :func:`check_physical`.
    """
    referenced = set()
    for _, instr in fn.instructions():
        referenced.update(instr.defs)
        referenced.update(instr.uses)
    missing = sorted(v for v in referenced if v not in assignment)
    if strict and missing:
        raise ValueError(f"unassigned variables: {missing}")

    out = fn.clone()
    for block in out.blocks.values():
        block.instrs = [
            instr.rewrite(lambda v: assignment.get(v, v))
            for instr in block.instrs
        ]
    # Parameters not referenced anywhere (e.g. fully spilled ones, whose
    # value reaches spill code through the home slot) keep their name.
    out.params = [assignment.get(p, p) for p in fn.params]
    if strict:
        check_physical(out)
    return out


class AllocationCheckError(RuntimeError):
    """The rewritten program violates a physical-machine invariant."""


def check_physical(fn: Function, num_registers: Optional[int] = None) -> None:
    """Verify a rewritten function touches only physical registers.

    Also bounds the register pressure implied by the liveness of the
    rewritten program when *num_registers* is given (it cannot exceed it,
    since registers are the variables now, but the check documents intent
    and catches rewriter bugs that leave virtual names behind).
    """
    # A rewritten function references the same handful of registers over
    # and over; validate each distinct name once.  ``int(var[1:])`` is
    # exactly ``phys_index`` for names ``is_phys`` already accepted.
    checked: set = set()
    for block in fn.blocks.values():
        for instr in block.instrs:
            for var in instr.defs + instr.uses:
                if var in checked:
                    continue
                if not is_phys(var):
                    raise AllocationCheckError(
                        f"virtual register {var!r} survives in block "
                        f"{block.label}: {instr!r}"
                    )
                if num_registers is not None and int(var[1:]) >= num_registers:
                    raise AllocationCheckError(
                        f"register {var} out of range for machine with "
                        f"{num_registers} registers"
                    )
                checked.add(var)


def remove_self_moves(fn: Function) -> int:
    """Drop ``copy R, R`` / ``move R, R`` no-ops (successful preferencing
    makes linkage copies collapse onto themselves).  Returns the count."""
    removed = 0
    for block in fn.blocks.values():
        kept = []
        for instr in block.instrs:
            if (
                instr.op in (Opcode.COPY, Opcode.MOVE)
                and instr.defs
                and instr.uses
                and instr.defs[0] == instr.uses[0]
            ):
                removed += 1
                continue
            kept.append(instr)
        block.instrs = kept
    return removed


def count_static_spill_code(fn: Function) -> Dict[str, int]:
    """Static counts of allocation-inserted instructions."""
    loads = stores = moves = 0
    for block in fn.blocks.values():
        for instr in block.instrs:
            if instr.op is Opcode.SPILL_LD:
                loads += 1
            elif instr.op is Opcode.SPILL_ST:
                stores += 1
            elif instr.op is Opcode.MOVE:
                moves += 1
    return {"spill_loads": loads, "spill_stores": stores, "moves": moves}
