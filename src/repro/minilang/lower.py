"""Lowering MiniLang ASTs to the toy IR.

Semantics notes:

* Variables are lexically scoped; an inner ``var`` shadows an outer one
  (shadowed variables get fresh IR names).
* ``&&`` / ``||`` are *non-short-circuit* (they lower to the IR's AND/OR
  instructions); this keeps conditions as plain values, which is what the
  toy IR's CBR consumes.
* Arrays need no declaration -- they are the simulator's unbounded
  zero-initialized memories and live in a separate namespace from scalars.
* Statements after a ``break`` or ``return`` in the same block are
  rejected as unreachable (the IR validator requires reachable blocks).
* A function body that can fall off the end implicitly returns 0.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instructions import Opcode, make_binary, make_unary
from repro.minilang import ast_nodes as ast
from repro.minilang.lexer import MiniLangError

_BINARY_OPCODES = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.MOD,
    "<": Opcode.CMP_LT,
    "<=": Opcode.CMP_LE,
    "==": Opcode.CMP_EQ,
    "!=": Opcode.CMP_NE,
    ">": Opcode.CMP_GT,
    ">=": Opcode.CMP_GE,
    "&&": Opcode.AND,
    "||": Opcode.OR,
}


class _Lowerer:
    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.builder = FunctionBuilder(program.name, params=program.params)
        self._temp = itertools.count(1)
        self._label = itertools.count(1)
        self._scopes: List[Dict[str, str]] = [
            {p: p for p in program.params}
        ]
        self._shadow = itertools.count(1)
        self._loop_exits: List[str] = []

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def fresh_temp(self) -> str:
        return f".t{next(self._temp)}"

    def fresh_label(self, prefix: str) -> str:
        return f"{prefix}{next(self._label)}"

    def lookup(self, name: str, line: int) -> str:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        raise MiniLangError(f"undeclared variable {name!r}", line)

    def declare(self, name: str, line: int) -> str:
        scope = self._scopes[-1]
        if name in scope:
            raise MiniLangError(
                f"variable {name!r} already declared in this scope", line
            )
        shadowed = any(name in s for s in self._scopes[:-1])
        ir_name = f"{name}.s{next(self._shadow)}" if shadowed else name
        scope[name] = ir_name
        return ir_name

    # ------------------------------------------------------------------
    # expressions (return the IR variable holding the value)
    # ------------------------------------------------------------------
    def expr(self, node: ast.Node) -> str:
        b = self.builder
        if isinstance(node, ast.Num):
            temp = self.fresh_temp()
            b.const(temp, node.value)
            return temp
        if isinstance(node, ast.Var):
            return self.lookup(node.name, node.line)
        if isinstance(node, ast.ArrayLoad):
            index = self.expr(node.index)
            temp = self.fresh_temp()
            b.load(temp, node.array, index)
            return temp
        if isinstance(node, ast.Call):
            args = [self.expr(a) for a in node.args]
            temp = self.fresh_temp()
            b.call([temp], node.callee, args)
            return temp
        if isinstance(node, ast.Unary):
            operand = self.expr(node.operand)
            temp = self.fresh_temp()
            op = Opcode.NEG if node.op == "-" else Opcode.NOT
            b.emit(make_unary(op, temp, operand))
            return temp
        if isinstance(node, ast.Binary):
            left = self.expr(node.left)
            right = self.expr(node.right)
            temp = self.fresh_temp()
            opcode = _BINARY_OPCODES.get(node.op)
            if opcode is None:
                raise MiniLangError(f"unknown operator {node.op!r}", node.line)
            b.emit(make_binary(opcode, temp, left, right))
            return temp
        raise MiniLangError(
            f"cannot lower expression {type(node).__name__}", node.line
        )

    # ------------------------------------------------------------------
    # statements; return True if control *definitely* left the block
    # ------------------------------------------------------------------
    def body(self, statements: List[ast.Node]) -> bool:
        self._scopes.append({})
        try:
            for i, stmt in enumerate(statements):
                terminated = self.statement(stmt)
                if terminated:
                    if i + 1 < len(statements):
                        raise MiniLangError(
                            "unreachable code after break/return",
                            statements[i + 1].line,
                        )
                    return True
            return False
        finally:
            self._scopes.pop()

    def statement(self, node: ast.Node) -> bool:
        b = self.builder
        if isinstance(node, ast.VarDecl):
            value = self.expr(node.value)
            b.copy(self.declare(node.name, node.line), value)
            return False
        if isinstance(node, ast.Assign):
            target = self.lookup(node.name, node.line)
            value = self.expr(node.value)
            b.copy(target, value)
            return False
        if isinstance(node, ast.ArrayStore):
            index = self.expr(node.index)
            value = self.expr(node.value)
            b.store(node.array, index, value)
            return False
        if isinstance(node, ast.Return):
            value = self.expr(node.value)
            b.ret(value)
            return True
        if isinstance(node, ast.Break):
            if not self._loop_exits:
                raise MiniLangError("break outside a loop", node.line)
            b.br(self._loop_exits[-1])
            return True
        if isinstance(node, ast.If):
            return self._lower_if(node)
        if isinstance(node, ast.While):
            return self._lower_while(node)
        raise MiniLangError(
            f"cannot lower statement {type(node).__name__}", node.line
        )

    def _lower_if(self, node: ast.If) -> bool:
        b = self.builder
        cond = self.expr(node.cond)
        then_label = self.fresh_label("then")
        join_label = self.fresh_label("join")
        else_label = self.fresh_label("else") if node.else_body else join_label
        b.cbr(cond, then_label, else_label)

        b.block(then_label)
        then_done = self.body(node.then_body)
        if not then_done:
            b.br(join_label)

        else_done = False
        if node.else_body:
            b.block(else_label)
            else_done = self.body(node.else_body)
            if not else_done:
                b.br(join_label)

        if then_done and (node.else_body and else_done):
            # Neither arm falls through: no join block exists.
            return True
        b.block(join_label)
        return False

    def _lower_while(self, node: ast.While) -> bool:
        b = self.builder
        head = self.fresh_label("while")
        body_label = self.fresh_label("wbody")
        exit_label = self.fresh_label("wexit")
        b.br(head)
        b.block(head)
        cond = self.expr(node.cond)
        b.cbr(cond, body_label, exit_label)
        b.block(body_label)
        self._loop_exits.append(exit_label)
        terminated = self.body(node.body)
        self._loop_exits.pop()
        if not terminated:
            b.br(head)
        b.block(exit_label)
        return False

    # ------------------------------------------------------------------
    def lower(self) -> Function:
        b = self.builder
        b.block(self.fresh_label("entry"))
        terminated = False
        for i, stmt in enumerate(self.program.body):
            terminated = self.statement(stmt)
            if terminated and i + 1 < len(self.program.body):
                raise MiniLangError(
                    "unreachable code after break/return",
                    self.program.body[i + 1].line,
                )
        if not terminated:
            zero = self.fresh_temp()
            b.const(zero, 0)
            b.ret(zero)
        return b.finish()


def lower(program: ast.Program) -> Function:
    """Lower a parsed program to an IR function."""
    return _Lowerer(program).lower()
