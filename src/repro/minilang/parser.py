"""MiniLang recursive-descent parser."""

from __future__ import annotations

from typing import List

from repro.minilang import ast_nodes as ast
from repro.minilang.lexer import MiniLangError, Token

_CMP_OPS = ("<", "<=", "==", "!=", ">", ">=")
_ADD_OPS = ("+", "-")
_MUL_OPS = ("*", "/", "%")

#: Maximum combined statement/expression nesting depth.  Recursive
#: descent costs up to ~8 interpreter frames per level (the precedence
#: chain), so 64 keeps the worst case far below CPython's recursion
#: limit: adversarial inputs get a classified :class:`MiniLangError`,
#: never a raw ``RecursionError``.  Real programs nest nowhere near it.
MAX_PARSE_DEPTH = 64


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._depth = 0

    def _enter(self, line: int) -> None:
        self._depth += 1
        if self._depth > MAX_PARSE_DEPTH:
            raise MiniLangError(
                f"nesting exceeds the parser depth limit "
                f"({MAX_PARSE_DEPTH})", line,
            )

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self._pos += 1
        return token

    def expect(self, kind: str) -> Token:
        if self.current.kind != kind:
            raise MiniLangError(
                f"expected {kind!r}, found {self.current.kind!r}",
                self.current.line,
            )
        return self.advance()

    def accept(self, kind: str) -> bool:
        if self.current.kind == kind:
            self.advance()
            return True
        return False

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def program(self) -> ast.Program:
        line = self.current.line
        self.expect("func")
        name = self.expect("ident").value
        self.expect("(")
        params: List[str] = []
        if self.current.kind != ")":
            params.append(self.expect("ident").value)
            while self.accept(","):
                params.append(self.expect("ident").value)
        self.expect(")")
        body = self.block()
        self.expect("eof")
        return ast.Program(line=line, name=name, params=params, body=body)

    def block(self) -> List[ast.Node]:
        self.expect("{")
        statements: List[ast.Node] = []
        while self.current.kind != "}":
            statements.append(self.statement())
        self.expect("}")
        return statements

    def statement(self) -> ast.Node:
        self._enter(self.current.line)
        try:
            return self._statement()
        finally:
            self._depth -= 1

    def _statement(self) -> ast.Node:
        token = self.current
        if token.kind == "var":
            self.advance()
            name = self.expect("ident").value
            self.expect("=")
            value = self.expression()
            self.expect(";")
            return ast.VarDecl(line=token.line, name=name, value=value)
        if token.kind == "if":
            self.advance()
            self.expect("(")
            cond = self.expression()
            self.expect(")")
            then_body = self.block()
            else_body: List[ast.Node] = []
            if self.accept("else"):
                if self.current.kind == "if":  # else-if chains
                    else_body = [self.statement()]
                else:
                    else_body = self.block()
            return ast.If(
                line=token.line, cond=cond,
                then_body=then_body, else_body=else_body,
            )
        if token.kind == "while":
            self.advance()
            self.expect("(")
            cond = self.expression()
            self.expect(")")
            body = self.block()
            return ast.While(line=token.line, cond=cond, body=body)
        if token.kind == "break":
            self.advance()
            self.expect(";")
            return ast.Break(line=token.line)
        if token.kind == "return":
            self.advance()
            value = self.expression()
            self.expect(";")
            return ast.Return(line=token.line, value=value)
        if token.kind == "ident":
            name = self.advance().value
            if self.accept("["):
                index = self.expression()
                self.expect("]")
                self.expect("=")
                value = self.expression()
                self.expect(";")
                return ast.ArrayStore(
                    line=token.line, array=name, index=index, value=value
                )
            self.expect("=")
            value = self.expression()
            self.expect(";")
            return ast.Assign(line=token.line, name=name, value=value)
        raise MiniLangError(
            f"unexpected token {token.kind!r} at statement start", token.line
        )

    # expression precedence: || < && < comparison < additive < multiplicative
    def expression(self) -> ast.Node:
        self._enter(self.current.line)
        try:
            return self._or()
        finally:
            self._depth -= 1

    def _or(self) -> ast.Node:
        node = self._and()
        while self.current.kind == "||":
            line = self.advance().line
            node = ast.Binary(line=line, op="||", left=node, right=self._and())
        return node

    def _and(self) -> ast.Node:
        node = self._cmp()
        while self.current.kind == "&&":
            line = self.advance().line
            node = ast.Binary(line=line, op="&&", left=node, right=self._cmp())
        return node

    def _cmp(self) -> ast.Node:
        node = self._add()
        if self.current.kind in _CMP_OPS:
            op = self.advance()
            node = ast.Binary(
                line=op.line, op=op.kind, left=node, right=self._add()
            )
        return node

    def _add(self) -> ast.Node:
        node = self._mul()
        while self.current.kind in _ADD_OPS:
            op = self.advance()
            node = ast.Binary(
                line=op.line, op=op.kind, left=node, right=self._mul()
            )
        return node

    def _mul(self) -> ast.Node:
        node = self._unary()
        while self.current.kind in _MUL_OPS:
            op = self.advance()
            node = ast.Binary(
                line=op.line, op=op.kind, left=node, right=self._unary()
            )
        return node

    def _unary(self) -> ast.Node:
        token = self.current
        if token.kind in ("-", "!"):
            # Counted against the depth limit: `----x` chains recurse
            # here without passing through expression().
            self._enter(token.line)
            try:
                self.advance()
                return ast.Unary(line=token.line, op=token.kind,
                                 operand=self._unary())
            finally:
                self._depth -= 1
        return self._primary()

    def _primary(self) -> ast.Node:
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.Num(line=token.line, value=token.value)
        if token.kind == "(":
            self.advance()
            node = self.expression()
            self.expect(")")
            return node
        if token.kind == "ident":
            name = self.advance().value
            if self.accept("["):
                index = self.expression()
                self.expect("]")
                return ast.ArrayLoad(line=token.line, array=name, index=index)
            if self.accept("("):
                args: List[ast.Node] = []
                if self.current.kind != ")":
                    args.append(self.expression())
                    while self.accept(","):
                        args.append(self.expression())
                self.expect(")")
                return ast.Call(line=token.line, callee=name, args=args)
            return ast.Var(line=token.line, name=name)
        raise MiniLangError(
            f"unexpected token {token.kind!r} in expression", token.line
        )


def parse(tokens: List[Token]) -> ast.Program:
    """Parse a token list into a :class:`~repro.minilang.ast_nodes.Program`."""
    return _Parser(tokens).program()
