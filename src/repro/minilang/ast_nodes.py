"""MiniLang abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Node:
    line: int = 0


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------
@dataclass
class Num(Node):
    value: int = 0


@dataclass
class Var(Node):
    name: str = ""


@dataclass
class ArrayLoad(Node):
    array: str = ""
    index: "Node" = None


@dataclass
class Call(Node):
    callee: str = ""
    args: List["Node"] = field(default_factory=list)


@dataclass
class Unary(Node):
    op: str = ""
    operand: "Node" = None


@dataclass
class Binary(Node):
    op: str = ""
    left: "Node" = None
    right: "Node" = None


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------
@dataclass
class VarDecl(Node):
    name: str = ""
    value: Node = None


@dataclass
class Assign(Node):
    name: str = ""
    value: Node = None


@dataclass
class ArrayStore(Node):
    array: str = ""
    index: Node = None
    value: Node = None


@dataclass
class If(Node):
    cond: Node = None
    then_body: List[Node] = field(default_factory=list)
    else_body: List[Node] = field(default_factory=list)


@dataclass
class While(Node):
    cond: Node = None
    body: List[Node] = field(default_factory=list)


@dataclass
class Break(Node):
    pass


@dataclass
class Return(Node):
    value: Node = None


@dataclass
class Program(Node):
    name: str = ""
    params: List[str] = field(default_factory=list)
    body: List[Node] = field(default_factory=list)
