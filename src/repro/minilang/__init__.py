"""MiniLang: a small imperative front end for the toy IR.

The paper's allocator consumes a CFG; MiniLang provides a convenient way to
produce realistic ones from source text::

    func dot(n) {
        var i = 0;
        var s = 0;
        while (i < n) {
            s = s + A[i] * B[i];
            i = i + 1;
        }
        return s;
    }

Pipeline: :func:`tokenize` -> :func:`parse` (AST) -> :func:`lower`
(IR function).  :func:`compile_source` runs all three.
"""

from repro.minilang.lexer import MiniLangError, Token, tokenize
from repro.minilang.parser import parse
from repro.minilang.lower import lower
from repro.minilang import ast_nodes as ast


def compile_source(text: str):
    """Compile MiniLang source to an IR :class:`~repro.ir.function.Function`."""
    return lower(parse(tokenize(text)))


__all__ = [
    "MiniLangError",
    "Token",
    "tokenize",
    "parse",
    "lower",
    "compile_source",
    "ast",
]
