"""MiniLang tokenizer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = {"func", "var", "if", "else", "while", "break", "return"}

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<=", ">=", "==", "!=", "&&", "||",
    "<", ">", "+", "-", "*", "/", "%", "!", "=",
    "(", ")", "{", "}", "[", "]", ",", ";",
]


class MiniLangError(ValueError):
    """Raised on lexical, syntactic or semantic errors, with a line number."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is ``"int"``, ``"ident"``, a keyword, an operator literal, or
    ``"eof"``; ``value`` carries the integer value or identifier text.
    """

    kind: str
    value: object
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind!r}, {self.value!r}, line {self.line})"


def tokenize(text: str) -> List[Token]:
    """Tokenize *text*; comments run from ``#`` or ``//`` to end of line."""
    tokens: List[Token] = []
    line = 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "#" or text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            start = i
            while i < n and text[i].isdigit():
                i += 1
            tokens.append(Token("int", int(text[start:i]), line))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            kind = word if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line))
            continue
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(op, op, line))
                i += len(op)
                break
        else:
            raise MiniLangError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", None, line))
    return tokens
