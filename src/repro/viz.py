"""Graphviz (DOT) rendering of the library's structures.

Pure text generation -- no graphviz dependency; feed the output to ``dot``:

    python -m repro tiles prog.ir   # ASCII
    python - <<'PY'
    from repro import parse_function
    from repro.viz import cfg_to_dot
    print(cfg_to_dot(parse_function(open("prog.ir").read())))
    PY
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.ir.function import Function
from repro.graph.interference import InterferenceGraph
from repro.tiles.tile import TileTree


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def cfg_to_dot(fn: Function, include_instrs: bool = True) -> str:
    """The control flow graph as a DOT digraph."""
    lines = [f'digraph "{_escape(fn.name)}" {{', "  node [shape=box];"]
    for label in sorted(fn.blocks):
        block = fn.blocks[label]
        if include_instrs:
            from repro.ir.printer import format_instr

            body = "\\l".join(
                _escape(format_instr(i)) for i in block.instrs
            )
            text = f"{_escape(label)}:\\l{body}\\l" if body else _escape(label)
        else:
            text = _escape(label)
        lines.append(f'  "{_escape(label)}" [label="{text}"];')
    for src, dst in sorted(fn.edges()):
        lines.append(f'  "{_escape(src)}" -> "{_escape(dst)}";')
    lines.append("}")
    return "\n".join(lines)


def tile_tree_to_dot(tree: TileTree) -> str:
    """The tile tree as nested DOT clusters over the CFG's blocks."""
    lines = [f'digraph "{_escape(tree.fn.name)}_tiles" {{',
             "  compound=true;", "  node [shape=box];"]

    def emit(tile, indent: int) -> None:
        pad = "  " * indent
        lines.append(f'{pad}subgraph "cluster_{tile.tid}" {{')
        lines.append(
            f'{pad}  label="tile #{tile.tid} [{_escape(tile.kind)}]";'
        )
        for label in sorted(tile.own_blocks()):
            lines.append(f'{pad}  "{_escape(label)}";')
        for child in tile.children:
            emit(child, indent + 1)
        lines.append(f"{pad}}}")

    emit(tree.root, 1)
    for src, dst in sorted(tree.fn.edges()):
        lines.append(f'  "{_escape(src)}" -> "{_escape(dst)}";')
    lines.append("}")
    return "\n".join(lines)


def interference_to_dot(
    graph: InterferenceGraph,
    assignment: Optional[Mapping[str, str]] = None,
) -> str:
    """The conflict graph as an undirected DOT graph; nodes are labelled
    with their assigned color/register when *assignment* is given."""
    lines = ["graph interference {", "  node [shape=ellipse];"]
    for node in sorted(graph.nodes()):
        label = _escape(node)
        if assignment and node in assignment:
            label = f"{label}\\n{_escape(str(assignment[node]))}"
        lines.append(f'  "{_escape(node)}" [label="{label}"];')
    for a, b in sorted(graph.edges()):
        lines.append(f'  "{_escape(a)}" -- "{_escape(b)}";')
    lines.append("}")
    return "\n".join(lines)
