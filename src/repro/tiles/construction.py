"""Tile-tree construction (paper Appendix A).

The pipeline:

1. Identify the loop structure (intervals); every loop becomes a tile.
   Irreducible regions become a single tile, per the paper's summary-loop-top
   treatment.
2. Within each interval, build the coalesced graph ``G_I`` (inner loops
   collapsed to single nodes, self loops and interval exit edges ignored),
   compute dominators and post-dominators, and extract the equivalence
   classes ``S_i`` "totally ordered by both the dominator and post-dominator
   relations"; each ``S_i`` is extended to ``S'_i`` by adding nodes dominated
   by a member and post-dominated by a member.  Each ``S'_i`` becomes a
   conditional tile.
3. Tiles are arranged by containment; a synthetic *body* tile directly under
   the root keeps ``blocks(root) = {start, stop}`` (condition 4).
4. The Figure 3 fix-up inserts empty blocks until edge conditions 2-3 hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.analysis.dominators import compute_idoms
from repro.analysis.loops import Loop, build_loop_forest
from repro.ir.function import Function
from repro.tiles.fixup import FixupStats, fixup_tile_tree
from repro.tiles.tile import Tile, TileTree

_ENTRY = "<entry>"
_EXIT = "<exit>"


@dataclass(frozen=True)
class TileTreeOptions:
    """Construction knobs.

    Attributes:
        conditional_tiles: include the ``S'_i`` conditional regions.  With
            False only loops become tiles -- the ablation the paper argues
            against in section 2 ("By including the conditionally executed
            portions ... the size of the interference graphs are further
            reduced and the placement of spill code is improved").
        max_tile_width: if set, conditional tiles wider than this many
            abstract nodes are split along the dominance order, the paper's
            "natural way to break tiles ... partition large S_i into
            disjoint pieces where all nodes in one piece dominate those in
            another".
    """

    conditional_tiles: bool = True
    max_tile_width: Optional[int] = None


@dataclass
class TileTreeBuild:
    """Result of construction: the tree plus fix-up statistics."""

    tree: TileTree
    fixup: FixupStats


class _AbstractNode:
    """A node of a coalesced interval graph: a block or a whole inner loop."""

    __slots__ = ("key", "blocks", "loop")

    def __init__(self, key: Hashable, blocks: FrozenSet[str], loop: Optional[Loop]):
        self.key = key
        self.blocks = blocks
        self.loop = loop


def build_tile_tree(
    fn: Function, options: Optional[TileTreeOptions] = None
) -> TileTree:
    """Construct a legal tile tree for *fn* (fix-up included)."""
    return build_tile_tree_detailed(fn, options).tree


def build_tile_tree_detailed(
    fn: Function, options: Optional[TileTreeOptions] = None
) -> TileTreeBuild:
    """Like :func:`build_tile_tree` but also returns fix-up statistics."""
    options = options or TileTreeOptions()
    forest = build_loop_forest(fn)

    root = Tile(set(fn.blocks), kind="root")
    body_blocks = set(fn.blocks) - {fn.start_label, fn.stop_label}
    if body_blocks:
        body = Tile(body_blocks, kind="body")
        _link(root, body)
        top_loops = [l for l in forest.top_level]
        in_loop = set()
        for loop in top_loops:
            in_loop |= loop.blocks
        scope_own = body_blocks - in_loop
        _structure_scope(body, scope_own, top_loops, fn, options)

    tree = TileTree(fn, root)
    stats = fixup_tile_tree(tree)
    return TileTreeBuild(tree, stats)


def _link(parent: Tile, child: Tile) -> None:
    child.parent = parent
    parent.children.append(child)


def _structure_scope(
    scope_tile: Tile,
    own_blocks: Set[str],
    loops: Sequence[Loop],
    fn: Function,
    options: TileTreeOptions,
) -> None:
    """Populate *scope_tile* with loop tiles and conditional tiles.

    ``own_blocks`` are the scope's blocks not inside any of *loops*; the
    scope covers ``own_blocks ∪ union(loop.blocks)``.
    """
    nodes: List[_AbstractNode] = []
    block_to_node: Dict[str, _AbstractNode] = {}
    for loop in loops:
        node = _AbstractNode(("loop", loop.header), frozenset(loop.blocks), loop)
        nodes.append(node)
        for label in loop.blocks:
            block_to_node[label] = node
    for label in sorted(own_blocks):
        node = _AbstractNode(label, frozenset([label]), None)
        nodes.append(node)
        block_to_node[label] = node

    # Conditional (SESE chain) regions over the coalesced scope graph.
    candidate_sets: List[Set[str]] = []
    if options.conditional_tiles and len(nodes) > 2:
        candidate_sets = _conditional_regions(nodes, block_to_node, fn, options)

    scope_all = set(own_blocks)
    for loop in loops:
        scope_all |= loop.blocks

    # Materialize tiles: loops always, conditional candidates if proper.
    pending: List[Tuple[Tile, Optional[Loop]]] = []
    loop_sets = {frozenset(loop.blocks) for loop in loops}
    for loop in loops:
        kind = "irreducible" if loop.irreducible else "loop"
        pending.append((Tile(loop.blocks, kind=kind, header=loop.header), loop))
    seen_sets = set(loop_sets)
    for cand in candidate_sets:
        fz = frozenset(cand)
        if fz in seen_sets or fz == frozenset(scope_all) or len(fz) < 2:
            continue
        seen_sets.add(fz)
        pending.append((Tile(cand, kind="cond"), None))

    _attach_by_containment(scope_tile, pending)

    # Recurse into loop bodies.
    for tile, loop in pending:
        if loop is None:
            continue
        inner_own = loop.own_blocks()
        _structure_scope(tile, inner_own, loop.children, fn, options)


def _attach_by_containment(
    scope_tile: Tile, pending: List[Tuple[Tile, Optional[Loop]]]
) -> None:
    """Arrange *pending* tiles under *scope_tile* by block-set containment.

    Candidate sets produced by :func:`_conditional_regions` are nested or
    disjoint (SESE region chains); loops nest cleanly with them because a
    conditional region either wholly contains a loop's coalesced node or
    excludes it.  Partial overlaps cannot arise by construction, but we
    assert against them to fail loudly rather than build an illegal tree.
    """
    ordered = sorted(pending, key=lambda pair: len(pair[0].all_blocks), reverse=True)
    placed: List[Tile] = []
    for tile, _ in ordered:
        best: Optional[Tile] = None
        for other in placed:
            if tile.all_blocks < other.all_blocks:
                # Track the smallest strict superset (processing order makes
                # every placed overlap a superset or disjoint).
                if best is None or other.all_blocks < best.all_blocks:
                    best = other
            elif tile.all_blocks & other.all_blocks:
                raise AssertionError(
                    "partially overlapping tile candidates: "
                    f"{sorted(tile.all_blocks)} vs {sorted(other.all_blocks)}"
                )
        _link(best if best is not None else scope_tile, tile)
        placed.append(tile)


def _conditional_regions(
    nodes: List[_AbstractNode],
    block_to_node: Dict[str, _AbstractNode],
    fn: Function,
    options: TileTreeOptions,
) -> List[Set[str]]:
    """The S'_i region block-sets of one coalesced scope graph."""
    scope_blocks: Set[str] = set(block_to_node)

    succs: Dict[Hashable, List[Hashable]] = {node.key: [] for node in nodes}
    succs[_ENTRY] = []
    succs[_EXIT] = []
    entry_nodes: Set[Hashable] = set()
    exit_nodes: Set[Hashable] = set()

    preds_map = fn.predecessors_map()
    for node in nodes:
        for label in node.blocks:
            for pred in preds_map[label]:
                if pred not in scope_blocks:
                    entry_nodes.add(node.key)
            for succ in fn.blocks[label].succ_labels:
                if succ in scope_blocks:
                    target = block_to_node[succ].key
                    if target != node.key and target not in succs[node.key]:
                        succs[node.key].append(target)
                else:
                    exit_nodes.add(node.key)

    # Dead-end nodes (all successors internal to the node, e.g. a loop whose
    # only outgoing edges were self edges) must still reach the virtual exit
    # or post-dominance over the scope graph would be undefined for them.
    for node in nodes:
        if not succs[node.key] and node.key not in exit_nodes:
            exit_nodes.add(node.key)

    for key in sorted(entry_nodes, key=str):
        succs[_ENTRY].append(key)
    for key in sorted(exit_nodes, key=str):
        succs[key] = succs.get(key, [])
        succs[key].append(_EXIT)

    dom = compute_idoms(_ENTRY, succs)

    rsuccs: Dict[Hashable, List[Hashable]] = {key: [] for key in succs}
    for key, targets in succs.items():
        for target in targets:
            rsuccs.setdefault(target, []).append(key)
    pdom = compute_idoms(_EXIT, rsuccs)

    real_keys = [
        node.key for node in nodes if node.key in dom and node.key in pdom
    ]

    # Equivalence classes: u ~ v iff u dominates v and v post-dominates u
    # (or vice versa).  The relation is transitive (dominator ancestors of
    # a node are totally ordered, which forces u~w from u~v and v~w), so
    # union-find only needs each node's *nearest* qualifying pdom ancestor:
    # farther partners are reached through that ancestor's own walk.  This
    # keeps each walk O(distance to partner) instead of visiting every
    # qualifying pair -- quadratic on long sequential chains.
    parent_of: Dict[Hashable, Hashable] = {k: k for k in real_keys}

    def find(x: Hashable) -> Hashable:
        while parent_of[x] != x:
            parent_of[x] = parent_of[parent_of[x]]
            x = parent_of[x]
        return x

    def union(a: Hashable, b: Hashable) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent_of[ra] = rb

    real_set = set(real_keys)
    for u in real_keys:
        for v in pdom.walk_up(u):
            if v is not u and v in real_set and dom.dominates(u, v):
                union(u, v)
                break

    # Grouped by first-seen member so the class order (and therefore the
    # candidate order) is independent of which element union-find happens
    # to pick as representative.
    classes: Dict[Hashable, List[Hashable]] = {}
    for key in real_keys:
        classes.setdefault(find(key), []).append(key)

    key_to_node = {node.key: node for node in nodes}
    out: List[Set[str]] = []
    for members in classes.values():
        # S'_i: members plus nodes dominated by some member and
        # post-dominated by some member.  The class is totally ordered by
        # both relations, so "some member dominates key" collapses to one
        # O(1) interval check against the dominance-topmost member
        # (symmetrically for post-dominance).
        extended = set(members)
        top_dom = min(members, key=dom.depth)
        top_pdom = min(members, key=pdom.depth)
        for key in real_keys:
            if key in extended:
                continue
            if dom.dominates(top_dom, key) and pdom.dominates(top_pdom, key):
                extended.add(key)
        if len(extended) < 2:
            continue
        pieces = [extended]
        if options.max_tile_width and len(members) > options.max_tile_width:
            # "It is desirable to control the size of blocks(t) plus the
            # number of subtiles of t ... partition large S_i into disjoint
            # pieces where all nodes in one piece dominate those in
            # another."  This also applies when the class spans the whole
            # scope (a long chain of sequential regions).
            pieces = _split_wide_class(members, extended, dom, options.max_tile_width)
        if len(pieces) == 1 and len(extended) == len(real_keys):
            # Identical to the enclosing scope: no structure gained.
            continue
        for piece in pieces:
            if len(piece) == len(real_keys):
                continue
            blocks: Set[str] = set()
            for key in piece:
                blocks |= set(key_to_node[key].blocks)
            out.append(blocks)
    return out


def _split_wide_class(
    members: List[Hashable], extended: Set[Hashable], dom, width: int
) -> List[Set[Hashable]]:
    """Partition a wide S_i chain into dominance-ordered segments.

    The class members form a chain under dominance; we cut the chain into
    segments of at most *width* members and give each segment the extension
    nodes dominated by its first member and not by the next segment's first
    member ("all nodes in one piece dominate those in another").  Chunking
    repeats at geometrically growing widths (width, width^2, ...) so long
    chains become a balanced hierarchy rather than a flat list of segments
    -- keeping blocks(t) *plus the number of subtiles* bounded, which is
    what the paper's size-control paragraph asks for.
    """
    chain = sorted(members, key=lambda k: dom.depth(k))
    extras = [k for k in extended if k not in set(members)]
    out: List[Set[Hashable]] = []
    level_width = width
    while level_width < len(chain):
        segments = [
            chain[i:i + level_width]
            for i in range(0, len(chain), level_width)
        ]
        for idx, segment in enumerate(segments):
            piece = set(segment)
            nxt = segments[idx + 1][0] if idx + 1 < len(segments) else None
            for key in extras:
                if any(dom.dominates(m, key) for m in segment) and (
                    nxt is None or not dom.dominates(nxt, key)
                ):
                    piece.add(key)
            if len(piece) >= 2:
                out.append(piece)
        level_width *= width
    return out if out else [extended]
