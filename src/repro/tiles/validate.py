"""Legality checking for tile trees (the four conditions of section 2)."""

from __future__ import annotations

from typing import List, Tuple

from repro.tiles.tile import Tile, TileTree


class TileTreeError(ValueError):
    """Raised when a tile tree violates a legality condition."""


def edge_violations(tree: TileTree) -> List[Tuple[str, str, str]]:
    """Edges violating conditions 2 or 3, with a reason string.

    Conditions 2 and 3 jointly require every edge to connect blocks at
    adjacent tile levels: for edge ``(n, m)`` with smallest tiles ``t(n)``
    and ``t(m)``, one of the following must hold:

    * ``t(n) is t(m)``                      (edge within one tile level),
    * ``parent(t(m)) is t(n)``              (entry edge, one level down),
    * ``parent(t(n)) is t(m)``              (exit edge, one level up).

    This pairwise formulation is equivalent to the paper's universally
    quantified conditions: since ``n ∈ blocks(t)`` iff ``t = t(n)``, the
    requirement "``n ∈ t`` or ``n ∈ blocks(parent(t))``" for *every* tile
    ``t ∋ m`` collapses to the three cases above.
    """
    violations: List[Tuple[str, str, str]] = []
    for src, dst in tree.fn.edges():
        t_src = tree.tile_of(src)
        t_dst = tree.tile_of(dst)
        if t_src is t_dst:
            continue
        if t_dst.parent is t_src:
            continue
        if t_src.parent is t_dst:
            continue
        violations.append(
            (
                src,
                dst,
                f"edge spans non-adjacent tiles #{t_src.tid} -> #{t_dst.tid}",
            )
        )
    return violations


def validate_tile_tree(tree: TileTree) -> None:
    """Raise :class:`TileTreeError` unless *tree* is a legal tile tree.

    Checks, in order: coverage, proper nesting (condition 1), parent/child
    link consistency, the root-tile condition 4, and the edge conditions
    2-3 via :func:`edge_violations`.
    """
    fn = tree.fn
    all_labels = set(fn.blocks)

    if tree.root.all_blocks != all_labels:
        missing = all_labels - tree.root.all_blocks
        extra = tree.root.all_blocks - all_labels
        raise TileTreeError(
            f"root tile must cover the function; missing={sorted(missing)}, "
            f"stale={sorted(extra)}"
        )

    tiles = tree.tiles()
    for tile in tiles:
        for child in tile.children:
            if child.parent is not tile:
                raise TileTreeError(
                    f"tile #{child.tid} has inconsistent parent link"
                )
            if not child.all_blocks <= tile.all_blocks:
                raise TileTreeError(
                    f"child tile #{child.tid} not a subset of parent #{tile.tid}"
                )
            if not child.all_blocks < tile.all_blocks:
                raise TileTreeError(
                    f"child tile #{child.tid} equals its parent #{tile.tid}"
                )

    # Condition 1: pairwise disjoint-or-nested.  Nesting is structural via
    # the tree, so it suffices that siblings are disjoint.
    for tile in tiles:
        for i, a in enumerate(tile.children):
            for b in tile.children[i + 1:]:
                overlap = a.all_blocks & b.all_blocks
                if overlap:
                    raise TileTreeError(
                        f"sibling tiles #{a.tid} and #{b.tid} overlap on "
                        f"{sorted(overlap)}"
                    )

    # Every block must be owned by exactly one tile.
    owned = {}
    for tile in tiles:
        for label in tile.own_blocks():
            if label in owned:
                raise TileTreeError(
                    f"block {label} owned by tiles #{owned[label]} and #{tile.tid}"
                )
            owned[label] = tile.tid
    unowned = all_labels - set(owned)
    if unowned:
        raise TileTreeError(f"blocks owned by no tile: {sorted(unowned)}")

    # Condition 4: blocks(root) == {start, stop}.
    root_own = tree.root.own_blocks()
    expected = {fn.start_label, fn.stop_label}
    if root_own != expected:
        raise TileTreeError(
            f"blocks(root) must be {sorted(expected)}, got {sorted(root_own)}"
        )

    violations = edge_violations(tree)
    if violations:
        src, dst, reason = violations[0]
        raise TileTreeError(
            f"{len(violations)} edge violation(s); first: ({src} -> {dst}) {reason}"
        )
