"""Tile and tile-tree data structures.

A *tile* is a set of basic blocks; a *tile tree* is a collection of tiles
covering the program where any two tiles are disjoint or nested (paper
section 2).  ``blocks(t)`` -- the blocks belonging to *t* but to none of its
children -- is the level at which tile *t* itself operates: its references,
its conflict graph, its spill decisions.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple


class Tile:
    """One node of a tile tree.

    Attributes:
        tid: stable integer id (creation order; root is 0 after building).
        all_blocks: every block label contained in this tile, including
            those owned by descendant tiles.
        parent / children: tree links.
        kind: provenance tag -- ``"root"``, ``"body"``, ``"loop"``,
            ``"cond"`` (conditional/SESE region) or ``"irreducible"``;
            informational only.
        header: for loop tiles, the loop-top block label.
    """

    _ids = itertools.count()

    def __init__(
        self,
        all_blocks: Iterable[str],
        kind: str = "cond",
        header: Optional[str] = None,
    ) -> None:
        self.tid = next(Tile._ids)
        self.all_blocks: Set[str] = set(all_blocks)
        self.parent: Optional["Tile"] = None
        self.children: List["Tile"] = []
        self.kind = kind
        self.header = header

    def own_blocks(self) -> Set[str]:
        """The paper's ``blocks(t)``: members of *t* not in any child."""
        out = set(self.all_blocks)
        for child in self.children:
            out -= child.all_blocks
        return out

    def add_block(self, label: str) -> None:
        """Add *label* to this tile and every ancestor (fix-up helper)."""
        tile: Optional[Tile] = self
        while tile is not None:
            tile.all_blocks.add(label)
            tile = tile.parent

    def depth(self) -> int:
        depth = 0
        tile = self.parent
        while tile is not None:
            depth += 1
            tile = tile.parent
        return depth

    def ancestors(self) -> Iterator["Tile"]:
        tile = self.parent
        while tile is not None:
            yield tile
            tile = tile.parent

    def is_ancestor_of(self, other: "Tile") -> bool:
        return any(a is self for a in other.ancestors())

    def __contains__(self, label: str) -> bool:
        return label in self.all_blocks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Tile#{self.tid} {self.kind} own={sorted(self.own_blocks())}"
            f" |all|={len(self.all_blocks)}>"
        )


class TileTree:
    """A legal tile tree over one function.

    Holds the root tile, a per-block map to the smallest containing tile
    (the paper's ``t(n)``), and traversal helpers.  The tree owns *labels*
    only; the function itself is shared and may gain fix-up blocks during
    construction (those are registered via :meth:`register_block`).
    """

    def __init__(self, fn, root: Tile) -> None:
        self.fn = fn
        self.root = root
        self._smallest: Dict[str, Tile] = {}
        #: (cfg_version, tid) -> (entry_edges, exit_edges); tiles query
        #: their boundary many times per phase, and each uncached query
        #: walks every CFG edge.
        self._edge_cache: Dict[int, Tuple[List[Tuple[str, str]], List[Tuple[str, str]]]] = {}
        self._edge_cache_version: int = -1
        #: position-indexed incoming-edge map (see :meth:`_edge_positions`);
        #: depends only on the CFG, not on tile membership.
        self._edge_pos_cache: Optional[
            Tuple[Dict[str, List[Tuple[int, str]]], Dict[str, int]]
        ] = None
        self._edge_pos_version: int = -1
        self._rebuild_smallest()

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def _rebuild_smallest(self) -> None:
        self._smallest.clear()
        for tile in self.preorder():
            for label in tile.own_blocks():
                self._smallest[label] = tile

    def tile_of(self, label: str) -> Tile:
        """The smallest tile containing *label* (paper's ``t(n)``)."""
        return self._smallest[label]

    def register_block(self, label: str, tile: Tile) -> None:
        """Record a newly inserted block as owned by *tile*."""
        tile.add_block(label)
        for child in tile.children:
            child.all_blocks.discard(label)
        self._smallest[label] = tile
        # Tile membership changed: cached boundary classifications are
        # stale even if the CFG version did not move.
        self._edge_cache.clear()
        self._edge_cache_version = -1

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def preorder(self) -> Iterator[Tile]:
        stack = [self.root]
        while stack:
            tile = stack.pop()
            yield tile
            stack.extend(reversed(tile.children))

    def postorder(self) -> Iterator[Tile]:
        result: List[Tile] = []
        stack: List[Tuple[Tile, bool]] = [(self.root, False)]
        while stack:
            tile, expanded = stack.pop()
            if expanded:
                result.append(tile)
            else:
                stack.append((tile, True))
                for child in reversed(tile.children):
                    stack.append((child, False))
        return iter(result)

    def tiles(self) -> List[Tile]:
        return list(self.preorder())

    def renumber(self) -> None:
        """Reassign ``tid`` values to preorder positions (root = 0).

        ``Tile.tid`` comes from a process-global counter, so the absolute
        values depend on how many trees the process has already built.
        Every derived name (``t{tid}.p{i}`` pseudo colors,
        ``ts:{tid}:{color}`` summary variables) embeds the tid, which makes
        allocation results a function of process history rather than of the
        input program alone.  Renumbering to preorder positions makes tids
        -- and therefore every tid-derived name -- a pure function of the
        tile tree's shape, which per-tile memoization
        (:mod:`repro.core.incremental`) and cross-process fingerprint
        comparison both rely on.

        Must run before tid-keyed caches fill; it drops the boundary-edge
        cache itself.
        """
        for i, tile in enumerate(self.preorder()):
            tile.tid = i
        self._edge_cache.clear()
        self._edge_cache_version = -1

    def height(self) -> int:
        """Longest chain of nested tiles (paper's ``h(T)``)."""
        best = 0
        stack = [(self.root, 1)]
        while stack:
            tile, depth = stack.pop()
            best = max(best, depth)
            for child in tile.children:
                stack.append((child, depth + 1))
        return best

    def breadth_profile(self) -> Dict[int, int]:
        """Number of tiles per depth level (parallelism claim, section 6)."""
        out: Dict[int, int] = {}
        stack = [(self.root, 0)]
        while stack:
            tile, depth = stack.pop()
            out[depth] = out.get(depth, 0) + 1
            for child in tile.children:
                stack.append((child, depth + 1))
        return out

    # ------------------------------------------------------------------
    # edge classification (paper section 2)
    # ------------------------------------------------------------------
    def _classified_edges(
        self, tile: Tile
    ) -> Tuple[List[Tuple[str, str]], List[Tuple[str, str]]]:
        """(entry, exit) edges of *tile*, cached per CFG version."""
        version = getattr(self.fn, "cfg_version", None)
        if version is None:
            # Function without cache support: classify uncached.
            return self._classify(tile)
        if version != self._edge_cache_version:
            self._edge_cache.clear()
            self._edge_cache_version = version
        cached = self._edge_cache.get(tile.tid)
        if cached is None:
            cached = self._edge_cache[tile.tid] = self._classify(tile)
        return cached

    def _edge_positions(
        self,
    ) -> Tuple[Dict[str, List[Tuple[int, str]]], Dict[str, int]]:
        """(incoming edges with global positions, outgoing base positions).

        ``in_pos[dst]`` lists ``(position, src)`` for every edge into
        ``dst``; ``out_base[src]`` is the global position of ``src``'s first
        outgoing edge.  Positions follow :meth:`Function.edges` order, so
        classification results sorted by position match an ``fn.edges()``
        scan exactly (duplicate edges keep distinct positions).
        """
        version = getattr(self.fn, "cfg_version", None)
        if (
            self._edge_pos_cache is not None
            and version is not None
            and version == self._edge_pos_version
        ):
            return self._edge_pos_cache
        in_pos: Dict[str, List[Tuple[int, str]]] = {}
        out_base: Dict[str, int] = {}
        pos = 0
        for block in self.fn.blocks.values():
            label = block.label
            out_base[label] = pos
            for succ in block.succ_labels:
                in_pos.setdefault(succ, []).append((pos, label))
                pos += 1
        if version is not None:
            self._edge_pos_cache = (in_pos, out_base)
            self._edge_pos_version = version
        return in_pos, out_base

    def _classify(
        self, tile: Tile
    ) -> Tuple[List[Tuple[str, str]], List[Tuple[str, str]]]:
        """Boundary edges of *tile*, visiting only its members' edges
        (instead of every CFG edge) and restoring ``fn.edges()`` order by
        sorting on global edge positions."""
        members = tile.all_blocks
        in_pos, out_base = self._edge_positions()
        blocks = self.fn.blocks
        tagged_entries: List[Tuple[int, Tuple[str, str]]] = []
        tagged_exits: List[Tuple[int, Tuple[str, str]]] = []
        for label in members:
            for pos, src in in_pos.get(label, ()):
                if src not in members:
                    tagged_entries.append((pos, (src, label)))
            base = out_base.get(label)
            if base is None:
                continue
            for offset, succ in enumerate(blocks[label].succ_labels):
                if succ not in members:
                    tagged_exits.append((base + offset, (label, succ)))
        tagged_entries.sort()
        tagged_exits.sort()
        return (
            [edge for _, edge in tagged_entries],
            [edge for _, edge in tagged_exits],
        )

    def entry_edges(self, tile: Tile) -> List[Tuple[str, str]]:
        """Edges ``(n, m)`` with ``m`` in *tile* and ``n`` outside it
        (cached; do not mutate the returned list)."""
        return self._classified_edges(tile)[0]

    def exit_edges(self, tile: Tile) -> List[Tuple[str, str]]:
        """Edges ``(m, n)`` with ``m`` in *tile* and ``n`` outside it
        (cached; do not mutate the returned list)."""
        return self._classified_edges(tile)[1]

    def boundary_edges(self, tile: Tile) -> List[Tuple[str, str]]:
        entries, exits = self._classified_edges(tile)
        return entries + exits

    def boundary_block_count(self, tile: Tile) -> int:
        """The paper's ``Z_t``: blocks that are destinations of entry edges
        or sources of exit edges of *tile* ("for structured programs, this
        number is 2")."""
        blocks = set()
        for _, dst in self.entry_edges(tile):
            blocks.add(dst)
        for src, _ in self.exit_edges(tile):
            blocks.add(src)
        return len(blocks)

    def __len__(self) -> int:
        return sum(1 for _ in self.preorder())

    def format(self) -> str:
        """Readable ASCII rendering of the tree (tests and examples).

        Iterative like every other traversal here: tile-tree depth is
        input-controlled, so no walk may recurse.
        """
        lines: List[str] = []
        stack: List[Tuple[Tile, int]] = [(self.root, 0)]
        while stack:
            tile, indent = stack.pop()
            own = ",".join(sorted(tile.own_blocks()))
            lines.append(
                "  " * indent
                + f"Tile#{tile.tid}[{tile.kind}] blocks={{{own}}}"
            )
            for child in sorted(
                tile.children, key=lambda t: t.tid, reverse=True
            ):
                stack.append((child, indent + 1))
        return "\n".join(lines)
