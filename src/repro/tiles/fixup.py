"""Tile-tree edge fix-up (paper Figure 3).

Eliminates edges that violate tile conditions 2 or 3 by inserting empty
basic blocks: first edges crossing between sibling subtrees get a midpoint
block in the smallest tile containing both endpoints, then exit edges are
shortened one level at a time, then entry edges.  "Intuitively each empty
block becomes a point where spill code can be inserted if needed."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.tiles.tile import Tile, TileTree


@dataclass
class FixupStats:
    """What fix-up did, for the E3 bench and for tests."""

    sibling_blocks: int = 0
    exit_blocks: int = 0
    entry_blocks: int = 0
    inserted_labels: List[str] = field(default_factory=list)
    #: inserted label -> the ORIGINAL edge whose chain it belongs to; used
    #: to give fix-up blocks meaningful frequencies under a profile that
    #: predates them.
    orig_edge: dict = field(default_factory=dict)

    def record(self, label: str, src: str, dst: str) -> None:
        edge = self.orig_edge.get(src) or self.orig_edge.get(dst) or (src, dst)
        self.orig_edge[label] = edge
        self.inserted_labels.append(label)

    @property
    def total(self) -> int:
        return self.sibling_blocks + self.exit_blocks + self.entry_blocks


def _lca(a: Tile, b: Tile) -> Tile:
    """Smallest tile containing both tiles (lowest common ancestor)."""
    seen = {id(a)}
    for anc in a.ancestors():
        seen.add(id(anc))
    if id(b) in seen:
        return b
    for anc in b.ancestors():
        if id(anc) in seen:
            return anc
    raise AssertionError("tiles not in one tree")


def fixup_tile_tree(tree: TileTree) -> FixupStats:
    """Insert empty blocks until every edge satisfies conditions 2 and 3.

    Mutates both the function (new blocks) and the tree (block ownership).
    Follows Figure 3 of the paper literally: a sibling-crossing pass, then
    an exit-shortening loop, then an entry-shortening loop.
    """
    fn = tree.fn
    stats = FixupStats()

    # Pass 1: edges with incomparable endpoint tiles get a midpoint in the
    # smallest tile containing both endpoints.
    for src, dst in list(fn.edges()):
        t_src = tree.tile_of(src)
        t_dst = tree.tile_of(dst)
        if dst in t_src.all_blocks or src in t_dst.all_blocks:
            continue
        common = _lca(t_src, t_dst)
        block = fn.insert_block_on_edge(src, dst)
        tree.register_block(block.label, common)
        stats.sibling_blocks += 1
        stats.record(block.label, src, dst)

    # Pass 2: exit edges climbing more than one level.
    changed = True
    while changed:
        changed = False
        for src, dst in list(fn.edges()):
            t_src = tree.tile_of(src)
            if dst in t_src.all_blocks:
                continue
            parent = t_src.parent
            if parent is None or dst in parent.all_blocks:
                continue
            block = fn.insert_block_on_edge(src, dst)
            tree.register_block(block.label, parent)
            stats.exit_blocks += 1
            stats.record(block.label, src, dst)
            changed = True
            break

    # Pass 3: entry edges descending more than one level.
    changed = True
    while changed:
        changed = False
        for src, dst in list(fn.edges()):
            t_dst = tree.tile_of(dst)
            if src in t_dst.all_blocks:
                continue
            parent = t_dst.parent
            if parent is None or src in parent.own_blocks():
                continue
            block = fn.insert_block_on_edge(src, dst)
            tree.register_block(block.label, parent)
            stats.entry_blocks += 1
            stats.record(block.label, src, dst)
            changed = True
            break

    return stats
