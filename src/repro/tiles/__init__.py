"""Tiles and tile trees (paper section 2 and Appendix A)."""

from repro.tiles.tile import Tile, TileTree
from repro.tiles.construction import build_tile_tree, TileTreeOptions
from repro.tiles.validate import validate_tile_tree, TileTreeError, edge_violations

__all__ = [
    "Tile",
    "TileTree",
    "build_tile_tree",
    "TileTreeOptions",
    "validate_tile_tree",
    "TileTreeError",
    "edge_violations",
]
