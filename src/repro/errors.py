"""Structured error taxonomy for the allocation service layers.

Every exception the pipeline can raise is classified along two axes:

* an **error class** -- a short stable string naming *what* failed
  (``"parse"``, ``"no_color"``, ``"timeout"``, ...) that survives process
  boundaries (pool workers report failures as plain dicts, never pickled
  exception objects, so classification must happen where the exception
  type is still known);
* a **permanence** -- :data:`PERMANENT` failures are deterministic
  functions of the input (re-running the identical task re-fails:
  malformed IR, an uncolorable required node, a differential-verification
  mismatch), while :data:`TRANSIENT` failures are environmental (a
  crashed or hung worker process, memory pressure) and are worth bounded
  retries.

The batch engine's fault handling is driven entirely by this module:
transient failures are retried with deterministic backoff, permanent
failures go straight to the degradation ladder (see
:mod:`repro.batch.engine`).  Unknown exception types are classified
``("internal", PERMANENT)`` -- the allocator is deterministic, so an
unexpected ``TypeError`` will recur on retry and retrying it only burns
the retry budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Re-running the identical task will fail the same way.
PERMANENT = "permanent"
#: Environmental; a retry (possibly on a fresh worker) may succeed.
TRANSIENT = "transient"


@dataclass(frozen=True)
class TaskError:
    """One function's final failure, as structured data.

    ``error_class`` is the taxonomy name from :func:`classify_exception`,
    ``permanence`` is :data:`PERMANENT` or :data:`TRANSIENT` (the
    classification of the *last* failure -- a transient error only becomes
    final once retries are exhausted), and ``attempts`` counts how many
    times the task was tried before giving up.
    """

    error_class: str
    message: str
    permanence: str
    attempts: int = 1

    @property
    def permanent(self) -> bool:
        return self.permanence == PERMANENT

    @property
    def transient(self) -> bool:
        return self.permanence == TRANSIENT

    def describe(self) -> str:
        return f"{self.error_class}: {self.message}"


class BatchFunctionError(RuntimeError):
    """Strict-mode (``on_error="fail"``) wrapper for one function's
    failure: carries the function name and the structured
    :class:`TaskError` so callers need not parse the message."""

    def __init__(self, function: str, error: TaskError) -> None:
        super().__init__(
            f"batch allocation failed for {function!r} after "
            f"{error.attempts} attempt(s): {error.describe()}"
        )
        self.function = function
        self.error = error


def classify_exception(exc: BaseException) -> Tuple[str, str]:
    """``(error_class, permanence)`` for any exception the pipeline raises.

    Imports are local so this module stays importable from anywhere
    (workers classify before serializing a failure payload, the engine
    classifies pool-level exceptions like ``BrokenProcessPool``).
    """
    from concurrent.futures import BrokenExecutor
    from concurrent.futures import TimeoutError as FuturesTimeout

    from repro.batch.faultinject import InjectedFault
    from repro.batch.serialize import UncacheableConfigError
    from repro.core.budget import BudgetExceededError
    from repro.graph.coloring import ColoringInvariantError, NoColorForRequiredNode
    from repro.ir.parser import IRParseError
    from repro.ir.validate import IRValidationError
    from repro.machine.rewrite import AllocationCheckError
    from repro.machine.simulator import SimulationError
    from repro.minilang import MiniLangError

    if isinstance(exc, InjectedFault):
        return "injected", exc.permanence
    if isinstance(exc, BudgetExceededError):
        # Fuel spend is a pure function of (input, config, budget), so
        # exhaustion recurs on every retry -- route it to the ladder.
        # The wall-clock deadline is the one nondeterministic limit: a
        # retry on an unloaded worker may well fit, so it is transient.
        if exc.resource == "fuel":
            return "budget", PERMANENT
        return "deadline", TRANSIENT
    if isinstance(exc, (IRParseError, MiniLangError)):
        return "parse", PERMANENT
    if isinstance(exc, IRValidationError):
        return "validate", PERMANENT
    if isinstance(exc, NoColorForRequiredNode):
        return "no_color", PERMANENT
    if isinstance(exc, ColoringInvariantError):
        # Engine-internal cache corruption, not a property of the input
        # function -- but re-running the same task would recompute the
        # same broken caches, so it is permanent for retry purposes.
        return "coloring_invariant", PERMANENT
    if isinstance(exc, AllocationCheckError):
        return "allocation_check", PERMANENT
    if isinstance(exc, SimulationError):
        return "simulation", PERMANENT
    if isinstance(exc, UncacheableConfigError):
        return "uncacheable_config", PERMANENT
    if isinstance(exc, (FuturesTimeout, TimeoutError)):
        return "timeout", TRANSIENT
    if isinstance(exc, BrokenExecutor):
        return "pool", TRANSIENT
    if isinstance(exc, RecursionError):
        # Structural: the input's nesting blew the interpreter stack.
        # The identical task recurses identically on any worker, so a
        # retry just burns budget -- degrade instead.  (RecursionError
        # subclasses RuntimeError, not OSError, so order here is free.)
        return "recursion", PERMANENT
    if isinstance(exc, MemoryError):
        # The allocator's footprint is a deterministic function of the
        # input; a task that exhausts memory exhausts it again on retry
        # (workers are long-lived, so "some other task bloated the
        # process" self-heals via the pool restart path, not retries).
        return "oom", PERMANENT
    if isinstance(exc, OSError):
        return "os", TRANSIENT
    return "internal", PERMANENT


def task_error_from_exception(
    exc: BaseException, attempts: int = 1,
    message: Optional[str] = None,
) -> TaskError:
    """Condense an exception into a :class:`TaskError`."""
    error_class, permanence = classify_exception(exc)
    return TaskError(
        error_class=error_class,
        message=message if message is not None else str(exc),
        permanence=permanence,
        attempts=attempts,
    )
