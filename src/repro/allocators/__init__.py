"""Register allocators: the hierarchical contribution lives in
:mod:`repro.core`; this package holds the common interface and the
comparison baselines the paper discusses (Chaitin, Chaitin-Briggs, plus an
all-memory straw man and a single-block local allocator)."""

from repro.allocators.base import AllocationOutcome, Allocator, AllocStats
from repro.allocators.chaitin import ChaitinAllocator, BriggsAllocator
from repro.allocators.naive import NaiveMemoryAllocator
from repro.allocators.local_alloc import LocalAllocator

__all__ = [
    "AllocationOutcome",
    "Allocator",
    "AllocStats",
    "ChaitinAllocator",
    "BriggsAllocator",
    "NaiveMemoryAllocator",
    "LocalAllocator",
]
