"""All-memory straw-man allocator.

Every variable lives in memory; each instruction loads its operands into
scratch registers and stores its result back.  This is the upper anchor for
the dynamic-memory-reference benches (what you pay with no allocation at
all) and doubles as a correctness oracle for the rewrite machinery since it
exercises every spill path.
"""

from __future__ import annotations

from typing import Dict, List

from repro.allocators.base import (
    AllocationOutcome,
    Allocator,
    AllocStats,
    record_spill_blocks,
)
from repro.ir.function import Function
from repro.ir.instructions import Instr, Opcode, phys_reg
from repro.machine.rewrite import check_physical, spill_slot
from repro.machine.target import Machine


class NaiveMemoryAllocator(Allocator):
    """Spill everything; use at most three scratch registers."""

    name = "naive"

    def allocate(self, fn: Function, machine: Machine) -> AllocationOutcome:
        if machine.num_registers < 2:
            raise ValueError("naive allocator needs at least 2 registers")
        stats = AllocStats()
        stats.iterations = 1
        out = fn.clone()

        for block in out.blocks.values():
            new_instrs: List[Instr] = []
            for instr in block.instrs:
                reg_of: Dict[str, str] = {}
                for i, var in enumerate(dict.fromkeys(instr.uses)):
                    reg = phys_reg(i % machine.num_registers)
                    reg_of[var] = reg
                    new_instrs.append(
                        Instr(Opcode.SPILL_LD, defs=(reg,), imm=spill_slot(var))
                    )
                def_regs = [
                    phys_reg(i % machine.num_registers)
                    for i in range(len(instr.defs))
                ]
                renamed = instr.clone()
                renamed.uses = tuple(reg_of[v] for v in instr.uses)
                renamed.defs = tuple(def_regs)
                new_instrs.append(renamed)
                for var, reg in zip(instr.defs, def_regs):
                    new_instrs.append(
                        Instr(Opcode.SPILL_ST, uses=(reg,), imm=spill_slot(var))
                    )
            block.instrs = new_instrs

        # Parameters are found in their home slots (calling convention);
        # their names stay in the signature but are never referenced.
        stats.spilled_vars |= set(fn.variables())
        check_physical(out, machine.num_registers)
        record_spill_blocks(out, stats)
        return AllocationOutcome(out, machine, stats)
