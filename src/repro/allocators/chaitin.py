"""Flat graph-coloring allocators: Chaitin (PLDI'82) and Chaitin-Briggs
(PLDI'89).

These are the baselines the paper positions itself against.  One whole-
program interference graph is built; spill costs are weighted reference
counts over the entire program ("the program flow structure is not
represented in the interference graph and local reference patterns are not
visible"); a spilled variable stays in memory *everywhere* -- every use
reloads, every definition stores back.

The two variants share all machinery and differ only in spill timing:

* **Chaitin**: pessimistic -- a node picked as spill candidate during
  simplify is spilled immediately;
* **Briggs**: optimistic -- every node is pushed and spilling happens only
  if no color is available at select time.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.allocators.base import (
    AllocationOutcome,
    Allocator,
    AllocStats,
    record_spill_blocks,
)
from repro.analysis.frequency import FrequencyInfo, estimate_frequencies
from repro.analysis.liveness import compute_liveness
from repro.graph.coloring import color_graph
from repro.graph.interference import build_interference
from repro.ir.function import Function
from repro.ir.instructions import Opcode
from repro.machine.rewrite import apply_assignment, rewrite_spilled
from repro.machine.target import Machine

#: Safety bound on spill iterations; real programs converge in 2-4 rounds.
MAX_ITERATIONS = 32


class ChaitinAllocator(Allocator):
    """Whole-program graph coloring with spill-everywhere semantics."""

    name = "chaitin"
    optimistic = False

    def __init__(
        self,
        frequencies: Optional[FrequencyInfo] = None,
        reuse_within_block: bool = True,
    ) -> None:
        """Args:
            frequencies: block frequencies for spill costs; defaults to the
                static estimator (same source the hierarchical allocator
                uses, keeping comparisons fair).
            reuse_within_block: apply the classic local cleanup that reuses
                a reloaded value within one basic block (both Chaitin and
                Bernstein describe this; disabling it is an ablation).
        """
        self._frequencies = frequencies
        self._reuse_within_block = reuse_within_block

    def allocate(self, fn: Function, machine: Machine) -> AllocationOutcome:
        stats = AllocStats()
        freq = self._frequencies or estimate_frequencies(fn)
        current = fn
        never_spill: Set[str] = set()
        spilled_vars: Set[str] = set()

        for iteration in range(1, MAX_ITERATIONS + 1):
            stats.iterations = iteration
            liveness = compute_liveness(current)
            graph = build_interference(current, liveness)
            # Parameters are defined by the call, not by an instruction, so
            # the def-point construction misses their mutual conflicts:
            # everything live into the start block coexists at entry.
            graph.add_clique(liveness.live_in[current.start_label])
            stats.observe_graph(len(graph), graph.edge_count())

            priorities = _weighted_ref_counts(current, freq)
            pref_pairs = _copy_pairs(current)
            from repro.ir.instructions import is_phys

            precolored = {v: v for v in sorted(graph.nodes()) if is_phys(v)}
            result = color_graph(
                graph,
                k=machine.num_registers,
                color_order=machine.registers,
                priorities=priorities,
                precolored=precolored,
                pref_pairs=pref_pairs,
                never_spill=never_spill,
                pessimistic=not self.optimistic,
            )
            if not result.spilled:
                allocated = apply_assignment(current, result.assignment)
                record_spill_blocks(allocated, stats)
                stats.spilled_vars = spilled_vars
                stats.extra["colors_used"] = len(result.used_colors)
                return AllocationOutcome(allocated, machine, stats)

            spilled_vars |= result.spilled
            # Within-block reuse only on the first round: re-caching a
            # spilled reload temp would recreate the same multi-instruction
            # range and need not converge.
            current, temps = rewrite_spilled(
                current, result.spilled,
                reuse_within_block=self._reuse_within_block and iteration == 1,
            )
            # Operand temporaries must not spill again; their live ranges
            # are single instructions so they are always colorable when the
            # machine has enough registers for one instruction's operands.
            never_spill |= temps

        raise RuntimeError(
            f"{self.name}: no fixed point after {MAX_ITERATIONS} iterations"
        )


class BriggsAllocator(ChaitinAllocator):
    """Chaitin with Briggs' optimistic coloring."""

    name = "briggs"
    optimistic = True


def _weighted_ref_counts(fn: Function, freq: FrequencyInfo) -> Dict[str, float]:
    """Spill cost: sum over blocks of Prob(b) * Refs_b(v), whole program."""
    costs: Dict[str, float] = {}
    for label, block in fn.blocks.items():
        weight = freq.prob_block(label)
        for instr in block.instrs:
            for var in instr.defs + instr.uses:
                costs[var] = costs.get(var, 0.0) + weight
    return costs


def _copy_pairs(fn: Function):
    """Preference pairs from simple assignments (copy instructions)."""
    pairs = []
    for block in fn.blocks.values():
        for instr in block.instrs:
            if instr.op in (Opcode.COPY, Opcode.MOVE) and instr.defs and instr.uses:
                pairs.append((instr.defs[0], instr.uses[0]))
    return pairs
