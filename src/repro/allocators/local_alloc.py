"""Single-block local allocator.

The opposite extreme from Chaitin: perfect *local* usage sensitivity with
no global view at all.  Within each basic block registers are assigned
bottom-up with furthest-next-use eviction; across block boundaries every
variable lives in its memory slot.  The paper's allocator subsumes both
perspectives ("sensitive to local usage patterns while retaining a global
perspective"), and this baseline quantifies what the local half alone buys.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.allocators.base import (
    AllocationOutcome,
    Allocator,
    AllocStats,
    record_spill_blocks,
)
from repro.analysis.liveness import compute_liveness
from repro.ir.function import Function
from repro.ir.instructions import Instr, Opcode, phys_reg
from repro.machine.rewrite import check_physical, spill_slot
from repro.machine.target import Machine


class LocalAllocator(Allocator):
    """Per-block allocation; memory at every block boundary."""

    name = "local"

    def allocate(self, fn: Function, machine: Machine) -> AllocationOutcome:
        stats = AllocStats()
        stats.iterations = 1
        liveness = compute_liveness(fn)
        out = fn.clone()
        registers = machine.registers

        for label, block in out.blocks.items():
            live_out = liveness.live_out[label]
            new_instrs: List[Instr] = []
            in_reg: Dict[str, str] = {}      # var -> register holding it
            reg_holds: Dict[str, Optional[str]] = {r: None for r in registers}
            dirty: Set[str] = set()          # vars whose register copy is newer

            # Next-use positions for eviction decisions.
            positions: Dict[str, List[int]] = {}
            for idx, instr in enumerate(block.instrs):
                for var in instr.uses:
                    positions.setdefault(var, []).append(idx)

            def next_use(var: str, after: int) -> int:
                for pos in positions.get(var, ()):  # lists are short
                    if pos >= after:
                        return pos
                return 1 << 30

            def spill_out(var: str) -> None:
                reg = in_reg.pop(var)
                reg_holds[reg] = None
                if var in dirty:
                    new_instrs.append(
                        Instr(Opcode.SPILL_ST, uses=(reg,), imm=spill_slot(var))
                    )
                    dirty.discard(var)

            def take_register(idx: int, protect: Set[str]) -> str:
                for reg, holder in reg_holds.items():
                    if holder is None:
                        return reg
                # Evict the holder with the furthest next use.
                victim = max(
                    (v for v in in_reg if v not in protect),
                    key=lambda v: (next_use(v, idx), v),
                )
                reg = in_reg[victim]
                spill_out(victim)
                return reg

            for idx, instr in enumerate(block.instrs):
                protect = set(instr.uses)
                use_map: Dict[str, str] = {}
                for var in dict.fromkeys(instr.uses):
                    if var in in_reg:
                        use_map[var] = in_reg[var]
                        continue
                    reg = take_register(idx, protect)
                    new_instrs.append(
                        Instr(Opcode.SPILL_LD, defs=(reg,), imm=spill_slot(var))
                    )
                    in_reg[var] = reg
                    reg_holds[reg] = var
                    use_map[var] = reg

                # A definition may steal an operand's register: the machine
                # reads all uses before writing defs, and any dirty victim
                # is stored *before* this instruction executes.
                def_map: Dict[str, str] = {}
                for var in instr.defs:
                    if var in in_reg:
                        reg = in_reg[var]
                    else:
                        reg = take_register(idx + 1, set(def_map))
                        in_reg[var] = reg
                        reg_holds[reg] = var
                    def_map[var] = reg
                    dirty.add(var)

                renamed = instr.clone()
                renamed.uses = tuple(use_map[v] for v in instr.uses)
                renamed.defs = tuple(def_map[v] for v in instr.defs)
                new_instrs.append(renamed)

            # Terminators must stay last: flush dirty live-out values just
            # before the terminator.
            flush = [
                Instr(Opcode.SPILL_ST, uses=(in_reg[v],), imm=spill_slot(v))
                for v in sorted(dirty)
                if v in live_out
            ]
            if new_instrs and new_instrs[-1].is_terminator:
                new_instrs[-1:-1] = flush
            else:
                new_instrs.extend(flush)
            block.instrs = new_instrs

        # Parameters are found in their home slots (calling convention);
        # their names stay in the signature but are never referenced.
        stats.spilled_vars = set(fn.variables())
        check_physical(out, machine.num_registers)
        record_spill_blocks(out, stats)
        return AllocationOutcome(out, machine, stats)
