"""Common allocator interface and result types."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.ir.function import Function
from repro.machine.target import Machine


@dataclass
class AllocStats:
    """What an allocation run did (static facts, not dynamic counts).

    Attributes:
        spilled_vars: variables that live in memory somewhere in the
            output (for the hierarchical allocator: in at least one tile).
        iterations: coloring rounds (Chaitin iterates on spill temps; the
            hierarchical allocator reports 1 plus any recolor rounds).
        max_graph_nodes / max_graph_edges: size of the largest single
            interference graph ever built (the paper's claim E6: tiles keep
            this small).
        total_graph_nodes: summed size of all graphs built.
        static_spill_loads / static_spill_stores / static_moves: inserted
            instruction counts.
        spill_block_labels: blocks containing spill code, for the
            placement experiment E5.
        extra: allocator-specific diagnostics.
    """

    spilled_vars: Set[str] = field(default_factory=set)
    iterations: int = 0
    max_graph_nodes: int = 0
    max_graph_edges: int = 0
    total_graph_nodes: int = 0
    static_spill_loads: int = 0
    static_spill_stores: int = 0
    static_moves: int = 0
    spill_block_labels: Set[str] = field(default_factory=set)
    extra: Dict[str, object] = field(default_factory=dict)

    def observe_graph(self, nodes: int, edges: int) -> None:
        self.max_graph_nodes = max(self.max_graph_nodes, nodes)
        self.max_graph_edges = max(self.max_graph_edges, edges)
        self.total_graph_nodes += nodes


@dataclass
class AllocationOutcome:
    """A rewritten physical-register function plus bookkeeping."""

    fn: Function
    machine: Machine
    stats: AllocStats

    @property
    def allocated_fn(self) -> Function:
        return self.fn


class Allocator(abc.ABC):
    """Interface shared by all allocators.

    ``allocate`` consumes a *virtual-register* function (ideally already
    renamed into webs -- the pipeline does this) and produces a function
    whose every operand is a physical register, with spill code inserted.
    """

    name: str = "allocator"

    @abc.abstractmethod
    def allocate(self, fn: Function, machine: Machine) -> AllocationOutcome:
        """Allocate registers for *fn* on *machine*."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


def record_spill_blocks(fn: Function, stats: AllocStats) -> None:
    """Fill static spill counts and spill-block set from the final IR."""
    from repro.ir.instructions import Opcode

    for block in fn.blocks.values():
        for instr in block.instrs:
            if instr.op is Opcode.SPILL_LD:
                stats.static_spill_loads += 1
                stats.spill_block_labels.add(block.label)
            elif instr.op is Opcode.SPILL_ST:
                stats.static_spill_stores += 1
                stats.spill_block_labels.add(block.label)
            elif instr.op is Opcode.MOVE:
                stats.static_moves += 1
