"""Register Allocation via Hierarchical Graph Coloring.

A reproduction of Callahan & Koblenz (PLDI 1991): the tile-tree register
allocator, the substrate it needs (toy IR, simulator, analyses, coloring),
and the baselines it is measured against.

Top-level convenience re-exports::

    from repro import (
        FunctionBuilder, Machine, Workload, compile_function,
        HierarchicalAllocator, HierarchicalConfig,
        ChaitinAllocator, BriggsAllocator,
    )
"""

from repro.allocators import (
    BriggsAllocator,
    ChaitinAllocator,
    LocalAllocator,
    NaiveMemoryAllocator,
)
from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.ir import FunctionBuilder, format_function, parse_function
from repro.machine.simulator import simulate
from repro.machine.target import Machine
from repro.pipeline import Workload, compare_allocators, compile_function

__version__ = "1.0.0"

__all__ = [
    "FunctionBuilder",
    "Machine",
    "Workload",
    "compile_function",
    "compare_allocators",
    "simulate",
    "format_function",
    "parse_function",
    "HierarchicalAllocator",
    "HierarchicalConfig",
    "ChaitinAllocator",
    "BriggsAllocator",
    "LocalAllocator",
    "NaiveMemoryAllocator",
    "__version__",
]
