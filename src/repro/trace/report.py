"""Render a traced allocation as a human-readable per-tile decision report.

Consumes the event stream of one allocation (a
:class:`~repro.trace.sinks.MemorySink`'s ``events``) and produces
GitHub-flavored markdown -- readable as plain text from the ``trace`` CLI
subcommand and embedded verbatim by ``docs/gen_walkthrough.py``, so the
CLI, the tests and the generated walkthrough all describe a run with the
same renderer.

The report is deterministic for deterministic event streams: tiles are
ordered by id and every table row is sorted, so two runs of the same
program produce byte-identical reports (the docs drift check relies on
this).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.trace.events import (
    BOUNDARY_ACTIONS,
    BoundaryAction,
    PreferenceApplied,
    PseudoBound,
    SpillDecision,
    StageTiming,
    TileColored,
)

#: Mirrors :data:`repro.core.summary.MEM` (kept literal here so the trace
#: layer does not import the allocator it observes).
MEM = "<mem>"


def fmt_num(x: float) -> str:
    """Compact, locale-free float formatting ('30', '2.5', '-3')."""
    if x == float("inf"):
        return "inf"
    out = f"{x:g}"
    return "0" if out == "-0" else out


def _loc(loc: Optional[str]) -> str:
    return "MEM" if loc in (None, MEM) else str(loc)


def _table(header: Sequence[str], rows: Iterable[Sequence[str]]) -> List[str]:
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    return lines


def render_report(
    events: Sequence[object],
    counters: Optional[Dict[str, int]] = None,
    tree_text: Optional[str] = None,
    title: str = "Allocation trace report",
) -> str:
    """The full markdown report for one traced allocation."""
    colored: Dict[Tuple[int, str], TileColored] = {}
    spills: Dict[int, List[SpillDecision]] = defaultdict(list)
    prefs: Dict[int, List[PreferenceApplied]] = defaultdict(list)
    bindings: Dict[int, List[PseudoBound]] = defaultdict(list)
    boundary: List[BoundaryAction] = []
    for event in events:
        if isinstance(event, TileColored):
            colored[(event.tile_id, event.phase)] = event
        elif isinstance(event, SpillDecision):
            spills[event.tile_id].append(event)
        elif isinstance(event, PreferenceApplied):
            prefs[event.tile_id].append(event)
        elif isinstance(event, PseudoBound):
            bindings[event.tile_id].append(event)
        elif isinstance(event, BoundaryAction):
            boundary.append(event)

    lines: List[str] = [f"# {title}", ""]
    if tree_text:
        lines += ["## Tile tree", "", "```", tree_text.rstrip(), "```", ""]

    tile_ids = sorted({tid for tid, _ in colored})
    for tid in tile_ids:
        lines += _tile_section(
            tid,
            colored.get((tid, "phase1")),
            colored.get((tid, "phase2")),
            spills.get(tid, []),
            prefs.get(tid, []),
            bindings.get(tid, []),
        )

    lines += _boundary_section(boundary)

    if counters:
        lines += ["## Counters", ""]
        lines += _table(
            ["counter", "value"],
            [[name, str(counters[name])] for name in sorted(counters)],
        )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _tile_section(
    tid: int,
    tc1: Optional[TileColored],
    tc2: Optional[TileColored],
    spills: List[SpillDecision],
    prefs: List[PreferenceApplied],
    bindings: List[PseudoBound],
) -> List[str]:
    head = tc1 or tc2
    assert head is not None
    blocks = ", ".join(head.blocks) if head.blocks else "(no own blocks)"
    lines = [f"## Tile #{tid} [{head.kind}] — blocks: {blocks}", ""]
    phases = []
    if tc1:
        phases.append(f"phase 1: {tc1.rounds} round(s), "
                      f"{len(tc1.used_colors)} color(s)")
    if tc2:
        phases.append(f"phase 2: {tc2.rounds} round(s)")
    lines += ["; ".join(phases), ""]

    candidates = dict(head.candidates)
    if tc2:
        candidates.update(
            {v: m for v, m in tc2.candidates.items() if v not in candidates}
        )
    if candidates:
        rows = []
        for var in sorted(candidates):
            m = candidates[var]
            p1 = _assigned(tc1, var)
            p2 = _assigned(tc2, var)
            rows.append([
                f"`{var}`",
                fmt_num(m.local_weight), fmt_num(m.transfer),
                fmt_num(m.weight), fmt_num(m.reg), fmt_num(m.mem),
                p1, p2,
            ])
        lines += _table(
            ["candidate", "Local_weight", "Transfer", "Weight", "Reg",
             "Mem", "phase 1", "phase 2"],
            rows,
        )
        lines.append("")

    if spills:
        lines.append("Spill decisions:")
        lines.append("")
        for s in spills:
            lines.append(
                f"- `{s.var}` → memory in {s.phase} ({s.reason}; "
                f"Weight={fmt_num(s.weight)}, Transfer={fmt_num(s.transfer)})"
            )
        lines.append("")
    if bindings:
        lines.append("Pseudo-register bindings (phase 2):")
        lines.append("")
        for b in sorted(bindings, key=lambda b: b.pseudo):
            lines.append(
                f"- `{b.pseudo}` (summary `{b.summary}`) → {_loc(b.binding)}"
            )
        lines.append("")
    if prefs:
        lines.append("Preferences honored:")
        lines.append("")
        for p in sorted(prefs, key=lambda p: (p.phase, p.var, p.color)):
            lines.append(f"- {p.phase}: `{p.var}` took {p.color} ({p.kind})")
        lines.append("")
    return lines


def _assigned(tc: Optional[TileColored], var: str) -> str:
    if tc is None:
        return "—"
    if var in tc.spilled:
        return "MEM"
    color = tc.assignment.get(var)
    return "—" if color is None else str(color)


def _boundary_section(boundary: List[BoundaryAction]) -> List[str]:
    if not boundary:
        return []
    lines = ["## Boundary edges (the four cases)", ""]
    rows = []
    for b in sorted(
        boundary, key=lambda b: (b.edge, not b.entering, b.var)
    ):
        direction = (
            f"enter tile #{b.child_tile}" if b.entering
            else f"exit tile #{b.child_tile}"
        )
        case = b.action
        if b.store_avoided:
            case += " (store avoided)"
        rows.append([
            f"{b.edge[0]} → {b.edge[1]}", direction, f"`{b.var}`",
            _loc(b.parent_loc), _loc(b.child_loc), case,
        ])
    lines += _table(
        ["edge", "direction", "variable", "parent loc", "child loc", "case"],
        rows,
    )
    lines.append("")
    counts = defaultdict(int)
    for b in boundary:
        counts[b.action] += 1
    lines.append(
        "Case totals: "
        + ", ".join(
            f"{case} = {counts[case]}" for case in BOUNDARY_ACTIONS
        )
        + "."
    )
    if counts["transfer"] == 0:
        lines.append(
            "transfer = 0 means preferencing aligned every "
            "register-to-register pair, so no cross-boundary moves "
            "were needed."
        )
    lines.append("")
    return lines


def render_schedule_summary(events: Sequence[object]) -> str:
    """One-line-per-stage timing summary (pipeline stages, then the
    per-tile tasks grouped by worker thread)."""
    timings = [e for e in events if isinstance(e, StageTiming)]
    lines: List[str] = []
    for t in (x for x in timings if x.category == "pipeline"):
        lines.append(f"{t.name:<24} {t.duration * 1e3:8.2f} ms")
    by_thread: Dict[str, List[StageTiming]] = defaultdict(list)
    for t in (x for x in timings if x.category == "tile"):
        by_thread[t.thread or "main"].append(t)
    for thread in sorted(by_thread):
        tasks = by_thread[thread]
        total = sum(t.duration for t in tasks) * 1e3
        lines.append(
            f"{thread:<24} {total:8.2f} ms across {len(tasks)} tile task(s)"
        )
    return "\n".join(lines)
