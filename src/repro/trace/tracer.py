"""The tracer carried through the allocation pipeline.

Two implementations share one interface:

* :class:`NullTracer` -- the default on every
  :class:`~repro.core.info.FunctionContext`.  ``enabled`` is ``False`` and
  every method is a no-op; hot paths guard event construction with
  ``if tracer.enabled:`` so a traced-off allocation does no extra work
  beyond that attribute test (the perf gate runs with this tracer).
* :class:`AllocationTracer` -- fans events out to its sinks and keeps
  named counters.  Thread-safe: the parallel scheduler emits from worker
  threads, so ``emit`` serializes sink writes behind a lock.

Tracing is strictly observational: no tracer method returns data into the
allocator, so enabling it cannot change allocation output (property-tested
in ``tests/test_trace.py``).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Sequence


class NullTracer:
    """Do-nothing tracer; the zero-cost default."""

    __slots__ = ()

    enabled: bool = False

    def emit(self, event: object) -> None:
        """Record one event (no-op here)."""

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter *name* by *n* (no-op here)."""

    def counters(self) -> Dict[str, int]:
        """Snapshot of the accumulated counters."""
        return {}

    def close(self) -> None:
        """Flush and close the sinks (no-op here)."""


#: Shared default instance -- stateless, so one object serves every context.
NULL_TRACER = NullTracer()


class AllocationTracer(NullTracer):
    """Structured event recorder for one (or more) allocation runs.

    Args:
        sinks: objects with ``handle(event)`` and ``close()`` -- see
            :mod:`repro.trace.sinks`.  Events are delivered to every sink
            in order.
    """

    __slots__ = ("sinks", "_counters", "_lock")

    enabled = True

    def __init__(self, sinks: Sequence[object] = ()) -> None:
        self.sinks: List[object] = list(sinks)
        self._counters: Dict[str, int] = {}
        self._lock = threading.Lock()

    def emit(self, event: object) -> None:
        name = f"events.{type(event).__name__}"
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + 1
            for sink in self.sinks:
                sink.handle(event)

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def close(self) -> None:
        with self._lock:
            for sink in self.sinks:
                sink.close()
