"""Structured allocation tracing (zero-cost when disabled).

The allocator's decisions -- who got which register, why a variable
spilled, how each boundary edge was treated -- become an inspectable event
stream:

* :mod:`repro.trace.events` -- the frozen dataclass event vocabulary;
* :mod:`repro.trace.tracer` -- :class:`AllocationTracer` plus the no-op
  :data:`NULL_TRACER` default that keeps untraced allocations free;
* :mod:`repro.trace.sinks` -- in-memory, JSON Lines and Chrome
  trace-event sinks;
* :mod:`repro.trace.report` -- the per-tile decision report used by the
  ``trace`` CLI subcommand and ``docs/gen_walkthrough.py``.

Typical use::

    from repro.trace import AllocationTracer, MemorySink

    sink = MemorySink()
    allocator = HierarchicalAllocator(tracer=AllocationTracer([sink]))
    allocator.allocate(fn, machine)
    spilled = sink.of_type(SpillDecision)
"""

from repro.trace.events import (
    BOUNDARY_ACTIONS,
    SPILL_REASONS,
    BatchTask,
    BoundaryAction,
    CacheHit,
    CacheMiss,
    CandidateMetrics,
    Degraded,
    PoolRestarted,
    PreferenceApplied,
    PseudoBound,
    ServiceRequest,
    SpillDecision,
    StageTiming,
    TaskFailed,
    TaskRetried,
    TileCacheHit,
    TileColored,
)
from repro.trace.sinks import (
    ChromeTraceSink,
    JSONLSink,
    MemorySink,
    event_to_dict,
)
from repro.trace.report import render_report, render_schedule_summary
from repro.trace.tracer import NULL_TRACER, AllocationTracer, NullTracer

__all__ = [
    "render_report",
    "render_schedule_summary",
    "AllocationTracer",
    "NullTracer",
    "NULL_TRACER",
    "MemorySink",
    "JSONLSink",
    "ChromeTraceSink",
    "event_to_dict",
    "BatchTask",
    "BoundaryAction",
    "CacheHit",
    "CacheMiss",
    "CandidateMetrics",
    "Degraded",
    "PoolRestarted",
    "PreferenceApplied",
    "PseudoBound",
    "ServiceRequest",
    "SpillDecision",
    "StageTiming",
    "TaskFailed",
    "TaskRetried",
    "TileCacheHit",
    "TileColored",
    "BOUNDARY_ACTIONS",
    "SPILL_REASONS",
]
