"""Structured allocation-trace events.

Every observable decision the hierarchical allocator makes is describable
by one of the frozen dataclasses below.  Events are plain data: no methods
beyond what dataclasses provide, every field JSON-serializable through
:func:`dataclasses.asdict`, so any sink (in-memory list, JSONL file,
Chrome trace viewer) can consume the same stream.

Determinism contract: with the exception of :class:`StageTiming` (wall
times and thread names are inherently run-specific), every event is a pure
function of the input program and configuration -- the allocation pipeline
is bit-deterministic (see ``repro.determinism``), so the filtered event
stream is too.  Golden-trace tests rely on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

#: Reasons a :class:`SpillDecision` can carry, in the order the pipeline
#: can produce them for one variable.
SPILL_REASONS = (
    "not_worth_a_register",  # section-4 rule: transfer + weight < 0
    "no_color",              # optimistic coloring found no color
    "pressure_victim",       # evicted so an operand temporary could color
    "demotion",              # phase-2 rule: parent in memory, weight <= transfer
)

#: The paper's four boundary cases (section 3, "Inserting Spill Code").
BOUNDARY_ACTIONS = ("spill", "transfer", "reload", "no_change")


@dataclass(frozen=True)
class CandidateMetrics:
    """The five section-4 quantities for one allocation candidate."""

    local_weight: float
    transfer: float
    weight: float
    reg: float
    mem: float


@dataclass(frozen=True)
class TileColored:
    """One tile finished coloring (phase 1) or binding (phase 2).

    ``candidates`` carries the section-4 metrics for every variable that
    was visible in the tile, keyed by name; ``assignment`` maps colored
    nodes to their pseudo (phase 1) or physical (phase 2) register.
    """

    tile_id: int
    phase: str  # "phase1" | "phase2"
    kind: str   # tile provenance: "root" / "body" / "loop" / "cond"
    blocks: Tuple[str, ...]
    rounds: int
    assignment: Mapping[str, str]
    spilled: Tuple[str, ...]
    used_colors: Tuple[str, ...]
    candidates: Mapping[str, CandidateMetrics]


@dataclass(frozen=True)
class SpillDecision:
    """A variable was sent to memory, and why.

    ``weight`` / ``transfer`` are the section-4 values that justified the
    decision (``Weight_t(v)`` and ``Transfer_t(v)``); for coloring spills
    ``weight`` is the priority the spill heuristic ranked the node by.
    """

    tile_id: int
    phase: str
    var: str
    reason: str  # one of SPILL_REASONS
    weight: float
    transfer: float


@dataclass(frozen=True)
class BoundaryAction:
    """Treatment of one live variable on one tile-boundary edge.

    ``action`` names the paper case derived from the two locations:
    parent-register/child-memory is a Spill, two distinct registers a
    Transfer, parent-memory/child-register a Reload, identical locations
    No Change.  ``store_avoided`` marks the Reload exit half whose store
    was skipped because nothing in the subtile defines the variable ("the
    spill is unnecessary because v was never modified in the loop").
    """

    edge: Tuple[str, str]
    parent_tile: int
    child_tile: int
    entering: bool  # True: edge enters the child tile; False: exits it
    var: str
    action: str  # one of BOUNDARY_ACTIONS
    parent_loc: str  # physical register or the MEM sentinel
    child_loc: str
    store_avoided: bool = False


@dataclass(frozen=True)
class PreferenceApplied:
    """The coloring engine honored a preference.

    ``kind`` is ``"local"`` when the node took its local preference color
    (parent binding, linkage register) and ``"partner"`` when it inherited
    an already-colored preference partner's color (copy elimination).
    """

    tile_id: int
    phase: str
    var: str
    color: str
    kind: str  # "local" | "partner"


@dataclass(frozen=True)
class PseudoBound:
    """Phase 2 bound one of a tile's pseudo registers to its final home.

    ``pseudo`` is the phase-1 color, ``summary`` the tile summary variable
    that represented it in the parent, ``binding`` the physical register
    the parent gave that summary variable (or the MEM sentinel).
    """

    tile_id: int
    pseudo: str
    summary: str
    binding: str


@dataclass(frozen=True)
class CacheHit:
    """The batch engine served one function from the allocation cache.

    ``source`` says which layer answered: ``"memory"`` for the in-process
    LRU, ``"disk"`` for the persistent content-addressed store.
    ``fingerprint`` is the canonical-program sha256 of the *input*
    function (the content address; see :mod:`repro.batch.serialize`).
    """

    function: str
    fingerprint: str
    source: str  # "memory" | "disk"


@dataclass(frozen=True)
class CacheMiss:
    """No cached allocation existed for one function; it will be computed."""

    function: str
    fingerprint: str


@dataclass(frozen=True)
class TileCacheHit:
    """One tile was served from the per-tile memoization store
    (:mod:`repro.core.incremental`) instead of being recomputed.

    ``phase`` says which layer answered: ``"phase1"`` for a reused
    bottom-up summary, ``"phase2"`` for a reused top-down binding
    overlay.  ``fingerprint`` is the tile's content address.  On a
    phase-2 hit this event *replaces* the tile's ``TileColored`` event
    (the binding was not recomputed, so there is nothing to trace).
    """

    tile_id: int
    phase: str
    fingerprint: str


@dataclass(frozen=True)
class BatchTask:
    """One function's trip through the batch engine.

    ``worker`` names where the allocation ran: ``"worker-<i>"`` for a
    pool process, ``"inline"`` for the coordinator process, ``"cache"``
    when a cache hit made computation unnecessary.  ``start`` is seconds
    since the batch run began (wall clock, comparable across worker
    processes); the Chrome sink lays these out as one row per worker.
    """

    function: str
    fingerprint: str
    worker: str
    start: float
    duration: float
    cached: bool


@dataclass(frozen=True)
class TaskFailed:
    """One attempt at one batch task failed.

    Emitted once per *failed attempt* (so a task that fails twice and
    then succeeds produces two of these).  ``error_class`` /
    ``permanence`` come from :func:`repro.errors.classify_exception`;
    ``attempt`` is 0-based.
    """

    function: str
    fingerprint: str
    error_class: str
    permanence: str  # "permanent" | "transient"
    attempt: int
    message: str


@dataclass(frozen=True)
class TaskRetried:
    """The engine re-queued a transiently-failed batch task.

    ``attempt`` is the 0-based number of the *upcoming* attempt;
    ``backoff_s`` the deterministic delay applied before it.
    """

    function: str
    fingerprint: str
    attempt: int
    backoff_s: float


@dataclass(frozen=True)
class PoolRestarted:
    """The worker pool broke (crashed worker, hung task) and was rebuilt.

    ``restarts`` is the engine's cumulative restart count after this one;
    ``resubmitted`` how many in-flight tasks were re-queued onto the
    fresh pool.
    """

    restarts: int
    resubmitted: int


@dataclass(frozen=True)
class Admitted:
    """Admission control let one function through to the allocator.

    Emitted only when an admission limit is configured
    (``BatchConfig.admission_limit``).  ``cost`` is
    :func:`repro.core.budget.estimate_cost` of the input function --
    deterministic, so the admit/reject stream is too.
    """

    function: str
    fingerprint: str
    cost: int
    limit: int


@dataclass(frozen=True)
class Rejected:
    """Admission control refused one function.

    Its estimated cost exceeded ``BatchConfig.admission_limit``; the
    function never reaches the hierarchical allocator and fails with
    permanent error class ``"admission"`` (routing to the degradation
    ladder, or skipping/failing, per ``on_error``).
    """

    function: str
    fingerprint: str
    cost: int
    limit: int


@dataclass(frozen=True)
class BudgetExceeded:
    """A budgeted allocation ran out of fuel or past its deadline.

    ``resource`` is ``"fuel"`` (deterministic, permanent) or
    ``"deadline"`` (wall clock, transient); ``spent`` / ``limit`` are in
    fuel units or seconds accordingly.  Fuel events are covered by the
    determinism contract; deadline events are not.
    """

    function: str
    fingerprint: str
    resource: str  # "fuel" | "deadline"
    spent: float
    limit: float


@dataclass(frozen=True)
class Degraded:
    """A function landed on the degradation ladder.

    After its primary (hierarchical) allocation failed permanently or
    exhausted its retries, ``fallback_allocator`` (``"chaitin"`` or the
    spill-everywhere ``"naive"``) produced the result instead.
    ``error_class`` names the primary failure that forced the fallback.
    """

    function: str
    fingerprint: str
    fallback_allocator: str
    error_class: str


@dataclass(frozen=True)
class ServiceRequest:
    """One HTTP request handled by the allocation service.

    Request-scoped accounting for :mod:`repro.service`: ``endpoint`` is
    the route (``"allocate"`` / ``"metrics"`` / ``"healthz"``),
    ``status`` the HTTP status returned, ``functions`` how many
    functions the request carried (0 for non-allocate endpoints), and
    ``coalesced`` how many of those were attached to an allocation
    already in flight for another request instead of being enqueued.

    Like :class:`StageTiming`, this event is *not* covered by the
    determinism contract: ``duration_ms`` is wall clock, and status
    codes depend on run-specific load (a 429 exists only under
    backpressure).
    """

    endpoint: str
    method: str
    status: int
    functions: int
    coalesced: int
    duration_ms: float


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock interval of one pipeline stage or per-tile task.

    ``start`` is a ``time.perf_counter`` value -- meaningful only relative
    to other events of the same process.  ``category`` is ``"pipeline"``
    for whole-allocation stages and ``"tile"`` for per-tile scheduler
    tasks; the latter carry the worker ``thread`` name, which is what the
    Chrome trace sink lays out as rows.
    """

    name: str
    category: str  # "pipeline" | "tile"
    start: float
    duration: float
    thread: str = ""
    tile_id: Optional[int] = None
