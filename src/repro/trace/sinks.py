"""Event sinks: in-memory, JSON Lines, and Chrome trace-event format.

A sink is anything with ``handle(event)`` and ``close()``.  The three
shipped here cover the common consumers:

* :class:`MemorySink` -- a list, for tests, the CLI report, and the
  walkthrough generator.
* :class:`JSONLSink` -- one JSON object per line, ``{"type": ..., **fields}``,
  the shape log pipelines ingest.
* :class:`ChromeTraceSink` -- converts :class:`~repro.trace.events.StageTiming`
  events into the Chrome trace-event JSON format, so a parallel-scheduler
  run can be opened in ``chrome://tracing`` / Perfetto with one row per
  worker thread.

Sinks are called with the tracer's lock held (see
:class:`~repro.trace.tracer.AllocationTracer.emit`), so they need no
locking of their own.
"""

from __future__ import annotations

import io
import json
from dataclasses import asdict, is_dataclass
from typing import Dict, IO, Iterator, List, Optional, Type, Union

from repro.trace.events import BatchTask, StageTiming


def event_to_dict(event: object) -> Dict[str, object]:
    """JSON-friendly dict for one event, with its type name included."""
    payload = asdict(event) if is_dataclass(event) else dict(vars(event))
    return {"type": type(event).__name__, **payload}


class MemorySink:
    """Accumulates events in a list (``.events``)."""

    def __init__(self) -> None:
        self.events: List[object] = []

    def handle(self, event: object) -> None:
        self.events.append(event)

    def of_type(self, *types: Type) -> List[object]:
        """Events that are instances of any of *types*, in emit order."""
        return [e for e in self.events if isinstance(e, types)]

    def close(self) -> None:
        pass


class JSONLSink:
    """Writes one JSON object per event to a path or file-like object."""

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w")
            self._owns = True
        else:
            self._fh = target
            self._owns = False

    def handle(self, event: object) -> None:
        json.dump(event_to_dict(event), self._fh, sort_keys=True)
        self._fh.write("\n")

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


class ChromeTraceSink:
    """Collects :class:`StageTiming` events; ``close()`` writes the Chrome
    trace-event JSON (``{"traceEvents": [...]}``).

    Complete events (``"ph": "X"``) are laid out with one trace ``tid``
    per worker-thread name (plus thread-name metadata events), which is
    exactly the view that shows the dependency-driven scheduler keeping
    its workers busy.  :class:`~repro.trace.events.BatchTask` events get
    the same treatment with one row per batch *worker process* (their
    ``start`` values are already relative to the batch run, a different
    clock than ``StageTiming``'s ``perf_counter``, so the two families
    are normalized independently).  Other events are ignored -- pair this
    sink with a :class:`MemorySink` or :class:`JSONLSink` for the rest.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        self._target = target
        self._timings: List[StageTiming] = []
        self._tasks: List[BatchTask] = []

    def handle(self, event: object) -> None:
        if isinstance(event, StageTiming):
            self._timings.append(event)
        elif isinstance(event, BatchTask):
            self._tasks.append(event)

    def trace_events(self) -> List[Dict[str, object]]:
        """The Chrome trace-event records for everything collected so far."""
        tids: Dict[str, int] = {}
        records: List[Dict[str, object]] = []

        def row(thread: str) -> int:
            if thread not in tids:
                tids[thread] = len(tids)
                records.append({
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tids[thread],
                    "args": {"name": thread},
                })
            return tids[thread]

        if self._timings:
            origin = min(t.start for t in self._timings)
            for timing in self._timings:
                records.append({
                    "name": timing.name,
                    "cat": timing.category,
                    "ph": "X",
                    "pid": 0,
                    "tid": row(timing.thread or "main"),
                    "ts": (timing.start - origin) * 1e6,   # microseconds
                    "dur": timing.duration * 1e6,
                    "args": (
                        {"tile": timing.tile_id}
                        if timing.tile_id is not None
                        else {}
                    ),
                })
        if self._tasks:
            origin = min(t.start for t in self._tasks)
            for task in self._tasks:
                records.append({
                    "name": task.function,
                    "cat": "batch",
                    "ph": "X",
                    "pid": 0,
                    "tid": row(task.worker),
                    "ts": (task.start - origin) * 1e6,
                    "dur": task.duration * 1e6,
                    "args": {
                        "fingerprint": task.fingerprint[:12],
                        "cached": task.cached,
                    },
                })
        return records

    def close(self) -> None:
        payload = {"traceEvents": self.trace_events()}
        if isinstance(self._target, str):
            with open(self._target, "w") as fh:
                json.dump(payload, fh)
        else:
            json.dump(payload, self._target)
