"""End-to-end compilation pipeline.

``compile_function`` renames a program into webs, runs an allocator,
verifies the result differentially against the original on supplied inputs,
and gathers both static and dynamic statistics -- everything the benchmark
harness consumes.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.allocators.base import AllocationOutcome, Allocator
from repro.analysis.renaming import rename_webs
from repro.ir.function import Function
from repro.ir.validate import validate_function
from repro.machine.rewrite import remove_self_moves
from repro.machine.simulator import ExecutionResult, SimulationError, simulate
from repro.machine.target import Machine
from repro.trace.events import StageTiming
from repro.trace.tracer import NULL_TRACER, NullTracer


@contextmanager
def _stage(tracer: NullTracer, name: str):
    """Emit one pipeline-level :class:`StageTiming`; free when disabled."""
    if not tracer.enabled:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        tracer.emit(StageTiming(
            name=name, category="pipeline", start=start,
            duration=time.perf_counter() - start,
            thread=threading.current_thread().name,
        ))


@dataclass
class Workload:
    """A function together with concrete inputs that exercise it."""

    fn: Function
    args: Dict[str, Any] = field(default_factory=dict)
    arrays: Dict[str, Sequence[Any]] = field(default_factory=dict)
    name: Optional[str] = None

    def label(self) -> str:
        return self.name or self.fn.name


@dataclass
class CompileResult:
    """Outcome of compiling and measuring one workload with one allocator."""

    outcome: AllocationOutcome
    reference_run: ExecutionResult
    allocated_run: ExecutionResult

    @property
    def fn(self) -> Function:
        return self.outcome.fn

    @property
    def stats(self):
        return self.outcome.stats

    @property
    def spill_refs(self) -> int:
        """Dynamic spill memory references (the paper's objective)."""
        return self.allocated_run.spill_memory_refs

    @property
    def moves(self) -> int:
        return self.allocated_run.register_moves

    @property
    def overhead_summary(self) -> Dict[str, int]:
        return {
            "spill_loads": self.allocated_run.spill_loads,
            "spill_stores": self.allocated_run.spill_stores,
            "moves": self.allocated_run.register_moves,
            "program_refs": self.allocated_run.program_memory_refs,
        }


def prepare(fn: Function, rename: bool = True, optimize: bool = False) -> Function:
    """Validate, optionally optimize, and (by default) rename into webs."""
    validate_function(fn)
    if optimize:
        from repro.opt import optimize as run_passes

        fn = run_passes(fn)
        validate_function(fn)
    if not rename:
        return fn
    renamed, _ = rename_webs(fn)
    validate_function(renamed)
    return renamed


def compile_function(
    workload: Workload,
    allocator: Allocator,
    machine: Machine,
    rename: bool = True,
    verify: bool = True,
    optimize: bool = False,
    max_steps: int = 2_000_000,
    tracer: Optional[NullTracer] = None,
) -> CompileResult:
    """Allocate registers for a workload and verify + measure the result.

    The original program and the allocated program run on identical inputs;
    mismatching observable results raise
    :class:`~repro.machine.simulator.SimulationError`.  With *optimize* the
    standard scalar/CFG cleanups run before allocation (the differential
    check still compares against the unoptimized original).

    *tracer* (see :mod:`repro.trace`) records pipeline stage timings here
    and, when the allocator carries no tracer of its own, is handed to it
    so per-tile allocation events land in the same stream.
    """
    trace = tracer if tracer is not None else NULL_TRACER
    if (
        trace.enabled
        and getattr(allocator, "tracer", None) is not None
        and not allocator.tracer.enabled
    ):
        allocator.tracer = trace
    with _stage(trace, "pipeline:prepare"):
        fn = prepare(workload.fn, rename=rename, optimize=optimize)
    with _stage(trace, "pipeline:reference_run"):
        reference = simulate(
            workload.fn,
            args=workload.args,
            arrays=workload.arrays,
            max_steps=max_steps,
        )

    with _stage(trace, "pipeline:allocate"):
        outcome = allocator.allocate(fn, machine)
        remove_self_moves(outcome.fn)
        validate_function(outcome.fn, allow_unreachable=True)

    allocated_args = _map_args(outcome.fn, fn, workload.args)
    with _stage(trace, "pipeline:allocated_run"):
        allocated = simulate(
            outcome.fn,
            args=allocated_args,
            arrays=workload.arrays,
            max_steps=max_steps,
        )
    if verify:
        if reference.returned != allocated.returned:
            raise SimulationError(
                f"{allocator.name}: return mismatch "
                f"{reference.returned} vs {allocated.returned}"
            )
        if _canonical_arrays(reference.arrays) != _canonical_arrays(allocated.arrays):
            raise SimulationError(
                f"{allocator.name}: memory state mismatch"
            )
    return CompileResult(outcome, reference, allocated)


def _map_args(
    allocated_fn: Function, source_fn: Function, args: Mapping[str, Any]
) -> Dict[str, Any]:
    """Map user argument names onto the allocated function's parameters.

    Parameter order is preserved through renaming and allocation, so the
    i-th parameter of the allocated function receives the value of the
    i-th source parameter.
    """
    out: Dict[str, Any] = {}
    for target, source in zip(allocated_fn.params, source_fn.params):
        base = source.split("%")[0]
        if source in args:
            out[target] = args[source]
        elif base in args:
            out[target] = args[base]
        else:
            raise SimulationError(f"missing argument for parameter {base!r}")
    return out


def _canonical_arrays(arrays):
    return {
        name: {i: v for i, v in contents.items() if v != 0}
        for name, contents in arrays.items()
    }


def allocate_module(
    workloads: Sequence[Workload],
    config=None,
    machine: Optional[Machine] = None,
    batch=None,
    tracer: Optional[NullTracer] = None,
):
    """Allocate a whole module (many functions) through the batch engine.

    The multi-function counterpart of :func:`compile_function`: functions
    are fingerprinted and served from the content-addressed allocation
    cache when possible; misses fan out over a persistent process pool
    (``batch.batch_workers``) and merge back in submission order, so the
    returned :class:`~repro.batch.engine.ModuleAllocation` is a
    deterministic function of the input module.  See :mod:`repro.batch`
    for the engine, cache and serialization layers, and
    :class:`~repro.core.config.BatchConfig` for the knobs.

    For repeated batches against one cache/pool, hold a
    :class:`~repro.batch.engine.BatchEngine` open instead of calling this
    in a loop (each call here builds and tears down its own engine).
    """
    from repro.batch.engine import BatchEngine

    with BatchEngine(
        config=config, machine=machine, batch=batch, tracer=tracer
    ) as engine:
        return engine.allocate_module(workloads)


def compare_allocators(
    workload: Workload,
    allocators: Sequence[Allocator],
    machine: Machine,
    **kwargs,
) -> Dict[str, CompileResult]:
    """Compile one workload with several allocators (bench helper)."""
    return {
        allocator.name: compile_function(workload, allocator, machine, **kwargs)
        for allocator in allocators
    }
