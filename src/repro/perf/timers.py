"""Per-stage wall-clock timing for the allocation pipeline.

The allocator wraps each pipeline stage (tile construction, liveness,
phase 1, phase 2, rewrite) in :meth:`StageTimers.stage` and publishes the
accumulated times in ``AllocStats.extra["stage_times"]`` so benches can
report where time goes without profiling.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional


class StageTimers:
    """Accumulates wall time and a call count per named stage (re-entrant
    per stage name)."""

    def __init__(self) -> None:
        self._times: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()

    @contextmanager
    def stage(self, name: str, tracer=None) -> Iterator[None]:
        """Time one stage; with an enabled *tracer*, also emit the interval
        as a :class:`~repro.trace.events.StageTiming` event."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self._times[name] = self._times.get(name, 0.0) + elapsed
                self._counts[name] = self._counts.get(name, 0) + 1
            if tracer is not None and tracer.enabled:
                from repro.trace.events import StageTiming

                tracer.emit(StageTiming(
                    name=name,
                    category="pipeline",
                    start=start,
                    duration=elapsed,
                    thread=threading.current_thread().name,
                ))

    def add(self, name: str, seconds: float) -> None:
        with self._lock:
            self._times[name] = self._times.get(name, 0.0) + seconds
            self._counts[name] = self._counts.get(name, 0) + 1

    def merge(self, times: "Mapping[str, float]") -> None:
        """Fold another stage -> seconds mapping into this one.

        The batch engine (:mod:`repro.batch.engine`) aggregates the
        per-stage times its worker processes report, so one
        :class:`StageTimers` summarizes where a whole module's allocation
        time went.  Each merged stage counts as one call (one function's
        worth of that stage)."""
        with self._lock:
            for name, seconds in times.items():
                self._times[name] = self._times.get(name, 0.0) + seconds
                self._counts[name] = self._counts.get(name, 0) + 1

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of stage -> accumulated seconds."""
        with self._lock:
            return dict(self._times)

    def counts(self) -> Dict[str, int]:
        """Snapshot of stage -> accumulated call count."""
        with self._lock:
            return dict(self._counts)

    @classmethod
    def from_snapshot(
        cls,
        times: "Mapping[str, float]",
        counts: "Optional[Mapping[str, int]]" = None,
    ) -> "StageTimers":
        """Rehydrate from published ``stage_times``/``stage_counts``
        snapshots (``AllocStats.extra``, batch stats) for reporting."""
        out = cls()
        out._times.update(times)
        out._counts.update(counts or {name: 1 for name in times})
        return out

    def report(self, total: Optional[float] = None) -> str:
        """Human-readable attribution table: one line per stage, sorted by
        descending time, with share of *total* (defaults to the stage
        sum) -- the ``--profile`` CLI flag and the analysis bench print
        this."""
        with self._lock:
            times = dict(self._times)
            counts = dict(self._counts)
        base = total if total is not None else sum(times.values())
        lines = []
        for name in sorted(times, key=lambda n: -times[n]):
            seconds = times[name]
            share = (100.0 * seconds / base) if base > 0 else 0.0
            lines.append(
                f"{name:<12} {seconds * 1e3:9.2f} ms  {share:5.1f}%  "
                f"x{counts.get(name, 0)}"
            )
        return "\n".join(lines)

    def total(self) -> float:
        with self._lock:
            return sum(self._times.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{k}={v * 1e3:.1f}ms" for k, v in sorted(self.as_dict().items())
        )
        return f"<StageTimers {parts}>"
