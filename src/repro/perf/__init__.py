"""Performance core: interning, bitsets and stage timing.

The analysis layer (liveness, interference construction) runs over dense
integer variable ids and Python-int bitsets instead of string sets; the
:class:`VarIndex` interning layer maps between the two representations.
:class:`StageTimers` records wall time per pipeline stage so benches can
report where allocation time goes.
"""

from repro.perf.varindex import VarIndex, iter_bits, bit_count
from repro.perf.timers import StageTimers

__all__ = ["VarIndex", "iter_bits", "bit_count", "StageTimers"]
