"""Variable interning and bitset helpers.

A :class:`VarIndex` assigns dense integer ids to variable names in first-seen
order, so a set of variables becomes a single Python int with bit *i* set
when variable *i* is a member.  Set algebra then collapses to ``&``/``|``/
``& ~`` on machine words, which is what makes the block-level dataflow loop
and Chaitin edge insertion cheap (see DESIGN.md, "Performance
architecture").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of *mask*, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bit_count(mask: int) -> int:
    """Number of set bits (members of the encoded set)."""
    return mask.bit_count()


class VarIndex:
    """Bidirectional name <-> dense-id interning table.

    Ids are assigned in first-intern order and never change, so any bitset
    built against an index stays valid as more names are interned (growing
    the index only adds higher bits).
    """

    __slots__ = ("_ids", "_names")

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._ids: Dict[str, int] = {}
        self._names: List[str] = []
        for name in names:
            self.intern(name)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._ids

    def intern(self, name: str) -> int:
        """Id of *name*, assigning the next free id on first sight."""
        vid = self._ids.get(name)
        if vid is None:
            vid = len(self._names)
            self._ids[name] = vid
            self._names.append(name)
        return vid

    def id_of(self, name: str) -> int:
        """Id of an already-interned name (KeyError otherwise)."""
        return self._ids[name]

    def name_of(self, vid: int) -> str:
        return self._names[vid]

    def names(self) -> List[str]:
        """All interned names in id order."""
        return list(self._names)

    # ------------------------------------------------------------------
    # set <-> bitset conversion
    # ------------------------------------------------------------------
    def mask_of(self, names: Iterable[str]) -> int:
        """Bitset of *names*, interning any new ones."""
        mask = 0
        intern = self.intern
        for name in names:
            mask |= 1 << intern(name)
        return mask

    def mask_of_known(self, names: Iterable[str]) -> int:
        """Bitset of the already-interned members of *names*; unknown names
        are skipped (they cannot be in any bitset built on this index)."""
        mask = 0
        ids = self._ids
        for name in names:
            vid = ids.get(name)
            if vid is not None:
                mask |= 1 << vid
        return mask

    def members(self, mask: int) -> List[str]:
        """Names of the set bits of *mask*, in id order."""
        # Bit loop inlined (not iter_bits): this runs once per block/instr
        # queried and generator resumption dominates at that call volume.
        names = self._names
        out = []
        append = out.append
        while mask:
            low = mask & -mask
            append(names[low.bit_length() - 1])
            mask ^= low
        return out

    def frozenset_of(self, mask: int) -> FrozenSet[str]:
        return frozenset(self.members(mask))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VarIndex {len(self)} names>"
