"""Flat, array-backed per-function analysis arena.

The cold allocation path used to re-walk ``Instr`` objects (and re-intern
their operand names) once per analysis: liveness, interference, metrics,
spill-site discovery and preferencing each traversed the object CFG.  A
:class:`FunctionArena` lowers the function **once** into flat parallel
tables -- per-instruction def/use/clobber bitsets over the shared
:class:`~repro.perf.varindex.VarIndex`, per-block instruction ranges, block
adjacency in CSR form -- and every later analysis runs over machine words.

Layout (all tables indexed by dense ids, assigned in deterministic
first-seen order):

* **variables**: interned into ``index`` in exactly the order the classic
  ``compute_liveness`` interned them (per block in ``fn.blocks`` order, per
  instruction uses first, then defs), then clobber-only names.  Bitsets
  over the index are plain Python ints, so width is unbounded.
* **blocks**: ``labels[bid]``/``block_id[label]``; instructions of block
  *bid* occupy the flat range ``block_start[bid]:block_start[bid+1]``.
* **instructions**: parallel lists ``i_defs``/``i_uses``/``i_clob``
  (bitsets), ``i_written_vids`` (def+clobber vids in operand order, for
  def-point interference), ``i_exempt`` (copy-exemption bit) and
  ``instrs`` (the original ``Instr`` objects, for the rare consumers that
  need operand order or immediates).
* **CFG**: successor/predecessor adjacency in CSR form
  (``succ_indptr``/``succ_ids`` and the ``pred_*`` twins) -- numpy int32
  arrays when numpy is present *and* the function has at least
  ``VECTOR_LIVENESS_MIN_BLOCKS`` blocks (the vectorized liveness sweep is
  their only array-level consumer), plain Python lists otherwise (the
  small-function fast path: no asarray cost, and the scalar worklist
  indexes lists faster than it indexes numpy arrays).

Invalidation: the arena is a snapshot.  It is valid from construction
until the function is mutated (CFG edits *or* in-place instruction edits);
the allocator calls :meth:`FunctionArena.retire` before the spill-rewrite
stage, after which consumers fall back to the object walk.  See DESIGN.md,
"Arena and CSR layout".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.function import Function
from repro.perf.varindex import VarIndex

try:  # numpy is optional at runtime; the arena works without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in the dev image
    _np = None

#: Block count at or above which the vectorized (numpy) liveness sweep is
#: preferred over the scalar worklist.  Small functions converge in a few
#: worklist pops; the batched sweep pays off once many blocks change per
#: round.  Both compute the same least fixed point, so the cutover is a
#: pure performance knob (property-tested equivalent in
#: tests/test_arena_differential.py).
VECTOR_LIVENESS_MIN_BLOCKS = 48


class FunctionArena:
    """Immutable flat lowering of one function (see module docstring)."""

    __slots__ = (
        "fn", "index", "cfg_version", "labels", "block_id",
        "block_start", "instrs", "i_defs", "i_uses", "i_clob",
        "i_written", "i_ref", "i_exempt", "i_written_vids",
        "block_use", "block_def", "block_ref",
        "succ_indptr", "succ_ids", "pred_indptr", "pred_ids",
        "copy_sites", "live_in", "live_out", "budget",
        "_var_ref_blocks", "_var_def_blocks", "_var_sites", "_retired",
        "_name_rank", "_var_ref_bmask", "_var_def_bmask", "_block_digests",
    )

    def __init__(self, fn: Function, index: VarIndex, budget=None) -> None:
        self.fn = fn
        self.index = index
        self.cfg_version = getattr(fn, "cfg_version", None)
        self.budget = budget
        self._retired = False

        # ---- pass 1: interning in the classic liveness order ----------
        # (per block, per instruction: uses first, then defs), so every
        # vid handed out by the arena matches what compute_liveness would
        # have assigned.  Clobber-only names are interned afterwards.
        intern = index.intern
        labels: List[str] = []
        block_start: List[int] = [0]
        instrs = []
        block_use: List[int] = []
        block_def: List[int] = []
        i_defs: List[int] = []
        i_uses: List[int] = []
        for label, block in fn.blocks.items():
            if budget is not None:
                budget.charge(1 + len(block.instrs), "instrs")
            labels.append(label)
            use_mask = 0
            def_mask = 0
            for instr in block.instrs:
                instrs.append(instr)
                um = 0
                for u in instr.uses:
                    um |= 1 << intern(u)
                use_mask |= um & ~def_mask
                dm = 0
                for d in instr.defs:
                    dm |= 1 << intern(d)
                def_mask |= dm
                i_uses.append(um)
                i_defs.append(dm)
            block_start.append(len(instrs))
            block_use.append(use_mask)
            block_def.append(def_mask)
        self.labels = labels
        self.block_id = {label: bid for bid, label in enumerate(labels)}
        self.block_start = block_start
        self.instrs = instrs
        self.block_use = block_use
        self.block_def = block_def

        # ---- pass 2: clobbers (interned here, after every use/def), the
        # derived per-instruction tables, per-block referenced masks and
        # copy sites -- one walk instead of three.
        n = len(instrs)
        i_clob = [0] * n
        i_written = [0] * n
        i_ref = [0] * n
        i_exempt = [0] * n
        i_written_vids: List[Tuple[int, ...]] = [()] * n
        block_ref = [0] * len(labels)
        copy_sites: List[Tuple[int, str, str]] = []
        bid = 0
        ref_mask = 0
        for i, instr in enumerate(instrs):
            while i >= block_start[bid + 1]:
                block_ref[bid] = ref_mask
                ref_mask = 0
                bid += 1
            dm = i_defs[i]
            um = i_uses[i]
            cm = 0
            for v in instr.clobbers:
                cm |= 1 << intern(v)
            i_clob[i] = cm
            written = dm | cm
            i_written[i] = written
            i_ref[i] = written | um
            ref_mask |= written | um
            if instr.is_copy_like and instr.uses:
                i_exempt[i] = 1 << intern(instr.uses[0])
                if instr.defs:
                    copy_sites.append((bid, instr.defs[0], instr.uses[0]))
            if written:
                i_written_vids[i] = tuple(
                    intern(v) for v in instr.defs + instr.clobbers
                )
        if labels:
            block_ref[bid] = ref_mask
        self.i_defs = i_defs
        self.i_uses = i_uses
        self.i_clob = i_clob
        self.i_written = i_written
        self.i_ref = i_ref
        self.i_exempt = i_exempt
        self.i_written_vids = i_written_vids
        self.block_ref = block_ref

        # ---- CFG adjacency in CSR form --------------------------------
        block_id = self.block_id
        succ_indptr: List[int] = [0]
        succ_ids: List[int] = []
        preds: List[List[int]] = [[] for _ in labels]
        for bid, label in enumerate(labels):
            for s in fn.blocks[label].succ_labels:
                sid = block_id[s]
                succ_ids.append(sid)
                preds[sid].append(bid)
            succ_indptr.append(len(succ_ids))
        pred_indptr: List[int] = [0]
        pred_ids: List[int] = []
        for plist in preds:
            pred_ids.extend(plist)
            pred_indptr.append(len(pred_ids))
        # Small-function fast path: the numpy CSR arrays exist for the
        # vectorized liveness sweep (their only array-level consumer),
        # which never runs below VECTOR_LIVENESS_MIN_BLOCKS -- and the
        # scalar worklist indexes plain lists *faster* than numpy arrays
        # (each numpy index boxes an int32 scalar).  So tiny functions
        # skip the four asarray conversions entirely and keep the lists.
        if _np is not None and len(labels) >= VECTOR_LIVENESS_MIN_BLOCKS:
            self.succ_indptr = _np.asarray(succ_indptr, dtype=_np.int32)
            self.succ_ids = _np.asarray(succ_ids, dtype=_np.int32)
            self.pred_indptr = _np.asarray(pred_indptr, dtype=_np.int32)
            self.pred_ids = _np.asarray(pred_ids, dtype=_np.int32)
        else:
            self.succ_indptr = succ_indptr
            self.succ_ids = succ_ids
            self.pred_indptr = pred_indptr
            self.pred_ids = pred_ids

        # copy sites -- (block id, def name, use name) per COPY/MOVE with
        # both operands -- were collected during pass 2 above.
        self.copy_sites = copy_sites

        # ---- lazily-filled tables -------------------------------------
        self.live_in: List[int] = []
        self.live_out: List[int] = []
        self._var_ref_blocks: Optional[List[Tuple[int, ...]]] = None
        self._var_def_blocks: Optional[List[Tuple[int, ...]]] = None
        self._var_ref_bmask: Optional[List[int]] = None
        self._var_def_bmask: Optional[List[int]] = None
        self._var_sites: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        self._name_rank: Optional[List[int]] = None
        self._block_digests: Optional[List[Optional[str]]] = None

    # ------------------------------------------------------------------
    # validity
    # ------------------------------------------------------------------
    def retire(self) -> None:
        """Mark the snapshot stale (the function is about to be mutated).

        Consumers holding the arena fall back to walking the live
        ``Instr`` objects; cheap and explicit, where version-sniffing
        would miss in-place instruction edits."""
        self._retired = True

    @property
    def retired(self) -> bool:
        return self._retired or getattr(self.fn, "cfg_version", None) != self.cfg_version

    # ------------------------------------------------------------------
    # per-variable tables
    # ------------------------------------------------------------------
    def _build_var_blocks(self) -> None:
        # Block-id tuples are ordered by *label* (not block id): the
        # metrics pass sums floats walking these and the sum order is
        # part of the determinism contract (see core/metrics.py).
        nvars = len(self.index)
        ref_sets: List[List[int]] = [[] for _ in range(nvars)]
        def_sets: List[List[int]] = [[] for _ in range(nvars)]
        order = sorted(range(len(self.labels)), key=self.labels.__getitem__)
        start = self.block_start
        i_ref = self.i_ref
        i_written = self.i_written
        i_clob = self.i_clob
        for bid in order:
            ref_mask = 0
            wr_mask = 0
            for i in range(start[bid], start[bid + 1]):
                ref_mask |= i_ref[i]
                wr_mask |= i_written[i]
            while ref_mask:
                low = ref_mask & -ref_mask
                ref_sets[low.bit_length() - 1].append(bid)
                ref_mask ^= low
            while wr_mask:
                low = wr_mask & -wr_mask
                def_sets[low.bit_length() - 1].append(bid)
                wr_mask ^= low
        self._var_ref_blocks = [tuple(s) for s in ref_sets]
        self._var_def_blocks = [tuple(s) for s in def_sets]
        self._var_ref_bmask = [
            _mask_of_ids(s) for s in self._var_ref_blocks
        ]
        self._var_def_bmask = [
            _mask_of_ids(s) for s in self._var_def_blocks
        ]

    def var_ref_blocks(self, vid: int) -> Tuple[int, ...]:
        """Block ids referencing *vid* (defs, uses or clobbers), ordered
        by block label."""
        if self._var_ref_blocks is None:
            self._build_var_blocks()
        if vid >= len(self._var_ref_blocks):
            return ()
        return self._var_ref_blocks[vid]

    def var_def_blocks(self, vid: int) -> Tuple[int, ...]:
        """Block ids writing *vid* (defs or clobbers), ordered by label."""
        if self._var_def_blocks is None:
            self._build_var_blocks()
        if vid >= len(self._var_def_blocks):
            return ()
        return self._var_def_blocks[vid]

    def var_ref_bmask(self, vid: int) -> int:
        """Bitset (over block ids) of blocks referencing *vid*."""
        if self._var_ref_bmask is None:
            self._build_var_blocks()
        if vid >= len(self._var_ref_bmask):
            return 0
        return self._var_ref_bmask[vid]

    def var_def_bmask(self, vid: int) -> int:
        """Bitset (over block ids) of blocks writing *vid*."""
        if self._var_def_bmask is None:
            self._build_var_blocks()
        if vid >= len(self._var_def_bmask):
            return 0
        return self._var_def_bmask[vid]

    def name_rank(self) -> List[int]:
        """``rank[vid]`` = position of the vid's name in the sorted list
        of all interned names.  Lets mask consumers materialize
        name-sorted output without per-call string sorts.  Built against
        the current index size; rebuilt if names were interned since."""
        rank = self._name_rank
        if rank is None or len(rank) != len(self.index):
            names = self.index.names()
            order = sorted(range(len(names)), key=names.__getitem__)
            rank = [0] * len(names)
            for pos, vid in enumerate(order):
                rank[vid] = pos
            self._name_rank = rank
        return rank

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    def compute_liveness(self) -> None:
        """Fill ``live_in``/``live_out`` (block-level bitsets, by block id).

        Solves the classic backward equations.  Two interchangeable
        engines compute the same least fixed point: a scalar bitset
        worklist (fast for small CFGs) and a batched numpy sweep over
        word-packed rows (wins once many blocks change per round).
        """
        nblocks = len(self.labels)
        if (
            _np is not None
            and nblocks >= VECTOR_LIVENESS_MIN_BLOCKS
        ):
            self._liveness_vectorized()
        else:
            self._liveness_worklist()

    def _liveness_worklist(self) -> None:
        fn = self.fn
        block_id = self.block_id
        use_map = self.block_use
        def_map = self.block_def
        nblocks = len(self.labels)
        live_in = [0] * nblocks
        live_out = [0] * nblocks

        order = [block_id[label] for label in fn.rpo()]
        order_set = set(order)
        order += [bid for bid in range(nblocks) if bid not in order_set]
        worklist = list(reversed(order))
        in_worklist = set(worklist)
        succ_indptr = self.succ_indptr
        succ_ids = self.succ_ids
        pred_indptr = self.pred_indptr
        pred_ids = self.pred_ids

        budget = self.budget
        while worklist:
            if budget is not None:
                budget.charge(1, "liveness")
            bid = worklist.pop()
            in_worklist.discard(bid)
            new_out = 0
            for j in range(succ_indptr[bid], succ_indptr[bid + 1]):
                new_out |= live_in[succ_ids[j]]
            new_in = use_map[bid] | (new_out & ~def_map[bid])
            if new_out != live_out[bid] or new_in != live_in[bid]:
                live_out[bid] = new_out
                live_in[bid] = new_in
                for j in range(pred_indptr[bid], pred_indptr[bid + 1]):
                    pid = pred_ids[j]
                    if pid not in in_worklist:
                        worklist.append(int(pid))
                        in_worklist.add(int(pid))

        self.live_in = live_in
        self.live_out = live_out

    def _liveness_vectorized(self) -> None:
        """Batched word-level sweep: all blocks advance one transfer-
        function application per round, with live sets packed as rows of
        uint64 words and edge propagation done by an unbuffered
        scatter-OR over the CSR edge list."""
        nblocks = len(self.labels)
        nvars = len(self.index)
        nwords = max(1, (nvars + 63) >> 6)
        use_m = _pack_rows(self.block_use, nblocks, nwords)
        def_m = _pack_rows(self.block_def, nblocks, nwords)
        not_def = ~def_m

        # Edge list (src block -> dst block) from the successor CSR.
        indptr = _np.asarray(self.succ_indptr)
        src = _np.repeat(
            _np.arange(nblocks, dtype=_np.int32), _np.diff(indptr)
        )
        dst = _np.asarray(self.succ_ids)

        budget = self.budget
        live_in = use_m.copy()
        live_out = _np.zeros_like(use_m)
        for _ in range(4 * nblocks + 8):  # LFP reached long before this
            if budget is not None:
                budget.charge(nblocks, "liveness")
            new_out = _np.zeros_like(live_out)
            if len(src):
                _np.bitwise_or.at(new_out, src, live_in[dst])
            new_in = use_m | (new_out & not_def)
            if _np.array_equal(new_out, live_out) and _np.array_equal(
                new_in, live_in
            ):
                break
            live_out = new_out
            live_in = new_in

        self.live_in = _unpack_rows(live_in)
        self.live_out = _unpack_rows(live_out)

    # ------------------------------------------------------------------
    # per-instruction liveness (one backward scan per block)
    # ------------------------------------------------------------------
    def scan_block(self, bid: int) -> Tuple[List[int], List[int]]:
        """(live-out, live-in) bitsets per instruction of block *bid*."""
        start = self.block_start[bid]
        end = self.block_start[bid + 1]
        live = self.live_out[bid]
        n = end - start
        outs = [0] * n
        ins = [0] * n
        i_defs = self.i_defs
        i_uses = self.i_uses
        for k in range(n - 1, -1, -1):
            i = start + k
            outs[k] = live
            live = (live & ~i_defs[i]) | i_uses[i]
            ins[k] = live
        return outs, ins

    # ------------------------------------------------------------------
    # per-block content digests (tile fingerprint ingredient)
    # ------------------------------------------------------------------
    def block_digest(self, bid: int) -> str:
        """Canonical sha256 of block *bid*'s identity and content.

        Covers the label, the ordered successor list, and -- per
        instruction, over the arena's flat index range -- the uid, the
        canonical text, and the clobber set (clobbers matter for
        interference but are absent from the printed form).  Two blocks
        with equal digests are interchangeable as phase-1 inputs; the
        per-tile memoization layer folds these into tile fingerprints.

        Raises ``RuntimeError`` on a retired arena: after the spill
        rewrite has mutated the function, the flat ranges describe dead
        instructions and a digest computed from them could address a
        stale cache entry.
        """
        if self.retired:
            raise RuntimeError(
                "block_digest on a retired arena: the function was "
                "mutated after this snapshot was taken"
            )
        digests = self._block_digests
        if digests is None:
            digests = self._block_digests = [None] * len(self.labels)
        cached = digests[bid]
        if cached is not None:
            return cached
        from hashlib import sha256

        from repro.ir.printer import format_instr

        block = self.fn.blocks[self.labels[bid]]
        h = sha256()
        h.update(block.label.encode())
        h.update(("->" + ",".join(block.succ_labels)).encode())
        for i in range(self.block_start[bid], self.block_start[bid + 1]):
            instr = self.instrs[i]
            h.update(f"\n{instr.uid}|{format_instr(instr)}".encode())
            if instr.clobbers:
                h.update(("!" + ",".join(instr.clobbers)).encode())
        digest = h.hexdigest()
        digests[bid] = digest
        return digest

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FunctionArena {self.fn.name}: {len(self.labels)} blocks, "
            f"{len(self.instrs)} instrs, {len(self.index)} vars>"
        )


def _mask_of_ids(ids) -> int:
    out = 0
    for i in ids:
        out |= 1 << i
    return out


def _pack_rows(masks: List[int], nrows: int, nwords: int):
    """Pack Python-int bitsets into a [nrows, nwords] uint64 matrix."""
    out = _np.zeros((nrows, nwords), dtype=_np.uint64)
    nbytes = nwords * 8
    frombuffer = _np.frombuffer
    for r, mask in enumerate(masks):
        if mask:
            out[r] = frombuffer(
                mask.to_bytes(nbytes, "little"), dtype="<u8"
            )
    return out


def _unpack_rows(matrix) -> List[int]:
    """Inverse of :func:`_pack_rows` (rows back to Python ints)."""
    data = _np.ascontiguousarray(matrix).tobytes()
    nbytes = matrix.shape[1] * 8
    return [
        int.from_bytes(data[r * nbytes:(r + 1) * nbytes], "little")
        for r in range(matrix.shape[0])
    ]


def build_arena(
    fn: Function, index: Optional[VarIndex] = None, budget=None
) -> FunctionArena:
    """Lower *fn* into a fresh arena (interning into *index* if given).

    *budget*, when given, is charged for every instruction lowered and
    every liveness worklist/sweep step (see :mod:`repro.core.budget`).
    """
    return FunctionArena(
        fn, index if index is not None else VarIndex(), budget=budget
    )
