"""E2 -- the two-phase algorithm of Figure 2.

Traces the bottom-up and top-down passes over nested-loop workloads and
checks the structural invariants of the phase protocol: every tile is
colored exactly once per phase, children strictly before parents in phase
1 and after them in phase 2, and the summary a child hands up is bounded by
``|R|`` summary variables.  Also times each phase separately.
"""

import pytest

from conftest import fmt_row, report

from repro.core import HierarchicalConfig
from repro.core.info import build_context
from repro.core.phase1 import allocate_tile
from repro.core.phase2 import bind_tile
from repro.machine.target import Machine
from repro.pipeline import prepare
from repro.tiles.construction import build_tile_tree_detailed
from repro.workloads.kernels import matmul

MACHINE = Machine.simple(4)


def _context():
    fn = prepare(matmul())
    build = build_tile_tree_detailed(fn)
    return build_context(build.tree.fn, MACHINE, build.tree, build.fixup, None)


def _run_phase1(ctx, config):
    order = []
    allocations = {}
    for tile in ctx.tree.postorder():
        allocations[tile.tid] = allocate_tile(ctx, config, tile, allocations)
        order.append(tile.tid)
    return allocations, order


def test_phase_protocol(benchmark):
    ctx = _context()
    config = HierarchicalConfig()
    allocations, up_order = _run_phase1(ctx, config)

    # Children before parents on the way up.
    position = {tid: i for i, tid in enumerate(up_order)}
    for tile in ctx.tree.preorder():
        for child in tile.children:
            assert position[child.tid] < position[tile.tid]

    down_order = []
    for tile in ctx.tree.preorder():
        bind_tile(ctx, config, tile, allocations)
        down_order.append(tile.tid)
    position = {tid: i for i, tid in enumerate(down_order)}
    for tile in ctx.tree.preorder():
        for child in tile.children:
            assert position[child.tid] > position[tile.tid]

    widths = [6, 8, 10, 10, 10, 10]
    rows = [fmt_row(
        ["tile", "kind", "graph |V|", "graph |E|", "summaries", "spilled"],
        widths,
    )]
    for tile in ctx.tree.preorder():
        alloc = allocations[tile.tid]
        rows.append(fmt_row(
            [tile.tid, tile.kind, len(alloc.graph),
             alloc.graph.edge_count(), len(alloc.summary_vars),
             len(alloc.spilled)],
            widths,
        ))
    report("E2_phase_trace", rows)

    for alloc in allocations.values():
        assert len(alloc.summary_vars) <= MACHINE.num_registers

    benchmark(lambda: _run_phase1(_context(), config))


def test_phase2_timing(benchmark):
    ctx = _context()
    config = HierarchicalConfig()
    allocations, _ = _run_phase1(ctx, config)

    def run_down():
        import copy

        local = {tid: a for tid, a in allocations.items()}
        for tile in ctx.tree.preorder():
            bind_tile(ctx, config, tile, local)

    benchmark(run_down)
