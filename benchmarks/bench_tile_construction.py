"""E3 -- tile-tree construction and the Figure 3 fix-up.

Counts edge violations before fix-up and blocks inserted by each of the
three fix-up passes across random structured programs, and validates every
resulting tree against the section-2 legality conditions.  Also times
construction itself (the paper bounds it by O(|E| * h(T))).
"""

import pytest

from conftest import fmt_row, report

from repro.tiles.construction import TileTreeOptions, build_tile_tree_detailed
from repro.tiles.validate import validate_tile_tree
from repro.workloads.generators import random_program
from repro.workloads.kernels import all_kernel_workloads

SEEDS = range(20)


def test_fixup_statistics(benchmark):
    widths = [8, 8, 8, 8, 8, 8, 8]
    rows = [fmt_row(
        ["seed", "blocks", "tiles", "height", "sibling", "exit", "entry"],
        widths,
    )]
    totals = [0, 0, 0]
    for seed in SEEDS:
        fn = random_program(seed, max_blocks=40, max_depth=4, break_prob=0.35)
        before = len(fn.blocks)
        build = build_tile_tree_detailed(fn)
        validate_tile_tree(build.tree)
        stats = build.fixup
        totals[0] += stats.sibling_blocks
        totals[1] += stats.exit_blocks
        totals[2] += stats.entry_blocks
        rows.append(fmt_row(
            [seed, before, len(build.tree), build.tree.height(),
             stats.sibling_blocks, stats.exit_blocks, stats.entry_blocks],
            widths,
        ))
    rows.append("")
    rows.append(
        f"total inserted: sibling={totals[0]} exit={totals[1]} "
        f"entry={totals[2]}"
    )
    report("E3_fixup", rows)

    # Break-ful programs must need fix-up somewhere in this sample.
    assert sum(totals) > 0

    benchmark(lambda: build_tile_tree_detailed(
        random_program(3, max_blocks=40, max_depth=4, break_prob=0.35)
    ))


def test_kernel_tree_shapes(benchmark):
    widths = [14, 7, 7, 8, 8]
    rows = [fmt_row(
        ["workload", "tiles", "height", "loops", "conds"], widths
    )]
    for workload in all_kernel_workloads(6):
        build = build_tile_tree_detailed(workload.fn.clone())
        validate_tile_tree(build.tree)
        kinds = [t.kind for t in build.tree.preorder()]
        rows.append(fmt_row(
            [workload.label(), len(build.tree), build.tree.height(),
             kinds.count("loop"), kinds.count("cond")],
            widths,
        ))
    report("E3_kernel_trees", rows)

    benchmark(lambda: build_tile_tree_detailed(
        all_kernel_workloads(6)[2].fn.clone()
    ))


def test_loops_only_vs_full_hierarchy(benchmark):
    """Including conditionals increases tile count (finer structure) --
    the prerequisite for the paper's section-2 argument."""
    full = cond = 0
    for workload in all_kernel_workloads(6):
        full += len(build_tile_tree_detailed(workload.fn.clone()).tree)
        cond += len(
            build_tile_tree_detailed(
                workload.fn.clone(), TileTreeOptions(conditional_tiles=False)
            ).tree
        )
    report("E3_hierarchy_depth", [
        f"tiles with conditionals: {full}",
        f"tiles loops-only:        {cond}",
    ])
    assert full >= cond

    benchmark(lambda: None)
