"""E6 -- per-tile interference graphs are smaller than the whole-program
graph.

"With this technique it is not necessary to construct the full conflict
graph at any one time."  We compare the largest single graph the
hierarchical allocator ever builds against the whole-program graph Chaitin
builds, on progressively larger random structured programs.
"""

import pytest

from conftest import fmt_row, report

from repro.allocators import ChaitinAllocator
from repro.core import HierarchicalAllocator
from repro.machine.target import Machine
from repro.pipeline import compile_function
from repro.workloads.generators import random_workload
from repro.workloads.kernels import all_kernel_workloads

MACHINE = Machine.simple(4)


def _sizes(workload):
    hier = HierarchicalAllocator()
    h = compile_function(workload, hier, MACHINE)
    c = compile_function(workload, ChaitinAllocator(), MACHINE)
    return h.stats, c.stats


def test_graph_sizes_kernels(benchmark):
    widths = [14, 12, 12, 12, 12]
    rows = [fmt_row(
        ["workload", "hier max |V|", "hier max |E|", "flat |V|", "flat |E|"],
        widths,
    )]
    ratios = []
    for workload in all_kernel_workloads(8):
        hs, cs = _sizes(workload)
        rows.append(fmt_row(
            [workload.label(), hs.max_graph_nodes, hs.max_graph_edges,
             cs.max_graph_nodes, cs.max_graph_edges],
            widths,
        ))
        if cs.max_graph_edges:
            ratios.append(hs.max_graph_edges / cs.max_graph_edges)
    report("E6_graph_size_kernels", rows)
    # Edge counts are the expensive part of a conflict graph; tiles should
    # usually shrink them.
    assert sum(ratios) / len(ratios) < 1.2

    benchmark(lambda: _sizes(all_kernel_workloads(8)[2]))


def test_graph_footprint_bounded(benchmark):
    """The paper's actual claim is about footprint: "it is not necessary to
    construct the full conflict graph at any one time."  On a program of k
    sequential loops, the whole-program graph grows linearly with k while
    the largest tile graph stays constant."""
    from repro.core import HierarchicalConfig
    from repro.pipeline import Workload, compile_function as compile_fn
    from repro.workloads.kernels import sequential_loops

    config = HierarchicalConfig(max_tile_width=4)
    widths = [8, 8, 14, 14, 10]
    rows = [fmt_row(
        ["loops", "blocks", "hier max |V|", "flat |V|", "ratio"], widths
    )]
    measured = {}
    for count in (2, 4, 8, 16, 32):
        fn = sequential_loops(count)
        workload = Workload(
            fn, {"n": 3}, {"A": [1, 2, 3, 4]}, name=f"seq{count}"
        )
        hs = compile_fn(
            workload, HierarchicalAllocator(config), MACHINE
        ).stats
        cs = compile_fn(workload, ChaitinAllocator(), MACHINE).stats
        measured[count] = (hs.max_graph_nodes, cs.max_graph_nodes)
        rows.append(fmt_row(
            [count, len(fn.blocks), hs.max_graph_nodes, cs.max_graph_nodes,
             hs.max_graph_nodes / cs.max_graph_nodes],
            widths,
        ))
    report("E6_graph_size_scaling", rows)

    # The flat graph grows with the loop count...
    assert measured[32][1] > 4 * measured[2][1]
    # ...while the largest tile graph plateaus (hierarchical chunking).
    assert measured[32][0] <= 2 * measured[2][0]
    # And at scale the footprint gap is wide.
    assert measured[32][0] < measured[32][1] / 4

    workload = random_workload(1, max_blocks=60, max_vars=24, max_depth=4)
    benchmark(lambda: compile_function(
        workload, HierarchicalAllocator(), MACHINE
    ))
