"""E18 -- batch allocation engine throughput (functions/sec).

The paper allocates one procedure at a time; real compilers allocate
modules.  The batch engine (``repro.batch``) fingerprints every function,
serves repeats from a content-addressed allocation cache, and fans cache
misses over a persistent process pool -- processes-per-function being the
parallel axis that actually scales (intra-function thread parallelism
loses under the GIL; see ``repro.core.schedule.should_parallelize``).

This bench measures module throughput on a >= 50-function synthetic
module at several worker counts, cold (empty cache) and warm (second pass
over the same module), and records the numbers under ``current.batch`` in
``BENCH_analysis_speed.json``.  Gates:

* warm-cache throughput must be >= 5x the cold single-process throughput
  (the cache must actually pay for its bookkeeping);
* cold throughput at 4 workers must be >= 2x cold at 1 worker -- checked
  only when the machine has >= 4 CPUs (process parallelism cannot beat
  the core count);
* cold, warm and pooled results must be bit-identical records.

``pytest benchmarks/bench_batch.py -k quick`` (or ``python
benchmarks/bench_batch.py --quick``) runs the reduced CI gate.
"""

import argparse
import json
import os
import sys
import time

from conftest import fmt_row, report

from repro.batch import BatchConfig, BatchEngine, synthetic_module

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_analysis_speed.json"
)

#: Acceptance floor is a >= 50-function module; 120 keeps the cold pass
#: well clear of pool-startup time (spawning a worker pool costs a few
#: hundred ms -- against a ~0.5s 50-function cold pass that skews the
#: multi-worker columns toward "parallelism doesn't pay").
MODULE_SIZE = 120
QUICK_SIZE = 12
WORKER_COUNTS = (1, 2, 4, 8)
WARM_SPEEDUP_FLOOR = 5.0
SCALING_FLOOR = 2.0


def _honest_worker_counts(counts=WORKER_COUNTS):
    """Worker counts this runner can honestly measure *scaling* on.

    A pool of N processes on a machine with fewer than N cores measures
    oversubscription, not scaling; recording those numbers as
    ``current.batch`` cold-scaling data poisons the baseline for every
    future comparison (an earlier session recorded a full 1/2/4/8-worker
    matrix from a ``cpu_count: 1`` runner).  Multi-worker columns are
    measured only up to the core count; the single-worker column always
    runs (it claims nothing about scaling)."""
    cpus = os.cpu_count() or 1
    kept = tuple(w for w in counts if w == 1 or w <= cpus)
    return kept, tuple(w for w in counts if w not in kept)


def _measure(workloads, workers):
    """Cold + warm pass through one engine; returns times and records."""
    batch = BatchConfig(batch_workers=workers)
    with BatchEngine(batch=batch) as engine:
        start = time.perf_counter()
        cold = engine.allocate_module(workloads)
        cold_s = time.perf_counter() - start
        assert not any(r.cached for r in cold), "cold pass hit the cache"

        start = time.perf_counter()
        warm = engine.allocate_module(workloads)
        warm_s = time.perf_counter() - start
        assert all(r.cached for r in warm), "warm pass missed the cache"

    cold_records = [r.record for r in cold]
    assert cold_records == [r.record for r in warm], (
        "warm-cache records diverge from cold records"
    )
    return cold_s, warm_s, cold_records


def _throughput_matrix(size, worker_counts):
    workloads = synthetic_module(size)
    n = len(workloads)
    rows_data = {}
    baseline_records = None
    for workers in worker_counts:
        cold_s, warm_s, records = _measure(workloads, workers)
        if baseline_records is None:
            baseline_records = records
        else:
            assert records == baseline_records, (
                f"workers={workers}: records diverge from workers="
                f"{worker_counts[0]}"
            )
        rows_data[workers] = {
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "cold_fps": round(n / max(cold_s, 1e-9), 2),
            "warm_fps": round(n / max(warm_s, 1e-9), 2),
        }
    return n, rows_data


def _print_matrix(name, n, rows_data, skipped=()):
    widths = [8, 10, 10, 12, 12]
    rows = [fmt_row(
        ["workers", "cold (s)", "warm (s)", "cold (f/s)", "warm (f/s)"],
        widths,
    )]
    for workers in sorted(rows_data):
        d = rows_data[workers]
        rows.append(fmt_row(
            [workers, d["cold_s"], d["warm_s"], d["cold_fps"],
             d["warm_fps"]],
            widths,
        ))
    rows.append(f"module: {n} functions, cpu_count={os.cpu_count()}")
    if skipped:
        rows.append(
            f"skipped workers {list(skipped)}: more processes than cores "
            "measures oversubscription, not scaling"
        )
    report(name, rows)


def _assert_gates(rows_data, single=1):
    base = rows_data[single]
    warm_speedup = base["warm_fps"] / max(base["cold_fps"], 1e-9)
    assert warm_speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm-cache throughput only {warm_speedup:.1f}x cold "
        f"single-process (need >= {WARM_SPEEDUP_FLOOR}x)"
    )
    # Process scaling can't beat the core count: only gate the 4-worker
    # speedup on machines that have 4 cores to give.
    if 4 in rows_data and (os.cpu_count() or 1) >= 4:
        scaling = rows_data[4]["cold_fps"] / max(base["cold_fps"], 1e-9)
        assert scaling >= SCALING_FLOOR, (
            f"cold throughput at 4 workers only {scaling:.2f}x cold at "
            f"{single} (need >= {SCALING_FLOOR}x)"
        )


def _save(n, rows_data, skipped=()):
    with open(BASELINE_PATH) as fh:
        data = json.load(fh)
    entry = {
        "module_functions": n,
        "cpu_count": os.cpu_count(),
        "workers": {str(w): d for w, d in rows_data.items()},
    }
    if skipped:
        entry["workers_skipped"] = {
            "counts": list(skipped),
            "reason": "cpu_count cannot support a scaling claim at these "
                      "worker counts",
        }
    data.setdefault("current", {})["batch"] = entry
    with open(BASELINE_PATH, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def test_batch_throughput(benchmark):
    """Full matrix: workers x {cold, warm} on the synthetic module."""
    counts, skipped = _honest_worker_counts()
    n, rows_data = _throughput_matrix(MODULE_SIZE, counts)
    _print_matrix("E18_batch_throughput", n, rows_data, skipped)
    _save(n, rows_data, skipped)
    _assert_gates(rows_data)

    workloads = synthetic_module(QUICK_SIZE)
    batch = BatchConfig(batch_workers=0)
    with BatchEngine(batch=batch) as engine:
        engine.allocate_module(workloads)
        benchmark(lambda: engine.allocate_module(workloads))


def test_quick_batch_gate():
    """Reduced CI gate: warm-cache speedup + pooled/inline bit-identity
    on a small module (runs via ``-k quick`` in the batch-gate CI step)."""
    workloads = synthetic_module(QUICK_SIZE)
    n = len(workloads)
    cold_s, warm_s, inline_records = _measure(workloads, workers=0)
    _, _, pooled_records = _measure(workloads, workers=2)
    assert pooled_records == inline_records, (
        "pooled records diverge from inline records"
    )
    fps = {
        0: {
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "cold_fps": round(n / max(cold_s, 1e-9), 2),
            "warm_fps": round(n / max(warm_s, 1e-9), 2),
        }
    }
    _print_matrix("E18_quick_batch_gate", n, fps)
    _assert_gates(fps, single=0)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="run the reduced CI gate instead of the full matrix",
    )
    args = parser.parse_args(argv)
    if args.quick:
        test_quick_batch_gate()
        print("OK: quick batch gate passed")
        return 0
    counts, skipped = _honest_worker_counts()
    n, rows_data = _throughput_matrix(MODULE_SIZE, counts)
    _print_matrix("E18_batch_throughput", n, rows_data, skipped)
    _save(n, rows_data, skipped)
    _assert_gates(rows_data)
    print("OK: batch throughput gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
