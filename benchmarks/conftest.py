"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's artifacts (DESIGN.md, section 3
maps experiment ids E1-E12 to benches).  The interesting outputs are
*counts* -- dynamic memory references, graph sizes, spill-block frequencies
-- which each bench prints as a table and also appends to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote them.
pytest-benchmark additionally times the allocator runs themselves.
"""

import os
from typing import Iterable, List

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, lines: Iterable[str]) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    print()
    print(f"=== {name} ===")
    print(text)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


def fmt_row(cells: List[object], widths: List[int]) -> str:
    out = []
    for cell, width in zip(cells, widths):
        text = f"{cell:.2f}" if isinstance(cell, float) else str(cell)
        out.append(text.rjust(width))
    return "  ".join(out)


@pytest.fixture(scope="session")
def allocator_suite():
    """The comparison set used across benches."""
    from repro.allocators import (
        BriggsAllocator,
        ChaitinAllocator,
        LocalAllocator,
        NaiveMemoryAllocator,
    )
    from repro.core import HierarchicalAllocator

    return {
        "hierarchical": HierarchicalAllocator,
        "chaitin": ChaitinAllocator,
        "briggs": BriggsAllocator,
        "local": LocalAllocator,
        "naive": NaiveMemoryAllocator,
    }
