"""E11 -- callee-save registers and shrink wrapping (section 6).

"Consider a case where a routine first has a quick return check and then
does lots of computation ... a callee-save register is not saved until an
execution path which actually requires the register is selected."

The quick-return workload runs under a linkage machine with two callee-save
registers.  We count the dynamic spill traffic attributable to callee-save
handling on the *fast* path (n <= 0) and the *slow* path, comparing the
hierarchical allocator (profile-guided, as the paper's Tera compiler would
be) against Chaitin, whose spill-everywhere handling is exactly the
"always save in the prologue" convention.
"""

import pytest

from conftest import fmt_row, report

from repro.allocators import ChaitinAllocator
from repro.analysis.frequency import frequencies_from_profile
from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.machine.calls import with_callee_save
from repro.machine.simulator import simulate
from repro.machine.target import Machine
from repro.pipeline import Workload, compile_function
from repro.workloads.kernels import quick_return

MACHINE = Machine.with_linkage(6, num_callee_save=2, num_args=2)


def _prepared():
    fn = with_callee_save(quick_return(), MACHINE)
    profile = None
    for n in [0] * 9 + [5]:
        run = simulate(
            fn, args={"n": n, "R4": 1, "R5": 2}, arrays={"A": [1, 2, 3, 4, 5]}
        )
        profile = run.profile if profile is None else profile.merge(run.profile)
    freq = frequencies_from_profile(fn, profile)
    return fn, freq


def test_shrink_wrapping(benchmark):
    fn, freq = _prepared()
    fast = Workload(fn, {"n": 0, "R4": 1, "R5": 2}, {"A": []}, name="fast")
    slow = Workload(
        fn, {"n": 5, "R4": 1, "R5": 2}, {"A": [1, 2, 3, 4, 5]}, name="slow"
    )

    hier = HierarchicalAllocator(HierarchicalConfig(frequencies=freq))
    chaitin = ChaitinAllocator()

    widths = [14, 12, 12]
    rows = [fmt_row(["path", "hierarchical", "chaitin"], widths)]
    measured = {}
    for workload in (fast, slow):
        h = compile_function(workload, hier, MACHINE)
        c = compile_function(workload, chaitin, MACHINE)
        measured[workload.label()] = (h.spill_refs, c.spill_refs)
        rows.append(fmt_row(
            [workload.label(), h.spill_refs, c.spill_refs], widths
        ))
    report("E11_shrink_wrapping", rows)

    # The fast path executes no callee-save traffic under the hierarchical
    # allocator; Chaitin always saves.
    assert measured["fast"][0] == 0
    assert measured["fast"][1] > 0

    benchmark(lambda: compile_function(fast, hier, MACHINE))


def test_callee_save_contract(benchmark):
    """Callee-save registers come back intact on every path."""
    fn, freq = _prepared()
    hier = HierarchicalAllocator(HierarchicalConfig(frequencies=freq))
    for n in (0, 3):
        w = Workload(
            fn, {"n": n, "R4": 31, "R5": 41}, {"A": [9, 9, 9]}, name=f"n{n}"
        )
        result = compile_function(w, hier, MACHINE)
        assert result.allocated_run.returned[-2:] == (31, 41)
    report("E11_contract", ["callee-save registers restored on all paths"])

    w = Workload(fn, {"n": 3, "R4": 31, "R5": 41}, {"A": [9, 9, 9]}, name="n3")
    benchmark(lambda: compile_function(w, hier, MACHINE))
