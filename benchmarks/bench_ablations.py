"""E12 -- design-choice ablations.

Each switch in :class:`~repro.core.config.HierarchicalConfig` corresponds
to a decision the paper argues for; turning one off quantifies it:

* ``conditional_tiles``: section 2 -- including conditionals improves spill
  placement and shrinks graphs (vs loops-only tiling).
* ``preferencing``: section 3 -- explicit preferencing instead of
  coalescing (off: more transfer moves).
* ``store_avoidance``: section 3 -- skip the store half of a Reload pair
  for unmodified variables.
* ``demotion``: section 4 -- flip a child's register allocation to memory
  when the parent keeps the variable in memory and the transfer costs
  outweigh local benefit.
"""

import pytest

from conftest import fmt_row, report

from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.ir.instructions import Opcode
from repro.machine.target import Machine
from repro.pipeline import compile_function
from repro.workloads.figure1 import figure1_workload
from repro.workloads.kernels import all_kernel_workloads

MACHINE = Machine.simple(4)

CONFIGS = {
    "default": HierarchicalConfig(),
    "no-conditional-tiles": HierarchicalConfig(conditional_tiles=False),
    "no-preferencing": HierarchicalConfig(preferencing=False),
    "no-store-avoidance": HierarchicalConfig(store_avoidance=False),
    "no-demotion": HierarchicalConfig(demotion=False),
}


def _workloads():
    return all_kernel_workloads(8) + [figure1_workload(10)]


def test_ablation_matrix(benchmark):
    names = list(CONFIGS)
    widths = [16] + [20] * len(names)
    rows = [fmt_row(["workload"] + names, widths)]
    # [spill refs, moves, surviving dynamic copies]
    totals = {name: [0, 0, 0] for name in names}
    for workload in _workloads():
        cells = [workload.label()]
        for name, config in CONFIGS.items():
            result = compile_function(
                workload, HierarchicalAllocator(config), MACHINE
            )
            copies = result.allocated_run.opcode_counts[Opcode.COPY]
            totals[name][0] += result.spill_refs
            totals[name][1] += result.moves
            totals[name][2] += copies
            cells.append(f"{result.spill_refs}+{result.moves}m+{copies}c")
        rows.append(fmt_row(cells, widths))
    rows.append("")
    rows.append(fmt_row(
        ["TOTAL"]
        + [f"{totals[n][0]}+{totals[n][1]}m+{totals[n][2]}c" for n in names],
        widths,
    ))
    report("E12_ablations", rows)

    # Store avoidance strictly saves stores.
    assert totals["default"][0] <= totals["no-store-avoidance"][0]
    # Preferencing collapses copy chains onto one register: without it,
    # more dynamic copies/moves survive.
    default_copyish = totals["default"][1] + totals["default"][2]
    nopref_copyish = (
        totals["no-preferencing"][1] + totals["no-preferencing"][2]
    )
    assert default_copyish < nopref_copyish

    benchmark(lambda: compile_function(
        figure1_workload(10),
        HierarchicalAllocator(CONFIGS["no-preferencing"]),
        MACHINE,
    ))


def test_conditional_tiles_value(benchmark):
    """Loops-only tiling loses the cold-conditional placements of
    section 2 on conditional-heavy workloads."""
    widths = [16, 14, 14]
    rows = [fmt_row(["workload", "full hierarchy", "loops only"], widths)]
    full_total = loops_total = 0
    for workload in _workloads():
        full = compile_function(workload, HierarchicalAllocator(), MACHINE)
        loops = compile_function(
            workload,
            HierarchicalAllocator(HierarchicalConfig(conditional_tiles=False)),
            MACHINE,
        )
        full_total += full.spill_refs + full.moves
        loops_total += loops.spill_refs + loops.moves
        rows.append(fmt_row(
            [workload.label(), full.spill_refs + full.moves,
             loops.spill_refs + loops.moves],
            widths,
        ))
    rows.append("")
    rows.append(fmt_row(["TOTAL", full_total, loops_total], widths))
    report("E12_conditional_tiles", rows)

    benchmark(lambda: None)


def test_spill_heuristics(benchmark):
    """Section 4: 'Chaitin spills the variable with the lowest spill cost
    to conflict count ratio ... Our algorithm could easily use either
    method but is implemented using Chaitin's heuristic with our cost
    metric.'  Comparing the ratio against pure-cost and pure-degree
    rankings confirms the choice."""
    heuristics = ("cost_over_degree", "cost", "degree")
    widths = [18, 14]
    rows = [fmt_row(["heuristic", "dyn spill refs"], widths)]
    totals = {}
    for heuristic in heuristics:
        config = HierarchicalConfig(spill_heuristic=heuristic)
        total = 0
        for workload in _workloads():
            result = compile_function(
                workload, HierarchicalAllocator(config), MACHINE
            )
            total += result.spill_refs
        totals[heuristic] = total
        rows.append(fmt_row([heuristic, total], widths))
    report("E12_spill_heuristics", rows)

    # The paper's choice should be the best (or tied).
    assert totals["cost_over_degree"] <= min(totals.values()) + 1e-9

    benchmark(lambda: compile_function(
        figure1_workload(10),
        HierarchicalAllocator(HierarchicalConfig(spill_heuristic="degree")),
        MACHINE,
    ))
