"""E20 -- incremental re-allocation via the per-tile memoization store.

An edit session recompiles the same module over and over with tiny
diffs.  The tile cache (``repro.core.incremental``) memoizes phase-1
summaries and phase-2 bindings per tile, content-addressed by a
fingerprint of everything a tile's coloring can observe, so
re-allocating an edited function recomputes only the dirty tile and its
ancestor chain and replays every clean subtree from the store --
bit-identical to a cold allocation (``repro.determinism check
--incremental`` is the proof; this bench measures what the identity
buys).

Two scenarios, recorded in ``BENCH_incremental.json``:

* **module edit** -- a >= 100-function synthetic module through the
  batch engine with ``tile_cache=True``: cold pass, then one
  single-block edit and a warm pass.  The unchanged functions hit the
  function-level result cache; the *edited* function recomputes with the
  tile store and must reuse its clean subtrees (counter-verified).
  Gate: warm module pass >= 5x faster than the cold pass, and the
  edited function's recompute ratio (dirty tiles / total tiles) <= 0.5.
* **function edit** -- the tile cache in isolation, no function-level
  cache to hide behind: allocate ``seq_loops_200`` with a store, edit
  one block, re-allocate warm vs. a fresh cold allocation of the same
  edited text.  Gate: only the dirty chain recomputes (``tile_misses <=
  tree height + 1``) and the warm run is not slower than cold.

``python benchmarks/bench_incremental.py --quick`` runs the reduced CI
gate (smaller module, same assertions).
"""

import argparse
import json
import os
import subprocess
import sys
import time

from conftest import fmt_row, report

from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.core.incremental import TileCacheStore
from repro.determinism import build_workload, edit_one_block
from repro.ir.printer import format_function
from repro.machine.target import Machine
from repro.pipeline import Workload, prepare

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_incremental.json"
)

MACHINE = Machine.simple(8)
MODULE_SIZE = 120
QUICK_SIZE = 40
MODULE_SPEEDUP_FLOOR = 5.0
RECOMPUTE_RATIO_CEILING = 0.5
FUNCTION_WORKLOAD = "seq_loops_200"


def _git_sha():
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if proc.returncode == 0:
            return proc.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _load_baseline():
    if not os.path.exists(BASELINE_PATH):
        return {}
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


def _save_baseline(section, payload):
    data = _load_baseline()
    current = data.setdefault("current", {})
    current[section] = payload
    current["environment"] = {
        "python_hashseed": os.environ.get("PYTHONHASHSEED", "random"),
        "python_version": ".".join(str(v) for v in sys.version_info[:3]),
    }
    history = data.setdefault("history", [])
    sha = _git_sha()
    if not history or history[-1].get("git_sha") != sha:
        history.append({
            "git_sha": sha,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        })
        del history[:-50]
    with open(BASELINE_PATH, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _edited_module(workloads, index):
    """The same module with one deterministic single-block edit at
    *index* (clone-and-edit; the input list is untouched)."""
    edited = list(workloads)
    victim = workloads[index]
    fn = victim.fn.clone()
    edit_one_block(fn)
    edited[index] = Workload(
        fn, dict(victim.args),
        {k: list(v) for k, v in victim.arrays.items()},
        name=victim.label(),
    )
    return edited


def _pick_editable(workloads):
    """Index of the largest function the deterministic edit applies to.

    Larger functions have more tiles, so the dirty chain (edited tile +
    ancestors) is a small fraction of the tree and the recompute-ratio
    gate measures subtree reuse rather than rounding noise."""
    from repro.ir.instructions import Opcode

    best = None
    for index, workload in enumerate(workloads):
        if any(
            instr.op is Opcode.CONST and isinstance(instr.imm, int)
            for block in workload.fn
            for instr in block.instrs
        ):
            key = (len(workload.fn.blocks), -index)
            if best is None or key > best[0]:
                best = (key, index)
    if best is None:
        raise RuntimeError("no editable function in the module")
    return best[1]


def run_module_edit(size):
    """Cold module pass, one edit, warm pass; returns the recorded dict."""
    from repro.batch import BatchConfig, BatchEngine, synthetic_module

    workloads = synthetic_module(size)
    index = _pick_editable(workloads)
    edited = _edited_module(workloads, index)

    batch = BatchConfig(
        batch_workers=0, tile_cache=True, tile_cache_entries=65536
    )
    with BatchEngine(batch=batch) as engine:
        start = time.perf_counter()
        cold = engine.allocate_module(workloads)
        cold_s = time.perf_counter() - start
        assert not cold.failures, "cold pass had failures"
        assert not any(r.cached for r in cold), "cold pass hit the cache"

        before = (
            engine.stats.tile_hits,
            engine.stats.tile_misses,
            engine.stats.subtrees_reused,
        )
        start = time.perf_counter()
        warm = engine.allocate_module(edited)
        warm_s = time.perf_counter() - start
        assert not warm.failures, "warm pass had failures"
        counters = {
            "tile_hits": engine.stats.tile_hits - before[0],
            "tile_misses": engine.stats.tile_misses - before[1],
            "subtrees_reused": engine.stats.subtrees_reused - before[2],
        }

    recomputed = [r for r in warm if not r.cached]
    assert len(recomputed) == 1, (
        f"warm pass recomputed {len(recomputed)} functions, expected only "
        f"the edited one"
    )
    assert recomputed[0].name == workloads[index].label()
    # The edited function's clean subtrees must come from the tile store,
    # not be recomputed: the single dirty tile plus its ancestors miss,
    # everything else hits.
    total = counters["tile_hits"] + counters["tile_misses"]
    ratio = counters["tile_misses"] / max(total, 1)
    assert counters["subtrees_reused"] >= 1, counters
    assert ratio <= RECOMPUTE_RATIO_CEILING, (
        f"edited function recomputed {ratio:.0%} of its tiles {counters}"
    )
    speedup = cold_s / max(warm_s, 1e-9)
    assert speedup >= MODULE_SPEEDUP_FLOOR, (
        f"warm edited-module pass only {speedup:.2f}x faster than cold "
        f"(need >= {MODULE_SPEEDUP_FLOOR}x)"
    )
    return {
        "module_functions": len(workloads),
        "edited_function": workloads[index].label(),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 2),
        "recompute_ratio": round(ratio, 4),
        "tile_counters_warm": counters,
    }


def run_function_edit(name=FUNCTION_WORKLOAD, repeats=3):
    """The tile cache alone: warm incremental re-allocation of an edited
    function vs. a fresh cold allocation of the same edited text."""
    base = prepare(build_workload(name).fn)
    edited_fn = build_workload(name).fn
    edit_one_block(edited_fn)
    edited = prepare(edited_fn)

    best_warm = float("inf")
    best_cold = float("inf")
    counters = None
    warm_out = cold_out = None
    for _ in range(repeats):
        store = TileCacheStore(capacity=65536)
        allocator = HierarchicalAllocator(
            HierarchicalConfig(), tile_store=store
        )
        allocator.allocate(base.clone(), MACHINE)
        start = time.perf_counter()
        warm_out = allocator.allocate(edited.clone(), MACHINE)
        best_warm = min(best_warm, time.perf_counter() - start)
        counters = dict(allocator.last_tile_cache)

        cold_alloc = HierarchicalAllocator(HierarchicalConfig())
        start = time.perf_counter()
        cold_out = cold_alloc.allocate(edited.clone(), MACHINE)
        best_cold = min(best_cold, time.perf_counter() - start)

    assert format_function(warm_out.fn) == format_function(cold_out.fn), (
        "warm incremental output diverges from cold full allocation"
    )
    total = counters["tile_hits"] + counters["tile_misses"]
    height = warm_out.stats.extra["tree_height"]
    # Only the dirty chain recomputes: the edited tile plus its ancestors,
    # which is at most one tile per tree level.
    assert counters["tile_misses"] <= height + 1, (
        f"dirty chain {counters['tile_misses']} tiles exceeds tree height "
        f"{height} + 1 -- a clean tile was spuriously invalidated"
    )
    speedup = best_cold / max(best_warm, 1e-9)
    assert speedup >= 1.0, (
        f"warm incremental {best_warm * 1e3:.1f}ms slower than cold "
        f"{best_cold * 1e3:.1f}ms"
    )
    return {
        "workload": name,
        "cold_full_s": round(best_cold, 4),
        "warm_incremental_s": round(best_warm, 4),
        "speedup": round(speedup, 2),
        "dirty_tiles": counters["tile_misses"],
        "total_tiles": total,
        "recompute_ratio": round(counters["tile_misses"] / max(total, 1), 4),
        "counters": counters,
    }


def _report(module_row, function_row):
    widths = [26, 14]
    rows = [fmt_row(["metric", "value"], widths)]
    rows.append("module edit (1 function of N edited):")
    for key in ("module_functions", "cold_s", "warm_s", "speedup",
                "recompute_ratio"):
        rows.append(fmt_row([f"  {key}", module_row[key]], widths))
    rows.append(fmt_row(
        ["  subtrees_reused",
         module_row["tile_counters_warm"]["subtrees_reused"]], widths
    ))
    rows.append("function edit (tile cache only):")
    for key in ("workload", "cold_full_s", "warm_incremental_s", "speedup",
                "dirty_tiles", "total_tiles"):
        rows.append(fmt_row([f"  {key}", function_row[key]], widths))
    report("E20_incremental", rows)


def test_incremental_module_edit(benchmark):
    """Full-size module-edit scenario; refreshes BENCH_incremental.json."""
    module_row = run_module_edit(MODULE_SIZE)
    function_row = run_function_edit()
    _report(module_row, function_row)
    _save_baseline("module_edit", module_row)
    _save_baseline("function_edit", function_row)

    base = prepare(build_workload("seq_loops_100").fn)
    edited_fn = build_workload("seq_loops_100").fn
    edit_one_block(edited_fn)
    edited = prepare(edited_fn)
    store = TileCacheStore()
    allocator = HierarchicalAllocator(HierarchicalConfig(), tile_store=store)
    allocator.allocate(base.clone(), MACHINE)
    benchmark(lambda: allocator.allocate(edited.clone(), MACHINE))


def test_quick_incremental_gate():
    """Reduced CI gate: same assertions on a smaller module (runs via
    ``--quick`` in the batch-gate CI step)."""
    module_row = run_module_edit(QUICK_SIZE)
    function_row = run_function_edit(repeats=2)
    _report(module_row, function_row)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="run the reduced CI gate instead of the full scenario",
    )
    args = parser.parse_args(argv)
    if args.quick:
        test_quick_incremental_gate()
        print("OK: quick incremental gate passed")
        return 0
    module_row = run_module_edit(MODULE_SIZE)
    function_row = run_function_edit()
    _report(module_row, function_row)
    _save_baseline("module_edit", module_row)
    _save_baseline("function_edit", function_row)
    print("OK: incremental re-allocation gates passed "
          f"(results in {os.path.basename(BASELINE_PATH)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
