"""E17 -- cross-process allocation reproducibility.

PR 1 left a caveat: per-process string-hash salting could permute set
iteration order inside seed-inherited tie-breaks, so allocation output
could differ between processes on large random programs.  PR 2 replaced
every order-sensitive choice point with a canonical order; this bench is
the continuous proof.

Every bench workload (including the 428-block random program) is
allocated and simulated in fresh subprocesses under >= 3 distinct
``PYTHONHASHSEED`` values and with ``parallel_workers`` in {1, N} (plus
the sequential driver), and the resulting fingerprints -- allocated
program hash, spill set, dynamic cost counters -- must be bit-identical
across the whole matrix.
"""

from conftest import fmt_row, report

from repro.determinism import (
    DEFAULT_HASH_SEEDS,
    fingerprint_in_subprocess,
    workload_names,
)

WORKLOADS = workload_names()

#: (hash seed, workers): three salts x {1 worker, 4 workers}, plus the
#: sequential driver -- every execution mode in one comparison.
MATRIX = [
    (seed, workers)
    for seed in DEFAULT_HASH_SEEDS
    for workers in (1, 4)
] + [(DEFAULT_HASH_SEEDS[0], 0)]


def test_cross_process_determinism():
    runs = {
        key: fingerprint_in_subprocess(WORKLOADS, key[0], workers=key[1])
        for key in MATRIX
    }
    baseline_key = MATRIX[0]
    baseline = runs[baseline_key]

    widths = [16, 8, 26, 10]
    rows = [fmt_row(
        ["workload", "blocks", "program sha256 (prefix)", "identical"],
        widths,
    )]
    failures = []
    for name in WORKLOADS:
        expected = baseline[name]
        same = all(runs[key][name] == expected for key in MATRIX)
        rows.append(fmt_row(
            [
                name,
                expected["blocks"],
                expected["program_sha256"][:24],
                f"{len(MATRIX)}/{len(MATRIX)}" if same else "DIVERGED",
            ],
            widths,
        ))
        if not same:
            for key in MATRIX:
                if runs[key][name] != expected:
                    failures.append(
                        f"{name}: seed={key[0]} workers={key[1]} "
                        f"diverges from baseline {baseline_key}"
                    )
    rows.append(
        f"matrix: PYTHONHASHSEED in {list(DEFAULT_HASH_SEEDS)}, "
        "workers in [1, 4] + sequential driver"
    )
    report("E17_determinism", rows)
    assert not failures, "\n".join(failures)
