"""E9 -- heterogeneous per-region allocation.

"The method allows a variable to be assigned to one register over a portion
of the program, memory in a second portion, and a different register in yet
a third portion."  We count, per workload, the variables whose location
differs across tiles, split into register/memory splits and register/
register renamings, and exhibit the section-2 motivating scenarios.
"""

import pytest

from conftest import fmt_row, report

from repro.core import MEM, HierarchicalAllocator
from repro.machine.target import Machine
from repro.pipeline import compile_function
from repro.workloads.figure1 import figure1_workload
from repro.workloads.kernels import all_kernel_workloads

MACHINE = Machine.simple(4)


def _location_profile(allocator):
    """var -> set of locations across tiles (registers and/or MEM)."""
    locations = {}
    for alloc in allocator.last_allocations.values():
        for var, loc in alloc.phys.items():
            if var.startswith(("ts:", "tmp:")):
                continue
            locations.setdefault(var, set()).add(loc)
    return locations


def test_split_allocation_census(benchmark):
    widths = [16, 8, 12, 12, 12]
    rows = [fmt_row(
        ["workload", "vars", "reg+mem", "multi-reg", "uniform"], widths
    )]
    total_split = 0
    for workload in all_kernel_workloads(8) + [figure1_workload(10)]:
        allocator = HierarchicalAllocator()
        compile_function(workload, allocator, MACHINE)
        locations = _location_profile(allocator)
        reg_mem = multi_reg = uniform = 0
        for var, locs in locations.items():
            regs = {l for l in locs if l != MEM}
            if MEM in locs and regs:
                reg_mem += 1
            elif len(regs) > 1:
                multi_reg += 1
            else:
                uniform += 1
        total_split += reg_mem + multi_reg
        rows.append(fmt_row(
            [workload.label(), len(locations), reg_mem, multi_reg, uniform],
            widths,
        ))
    report("E9_split_census", rows)

    assert total_split > 0, "expected heterogeneous allocations somewhere"

    benchmark(lambda: compile_function(
        figure1_workload(10), HierarchicalAllocator(), MACHINE
    ))


def test_figure1_variables_split(benchmark):
    """In Figure 1 specifically: g2 must be in memory around the first loop
    but in a register inside the second (and symmetrically for g1)."""
    allocator = HierarchicalAllocator()
    compile_function(figure1_workload(10), allocator, MACHINE)
    ctx = allocator.last_context
    allocations = allocator.last_allocations

    loop1 = next(
        t for t in ctx.tree.preorder()
        if t.kind == "loop" and t.header == "B2"
    )
    loop2 = next(
        t for t in ctx.tree.preorder()
        if t.kind == "loop" and t.header == "B3"
    )
    rows = []
    for var in ("g1", "g2"):
        in1 = allocations[loop1.tid].phys.get(var, "(absent)")
        in2 = allocations[loop2.tid].phys.get(var, "(absent)")
        rows.append(f"{var}: loop1={in1}  loop2={in2}")
    report("E9_figure1_locations", rows)

    # g2 holds a register in loop 2 (it is used there).
    g2_loop2 = allocations[loop2.tid].phys.get("g2")
    assert g2_loop2 not in (None, MEM)
    # g1 holds a register in loop 1.
    g1_loop1 = allocations[loop1.tid].phys.get("g1")
    assert g1_loop1 not in (None, MEM)

    benchmark(lambda: None)
