"""E16 -- unrolling stress (introduction's motivation).

"Aggressive loop unrolling and operation scheduling are required, both of
which increase register pressure at various points in the program."  We
unroll the dot kernel's loop by growing factors and watch (a) the loop
tile's interference graph grow with the unrolled body, and (b) the
hierarchical allocator keep its spill code on the (single) loop boundary
while Chaitin's in-loop traffic persists.
"""

import pytest

from conftest import fmt_row, report

from repro.allocators import ChaitinAllocator
from repro.core import HierarchicalAllocator
from repro.ir.unroll import unroll_loop
from repro.machine.target import Machine
from repro.pipeline import Workload, compile_function
from repro.workloads.kernels import dot

MACHINE = Machine.simple(3)


def _workload(factor):
    fn = dot() if factor == 1 else unroll_loop(dot(), factor=factor)
    return Workload(
        fn, {"n": 12},
        {"A": list(range(1, 13)), "B": list(range(2, 14))},
        name=f"dot_x{factor}",
    )


def test_unrolling_stress(benchmark):
    widths = [8, 8, 14, 12, 12]
    rows = [fmt_row(
        ["factor", "blocks", "hier max |V|", "hier refs", "chaitin refs"],
        widths,
    )]
    measured = {}
    for factor in (1, 2, 4, 8):
        workload = _workload(factor)
        hier = compile_function(workload, HierarchicalAllocator(), MACHINE)
        flat = compile_function(workload, ChaitinAllocator(), MACHINE)
        measured[factor] = (
            hier.stats.max_graph_nodes, hier.spill_refs, flat.spill_refs
        )
        rows.append(fmt_row(
            [factor, len(workload.fn.blocks), hier.stats.max_graph_nodes,
             hier.spill_refs, flat.spill_refs],
            widths,
        ))
    report("E16_unrolling", rows)

    # The unrolled body enlarges the loop tile's graph...
    assert measured[8][0] > measured[1][0]
    # ...and allocation stays correct and competitive throughout.
    assert measured[8][1] <= measured[8][2] * 1.5

    benchmark(lambda: compile_function(
        _workload(4), HierarchicalAllocator(), MACHINE
    ))
