"""E19 -- allocation service under concurrent load (latency + coalescing).

The batch engine (E18) measures module throughput for one caller; this
bench measures the *service* front-end (``repro.service``) under many
concurrent callers sharing one engine: 1000 concurrent HTTP requests
over 200 distinct functions, through real loopback sockets and the real
client, against a single inline-engine service.

Three scenarios, each summarized as client-observed p50/p99 latency and
request throughput in ``BENCH_service.json``:

* **cold** -- empty cache, 1000 requests / 200 distinct functions.  Every
  distinct function is computed exactly once no matter how many requests
  race (cross-request coalescing): engine misses == distinct cache keys.
* **warm** -- the same 1000 requests again on the same service: every
  function is a cache hit, nothing new is computed.
* **coalesced** -- a fresh service, 1000 requests / 20 distinct
  functions: a worst-case duplicate storm where ~98% of requests attach
  to an in-flight computation.

Gates (the acceptance criteria of the serving layer):

* zero dropped or failed requests in every scenario -- all 1000 get a
  200 with an ``ok`` result;
* coalescing verified: ``engine.computed == distinct`` after cold and
  after the burst, and unchanged after warm;
* warm throughput must beat cold throughput (the shared cache must pay).

``python bench_service.py --quick`` (or ``pytest bench_service.py -k
quick``) runs a reduced gate for CI; the full run regenerates
``BENCH_service.json``.  Run from the ``benchmarks/`` directory.
"""

import argparse
import asyncio
import json
import os
import sys
import time

from conftest import fmt_row, report

from repro.batch import BatchConfig, synthetic_module
from repro.ir import format_function
from repro.service import AllocationService, ServiceClient, ServiceConfig

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_service.json"
)

FULL_REQUESTS = 1000
FULL_DISTINCT = 200
FULL_BURST_DISTINCT = 20

QUICK_REQUESTS = 60
QUICK_DISTINCT = 12
QUICK_BURST_DISTINCT = 5

#: Client-side socket bound.  Well under the fd ceiling, far above the
#: single engine thread's service rate, so queueing happens server-side
#: (where the bounded queue and coalescer live), not in the client.
CLIENT_CONNECTIONS = 256

WARM_SPEEDUP_FLOOR = 1.5


def _distinct_texts(count):
    """*count* textually-distinct functions from the synthetic module
    generator (the same corpus E18 measures engine throughput on)."""
    texts = [format_function(w.fn) for w in synthetic_module(count)]
    assert len(set(texts)) == count, "synthetic corpus collided"
    return texts


def _percentile_ms(sorted_s, q):
    if not sorted_s:
        return 0.0
    index = min(len(sorted_s) - 1, int(q * len(sorted_s)))
    return round(sorted_s[index] * 1000.0, 2)


async def _fire(client, specs):
    """All requests concurrently; returns per-request latencies (s).

    Asserts the zero-drop contract: every request resolves to a 200
    whose result is ``ok``.
    """
    async def one(spec):
        start = time.perf_counter()
        reply = await client.allocate([spec])
        elapsed = time.perf_counter() - start
        assert reply.status == 200, (
            f"request failed: {reply.status} {reply.data}"
        )
        (result,) = reply.data["results"]
        assert result["ok"], f"allocation failed: {result['error']}"
        return elapsed, result["coalesced"]

    wall_start = time.perf_counter()
    outcomes = await asyncio.gather(*(one(spec) for spec in specs))
    wall_s = time.perf_counter() - wall_start
    latencies = sorted(o[0] for o in outcomes)
    coalesced = sum(1 for o in outcomes if o[1])
    return wall_s, latencies, coalesced


def _summary(name, requests, distinct, wall_s, latencies, coalesced,
             computed):
    return {
        "scenario": name,
        "requests": requests,
        "distinct_functions": distinct,
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(requests / max(wall_s, 1e-9), 1),
        "p50_ms": _percentile_ms(latencies, 0.50),
        "p99_ms": _percentile_ms(latencies, 0.99),
        "max_ms": round(latencies[-1] * 1000.0, 2) if latencies else 0.0,
        "failures": 0,  # _fire asserts every request succeeded
        "coalesced": coalesced,
        "engine_computed": computed,
    }


async def _bench(requests, distinct, burst_distinct):
    results = {}

    def specs_over(texts):
        return [{"text": texts[i % len(texts)]} for i in range(requests)]

    def fresh_config():
        # simulate off: the bench measures serving, not the simulator,
        # and static allocation keys purely on function text.
        return ServiceConfig(
            batch=BatchConfig(batch_workers=0, simulate=False)
        )

    texts = _distinct_texts(distinct)
    async with AllocationService(fresh_config()) as service:
        async with ServiceClient(
            "127.0.0.1", service.port, max_connections=CLIENT_CONNECTIONS
        ) as client:
            wall_s, latencies, coalesced = await _fire(
                client, specs_over(texts)
            )
            computed = service.engine.stats.computed
            assert computed == distinct, (
                f"cold: computed {computed} != distinct {distinct} -- "
                "coalescing failed to collapse concurrent duplicates"
            )
            results["cold"] = _summary(
                "cold", requests, distinct, wall_s, latencies, coalesced,
                computed,
            )

            wall_s, latencies, coalesced = await _fire(
                client, specs_over(texts)
            )
            computed = service.engine.stats.computed
            assert computed == distinct, (
                f"warm: computed grew to {computed} -- cache missed"
            )
            results["warm"] = _summary(
                "warm", requests, distinct, wall_s, latencies, coalesced,
                computed - distinct,
            )

    burst_texts = _distinct_texts(burst_distinct)
    async with AllocationService(fresh_config()) as service:
        async with ServiceClient(
            "127.0.0.1", service.port, max_connections=CLIENT_CONNECTIONS
        ) as client:
            wall_s, latencies, coalesced = await _fire(
                client, specs_over(burst_texts)
            )
            computed = service.engine.stats.computed
            assert computed == burst_distinct, (
                f"burst: computed {computed} != distinct {burst_distinct}"
            )
            results["coalesced"] = _summary(
                "coalesced", requests, burst_distinct, wall_s, latencies,
                coalesced, computed,
            )

    warm_speedup = (
        results["warm"]["throughput_rps"]
        / max(results["cold"]["throughput_rps"], 1e-9)
    )
    assert warm_speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm throughput only {warm_speedup:.2f}x cold "
        f"(need >= {WARM_SPEEDUP_FLOOR}x): the shared cache is not paying"
    )
    return results


def _print_results(name, results):
    widths = [11, 9, 9, 9, 11, 9, 9, 10]
    rows = [fmt_row(
        ["scenario", "requests", "distinct", "wall (s)", "thru (r/s)",
         "p50 (ms)", "p99 (ms)", "coalesced"],
        widths,
    )]
    for scenario in ("cold", "warm", "coalesced"):
        d = results[scenario]
        rows.append(fmt_row(
            [scenario, d["requests"], d["distinct_functions"], d["wall_s"],
             d["throughput_rps"], d["p50_ms"], d["p99_ms"], d["coalesced"]],
            widths,
        ))
    rows.append(
        f"cpu_count={os.cpu_count()}, inline engine, "
        f"{CLIENT_CONNECTIONS} client connections"
    )
    report(name, rows)


def _save(results):
    data = {}
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH) as fh:
            data = json.load(fh)
    data["current"] = {
        "scenarios": results,
        "cpu_count": os.cpu_count(),
        "client_connections": CLIENT_CONNECTIONS,
        "engine_workers": 0,
    }
    with open(BASELINE_PATH, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def test_service_load_full():
    """The acceptance run: 1000 concurrent requests / 200 distinct
    functions, zero failures, coalescing verified; regenerates
    BENCH_service.json."""
    results = asyncio.run(_bench(
        FULL_REQUESTS, FULL_DISTINCT, FULL_BURST_DISTINCT
    ))
    _print_results("E19_service_load", results)
    _save(results)


def test_quick_service_gate():
    """Reduced CI gate: same invariants (zero drops, misses == distinct,
    warm speedup) at a size a 1-CPU runner turns around in seconds."""
    results = asyncio.run(_bench(
        QUICK_REQUESTS, QUICK_DISTINCT, QUICK_BURST_DISTINCT
    ))
    _print_results("E19_quick_service_gate", results)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="run the reduced CI gate instead of the full load test",
    )
    args = parser.parse_args(argv)
    if args.quick:
        test_quick_service_gate()
        print("OK: quick service gate passed")
        return 0
    test_service_load_full()
    print("OK: service load gates passed (results in BENCH_service.json)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
