"""E10 -- operand temporaries without re-running allocation (section 6).

Compares the paper's method (temporaries as infinite-spill-cost locals,
recolored within the tile) against the "simple solution" of reserving
registers, and against Chaitin's full re-iteration.  Reported: dynamic
spill traffic and the number of coloring rounds each approach needs.
"""

import pytest

from conftest import fmt_row, report

from repro.allocators import ChaitinAllocator
from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.machine.target import Machine
from repro.pipeline import compile_function
from repro.workloads.figure1 import figure1_workload
from repro.workloads.kernels import all_kernel_workloads

MACHINE = Machine.simple(4)


def test_spill_temp_strategies(benchmark):
    widths = [16, 12, 12, 12]
    rows = [fmt_row(
        ["workload", "recolor", "reserve", "chaitin"], widths
    )]
    totals = {"recolor": 0, "reserve": 0, "chaitin": 0}
    for workload in all_kernel_workloads(8) + [figure1_workload(10)]:
        recolor = compile_function(
            workload, HierarchicalAllocator(), MACHINE
        )
        reserve = compile_function(
            workload,
            HierarchicalAllocator(
                HierarchicalConfig(spill_temp_strategy="reserve")
            ),
            MACHINE,
        )
        chaitin = compile_function(workload, ChaitinAllocator(), MACHINE)
        totals["recolor"] += recolor.spill_refs
        totals["reserve"] += reserve.spill_refs
        totals["chaitin"] += chaitin.spill_refs
        rows.append(fmt_row(
            [workload.label(), recolor.spill_refs, reserve.spill_refs,
             chaitin.spill_refs],
            widths,
        ))
    rows.append("")
    rows.append(fmt_row(
        ["TOTAL", totals["recolor"], totals["reserve"], totals["chaitin"]],
        widths,
    ))
    report("E10_spill_temps", rows)

    # Reserving registers costs two allocatable registers everywhere and
    # must lose to the paper's recoloring method.
    assert totals["recolor"] < totals["reserve"]

    benchmark(lambda: compile_function(
        figure1_workload(10),
        HierarchicalAllocator(
            HierarchicalConfig(spill_temp_strategy="reserve")
        ),
        MACHINE,
    ))


def test_iteration_counts(benchmark):
    """Chaitin's approach iterates whole-program allocation; the paper's
    stays inside individual tiles (recolor rounds)."""
    widths = [16, 16, 18]
    rows = [fmt_row(
        ["workload", "chaitin iters", "hier recolor rounds"], widths
    )]
    for workload in all_kernel_workloads(8):
        chaitin = compile_function(workload, ChaitinAllocator(), MACHINE)
        hier = compile_function(workload, HierarchicalAllocator(), MACHINE)
        rows.append(fmt_row(
            [workload.label(), chaitin.stats.iterations,
             hier.stats.extra["recolor_rounds"]],
            widths,
        ))
    report("E10_iterations", rows)

    benchmark(lambda: compile_function(
        all_kernel_workloads(8)[2], ChaitinAllocator(), MACHINE
    ))
