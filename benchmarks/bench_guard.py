"""E21 -- adversarial-input survival under resource governance.

The budget layer promises that *well-formed but hostile* input can cost
bounded work and nothing else: every function either completes within
its budget, degrades down the allocator ladder with a classified error,
or is refused at admission -- never an uncaught exception, never a hang.
This bench drives the adversarial corpus (``repro.workloads.adversarial``:
deep loop nests, irreducible meshes, interference cliques, spill churn,
and parser-depth attacks) through the batch engine under a deliberately
tight budget and records what happened to every input.

Scenarios, recorded in ``BENCH_guard.json``:

* **survival** -- every IR corpus case for each seed through a
  ``BatchEngine`` with ``max_fuel=TIGHT_FUEL`` and
  ``admission_limit=ADMISSION_LIMIT`` (sized so the corpus exercises
  all three outcomes: the mesh completes in budget, the clique burns
  its fuel and degrades, the nest/churn families are refused at
  admission).  MiniLang cases go through ``compile_source``: sources
  past the parser depth limit must raise a classified
  ``MiniLangError``.  Gates: zero uncaught exceptions, every failure
  carries a classified error, every function still yields a record
  (degrade mode), all three outcome kinds actually occur, and each
  engine pass finishes within a generous wall-clock ceiling (the
  "no hangs" proxy; the in-allocator deadline is exercised by unit
  tests, not timed here).
* **determinism** -- the identical module through a second fresh engine
  at the same fuel: per-function outcome (sha256 of the allocated text,
  degraded flag, error class, fallback allocator) must be bit-identical.
  Same fuel, same input, same story.

``python benchmarks/bench_guard.py --quick`` runs the one-seed CI gate
(same assertions).
"""

import argparse
import hashlib
import json
import os
import subprocess
import sys
import time

from conftest import fmt_row, report

from repro.batch import BatchConfig, BatchEngine
from repro.core.budget import estimate_cost
from repro.minilang import compile_source
from repro.minilang.lexer import MiniLangError
from repro.pipeline import Workload
from repro.workloads.adversarial import adversarial_corpus

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_guard.json"
)

SEEDS = (11, 23, 47)
QUICK_SEEDS = (11,)
#: Fuel per allocation: the mesh family completes well under this, the
#: clique family exhausts it (calibrated against the corpus families'
#: measured spend of ~300 / ~1700 / ~2500 units).
TIGHT_FUEL = 1000
#: Admission ceiling on estimate_cost: admits the mesh (~330) and the
#: clique (~2600), refuses the deep-nest (~6100) and churn (~7100)
#: families outright.
ADMISSION_LIMIT = 5000
#: Wall-clock ceiling per engine pass -- the corpus at scale 1 finishes
#: in well under a second, so minutes means a hang, not a slow machine.
WALL_CEILING_S = 120.0
#: Error classes a governed failure is allowed to carry.
CLASSIFIED = ("admission", "budget", "deadline")


def _git_sha():
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if proc.returncode == 0:
            return proc.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _save_baseline(payload):
    data = {}
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH) as fh:
            data = json.load(fh)
    data["current"] = payload
    data["current"]["environment"] = {
        "python_version": ".".join(str(v) for v in sys.version_info[:3]),
    }
    history = data.setdefault("history", [])
    sha = _git_sha()
    if not history or history[-1].get("git_sha") != sha:
        history.append({
            "git_sha": sha,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        })
        del history[:-50]
    with open(BASELINE_PATH, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _corpus_module(seeds):
    """(workloads, minilang_cases) over *seeds*, submission order fixed."""
    workloads = []
    minilang = []
    for seed in seeds:
        for case in adversarial_corpus(seed):
            if case.fn is not None:
                workloads.append(
                    Workload(case.fn, {"n": 5}, {}, name=case.name)
                )
            else:
                minilang.append(case)
    return workloads, minilang


def _engine_config():
    return BatchConfig(
        batch_workers=0,
        on_error="degrade",
        max_fuel=TIGHT_FUEL,
        admission_limit=ADMISSION_LIMIT,
    )


def _outcome_kind(result):
    if result.error is None:
        return "completed"
    if result.error.error_class == "admission":
        return "rejected"
    return "degraded"


def _outcome_fingerprint(result):
    """Everything the same-fuel determinism gate compares per function."""
    record = result.record
    return {
        "name": result.name,
        "ok": result.ok,
        "degraded": result.degraded,
        "fallback": result.fallback_allocator,
        "error_class": result.error.error_class if result.error else None,
        "sha": record.allocated_sha256 if record else None,
        "allocator": record.allocator if record else None,
    }


def run_survival(seeds):
    workloads, minilang = _corpus_module(seeds)
    failures = []
    t0 = time.perf_counter()
    try:
        with BatchEngine(batch=_engine_config()) as engine:
            module = engine.allocate_module(workloads)
            stats = engine.stats
    except Exception as exc:  # the gate: governance must contain this
        raise AssertionError(
            f"uncaught exception escaped the governed engine: {exc!r}"
        )
    elapsed = time.perf_counter() - t0
    if elapsed > WALL_CEILING_S:
        failures.append(
            f"engine pass took {elapsed:.1f}s > {WALL_CEILING_S}s ceiling"
        )

    kinds = {"completed": 0, "degraded": 0, "rejected": 0}
    rows = []
    for workload, result in zip(workloads, module.results):
        kind = _outcome_kind(result)
        kinds[kind] += 1
        if not result.ok:
            failures.append(f"{result.name}: no record (degrade mode broke)")
        if result.error is not None and result.error.error_class not in CLASSIFIED:
            failures.append(
                f"{result.name}: unclassified error class "
                f"{result.error.error_class!r}"
            )
        rows.append((
            result.name,
            estimate_cost(workload.fn),
            kind,
            result.error.error_class if result.error else "-",
            result.fallback_allocator or "-",
        ))

    minilang_rejects = 0
    for case in minilang:
        try:
            compile_source(case.source)
            if case.expect_reject:
                failures.append(f"{case.name}: depth attack was not rejected")
            else:
                kinds["completed"] += 1
                rows.append((case.name, "-", "completed", "-", "-"))
        except MiniLangError as exc:
            if not case.expect_reject:
                failures.append(f"{case.name}: spurious reject: {exc}")
            else:
                minilang_rejects += 1
                rows.append((case.name, "-", "rejected", "parse_depth", "-"))
        except Exception as exc:
            failures.append(
                f"{case.name}: unclassified front-end exception {exc!r}"
            )

    for kind in ("completed", "degraded", "rejected"):
        if kinds[kind] == 0:
            failures.append(
                f"corpus never produced a {kind!r} outcome -- the harness "
                f"is vacuous; recalibrate TIGHT_FUEL/ADMISSION_LIMIT"
            )
    if stats.rejected == 0:
        failures.append("engine admission control never fired")
    if stats.degraded_by_budget == 0:
        failures.append("budget-driven degradation never fired")

    widths = [34, 6, 10, 10, 10]
    lines = [
        fmt_row(["case", "cost", "outcome", "class", "fallback"], widths)
    ]
    lines += [fmt_row(list(row), widths) for row in rows]
    lines.append(
        f"fuel={TIGHT_FUEL} admission_limit={ADMISSION_LIMIT} "
        f"wall={elapsed:.2f}s completed={kinds['completed']} "
        f"degraded={kinds['degraded']} rejected={kinds['rejected']}"
    )
    report("BENCH_guard_survival", lines)
    summary = {
        "seeds": list(seeds),
        "cases": len(rows),
        "completed": kinds["completed"],
        "degraded": kinds["degraded"],
        "rejected": kinds["rejected"],
        "minilang_rejects": minilang_rejects,
        "engine_rejected": stats.rejected,
        "engine_degraded_by_budget": stats.degraded_by_budget,
        "wall_s": round(elapsed, 3),
    }
    return summary, failures


def run_determinism(seeds):
    """Same module, same fuel, two fresh engines: outcomes bit-identical."""
    workloads, _ = _corpus_module(seeds)
    prints = []
    for _ in range(2):
        with BatchEngine(batch=_engine_config()) as engine:
            module = engine.allocate_module(workloads)
        prints.append([_outcome_fingerprint(r) for r in module.results])
    failures = []
    for first, second in zip(prints[0], prints[1]):
        if first != second:
            failures.append(
                f"{first['name']}: same-fuel runs diverge:\n"
                f"  run1: {json.dumps(first, sort_keys=True)}\n"
                f"  run2: {json.dumps(second, sort_keys=True)}"
            )
    digest = hashlib.sha256(
        json.dumps(prints[0], sort_keys=True).encode()
    ).hexdigest()
    report("BENCH_guard_determinism", [
        f"functions={len(prints[0])} fuel={TIGHT_FUEL} "
        f"identical={'yes' if not failures else 'NO'}",
        f"outcome_digest={digest}",
    ])
    return {"functions": len(prints[0]), "outcome_digest": digest}, failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="one-seed CI gate (same assertions, smaller corpus)",
    )
    args = parser.parse_args(argv)
    seeds = QUICK_SEEDS if args.quick else SEEDS

    survival, failures = run_survival(seeds)
    determinism, det_failures = run_determinism(seeds)
    failures += det_failures

    _save_baseline({
        "survival": survival,
        "determinism": determinism,
        "quick": args.quick,
    })

    if failures:
        for failure in failures:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: {survival['cases']} corpus case(s) survived governance "
        f"(completed={survival['completed']} degraded={survival['degraded']} "
        f"rejected={survival['rejected']}), outcomes bit-identical at "
        f"fuel={TIGHT_FUEL}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
