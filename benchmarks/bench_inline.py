"""E13 -- inline expansion (paper section 6).

"Inline expansion can have a detrimental effect on traditional register
allocators since a natural spill point (the call site) has been removed.
Since our method retains natural spill points ... the cost of coloring
after inline expansion should be proportional to the combined cost of
coloring each function separately."

We inline k copies of a small conditional callee into a hot loop and watch
the *largest single interference graph* each allocator must color: the
whole-program graph grows with k, the largest tile graph stays near the
size of one inlined body.
"""

import pytest

from conftest import fmt_row, report

from repro.allocators import ChaitinAllocator
from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.ir.inline import inline_all
from repro.machine.target import Machine
from repro.pipeline import Workload, compile_function

from repro.workloads.callsites import make_callee, make_caller

MACHINE = Machine.simple(4)


def _inlined_workload(calls: int) -> Workload:
    inlined = inline_all(make_caller(calls), make_callee())
    return Workload(
        inlined, {"n": 6}, {"A": [1, 9, 3, 8, 2, 7]}, name=f"inl{calls}"
    )


def test_inline_graph_growth(benchmark):
    widths = [8, 8, 14, 14, 12]
    rows = [fmt_row(
        ["calls", "blocks", "hier max |V|", "flat |V|", "hier refs"],
        widths,
    )]
    # Tile-size control (the paper's Appendix A size paragraph) keeps the
    # loop tile bounded when many inlined bodies chain inside it.
    config = HierarchicalConfig(max_tile_width=4)
    measured = {}
    for calls in (1, 2, 4, 8):
        workload = _inlined_workload(calls)
        hier = compile_function(workload, HierarchicalAllocator(config), MACHINE)
        flat = compile_function(workload, ChaitinAllocator(), MACHINE)
        measured[calls] = (
            hier.stats.max_graph_nodes,
            flat.stats.max_graph_nodes,
        )
        rows.append(fmt_row(
            [calls, len(workload.fn.blocks), hier.stats.max_graph_nodes,
             flat.stats.max_graph_nodes, hier.spill_refs],
            widths,
        ))
    report("E13_inline", rows)

    # The flat graph grows with the number of inlined bodies...
    assert measured[8][1] > 1.5 * measured[1][1]
    # ...the largest tile graph grows much more slowly.
    hier_growth = measured[8][0] / measured[1][0]
    flat_growth = measured[8][1] / measured[1][1]
    assert hier_growth < flat_growth

    benchmark(lambda: compile_function(
        _inlined_workload(4), HierarchicalAllocator(), MACHINE
    ))


def test_inline_correctness_at_pressure(benchmark):
    """Inlined programs allocate correctly at every register count."""
    for registers in (2, 4, 6):
        workload = _inlined_workload(3)
        result = compile_function(
            workload, HierarchicalAllocator(), Machine.simple(registers)
        )
        assert result.allocated_run.returned == result.reference_run.returned
    report("E13_inline_correctness", [
        "inlined programs verified at R in {2, 4, 6}",
    ])
    benchmark(lambda: _inlined_workload(3))
