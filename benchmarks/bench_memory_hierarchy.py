"""E14 -- memory-hierarchy extension (paper section 6).

"Allocation entails placing the variable at the highest level where it can
be allocated."  With a small scratch memory priced below main memory, the
hottest spilled variables are promoted; the weighted overhead cost drops
monotonically with scratch size and the hottest slots are chosen first.
"""

import pytest

from conftest import fmt_row, report

from repro.core import HierarchicalAllocator
from repro.core.scratch import hierarchy_cost, promote_to_scratch
from repro.machine.simulator import simulate
from repro.machine.target import Machine
from repro.pipeline import compile_function
from repro.workloads.kernels import all_kernel_workloads

MACHINE = Machine.simple(4)
SIZES = (0, 1, 2, 4, 8)


def _promoted_run(result, workload, cells):
    promoted, chosen = promote_to_scratch(result.fn, cells)
    args = {
        target: workload.args[source]
        for target, source in zip(promoted.params, workload.fn.params)
    }
    run = simulate(promoted, args=args, arrays=workload.arrays)
    assert run.returned == result.allocated_run.returned
    return run, chosen


def test_scratch_promotion(benchmark):
    widths = [14] + [10] * len(SIZES)
    rows = [fmt_row(
        ["workload"] + [f"S={s}" for s in SIZES], widths
    )]
    totals = {s: 0.0 for s in SIZES}
    for workload in all_kernel_workloads(8):
        result = compile_function(workload, HierarchicalAllocator(), MACHINE)
        cells = [workload.label()]
        for size in SIZES:
            run, _ = _promoted_run(result, workload, size)
            cost = hierarchy_cost(run)
            totals[size] += cost
            cells.append(round(cost, 1))
        rows.append(fmt_row(cells, widths))
    rows.append("")
    rows.append(fmt_row(
        ["TOTAL"] + [round(totals[s], 1) for s in SIZES], widths
    ))
    report("E14_memory_hierarchy", rows)

    # Cost decreases monotonically with scratch size.
    for small, large in zip(SIZES, SIZES[1:]):
        assert totals[large] <= totals[small] + 1e-9

    workload = all_kernel_workloads(8)[2]
    result = compile_function(workload, HierarchicalAllocator(), MACHINE)
    benchmark(lambda: promote_to_scratch(result.fn, 4))


def test_hottest_slots_chosen_first(benchmark):
    """Promotion order follows expected traffic (highest level for the
    most valuable variables)."""
    from repro.core.scratch import weighted_slot_traffic

    workload = all_kernel_workloads(8)[2]  # matmul
    result = compile_function(workload, HierarchicalAllocator(), MACHINE)
    traffic = weighted_slot_traffic(result.fn)
    _, chosen = promote_to_scratch(result.fn, 3)
    ranked = sorted(
        (k for k in traffic if k.startswith("slot:")),
        key=lambda k: -traffic[k],
    )
    assert chosen == ranked[:3]
    report("E14_ordering", [f"promotion order: {chosen}"])
    benchmark(lambda: weighted_slot_traffic(result.fn))
