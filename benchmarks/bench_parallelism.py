"""E8 -- parallel allocation of sibling subtrees (paper section 6).

"Sibling subtrees can be processed concurrently in both the bottom-up and
top-down passes.  The amount of parallelism depends on the shape of the
tile tree ... there is adequate breadth in the tree to expect benefit."

We report the available breadth (tiles per level -- the units that can be
colored concurrently), verify the parallel driver produces the sequential
result, and measure wall-clock for both drivers.  (CPython threads share
the GIL, so wall-clock parity rather than speedup is the expected local
outcome; breadth is the paper's actual claim.)
"""

import pytest

from conftest import fmt_row, report

from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.machine.target import Machine
from repro.pipeline import compile_function
from repro.workloads.generators import random_workload
from repro.workloads.kernels import all_kernel_workloads

MACHINE = Machine.simple(4)


def test_tree_breadth(benchmark):
    widths = [16, 7, 7, 10, 14]
    rows = [fmt_row(
        ["workload", "tiles", "height", "max width", "parallel frac"],
        widths,
    )]
    for workload in all_kernel_workloads(8) + [
        random_workload(s, max_blocks=48, max_depth=4) for s in range(4)
    ]:
        allocator = HierarchicalAllocator()
        compile_function(workload, allocator, MACHINE)
        stats = allocator.last_context
        tree = stats.tree
        profile = tree.breadth_profile()
        tiles = len(tree)
        max_width = max(profile.values())
        # Fraction of tiles that have at least one sibling at their level:
        # the work units that benefit from concurrency.
        parallel = sum(v for v in profile.values() if v > 1) / tiles
        rows.append(fmt_row(
            [workload.label(), tiles, tree.height(), max_width,
             parallel],
            widths,
        ))
    report("E8_breadth", rows)

    benchmark(lambda: None)


def test_parallel_equals_sequential(benchmark):
    workload = random_workload(7, max_blocks=48, max_depth=4)
    seq = compile_function(workload, HierarchicalAllocator(), MACHINE)
    par = compile_function(
        workload,
        HierarchicalAllocator(
            HierarchicalConfig(parallel=True, parallel_min_tiles=1)
        ),
        MACHINE,
    )
    assert seq.spill_refs == par.spill_refs
    assert seq.allocated_run.returned == par.allocated_run.returned
    report("E8_parallel_equivalence", [
        f"sequential spill refs: {seq.spill_refs}",
        f"parallel   spill refs: {par.spill_refs}",
    ])

    benchmark(lambda: compile_function(
        workload,
        HierarchicalAllocator(
            HierarchicalConfig(parallel=True, parallel_min_tiles=1)
        ),
        MACHINE,
    ))


def test_sequential_timing(benchmark):
    workload = random_workload(7, max_blocks=48, max_depth=4)
    benchmark(lambda: compile_function(
        workload, HierarchicalAllocator(), MACHINE
    ))
