"""E1 -- the paper's Figure 1.

Regenerates the worked example: on the register-starved machine, Chaitin
"will spill either g1 or g2 for the entire program resulting in the poor
execution of one of the loops", while the hierarchical allocator spills g2
around the first loop and g1 around the second, placing all spill code in
the once-executed blocks.
"""

import pytest

from conftest import fmt_row, report

from repro.allocators import BriggsAllocator, ChaitinAllocator
from repro.core import HierarchicalAllocator
from repro.ir.instructions import Opcode
from repro.machine.target import Machine
from repro.pipeline import compile_function
from repro.workloads.figure1 import FIGURE1_REGISTERS, figure1_workload

MACHINE = Machine.simple(FIGURE1_REGISTERS)
TRIPS = 10


def _compile(allocator):
    return compile_function(figure1_workload(TRIPS), allocator, MACHINE)


def _loop_spill_ops(result):
    return sum(
        1
        for label in ("B2", "B3")
        for i in result.fn.blocks[label].instrs
        if i.op in (Opcode.SPILL_LD, Opcode.SPILL_ST)
    )


def test_figure1_table(benchmark):
    rows = [fmt_row(
        ["allocator", "dyn spill refs", "in-loop spill instrs", "spill blocks"],
        [12, 14, 20, 30],
    )]
    results = {}
    for allocator_cls in (HierarchicalAllocator, ChaitinAllocator, BriggsAllocator):
        result = _compile(allocator_cls())
        results[allocator_cls.name] = result
        rows.append(fmt_row(
            [
                allocator_cls.name,
                result.spill_refs,
                _loop_spill_ops(result),
                ",".join(sorted(result.stats.spill_block_labels)),
            ],
            [12, 14, 20, 30],
        ))
    report("E1_figure1", rows)

    hier = results["hierarchical"]
    chaitin = results["chaitin"]
    # Paper shape: hierarchical wins, and keeps the loops clean.
    assert hier.spill_refs < chaitin.spill_refs
    assert _loop_spill_ops(hier) == 0
    assert _loop_spill_ops(chaitin) > 0

    benchmark(lambda: _compile(HierarchicalAllocator()))


def test_figure1_scaling_with_trip_count(benchmark):
    """Hierarchical spill traffic is O(1) in the trip count (spill code on
    the loop boundaries); Chaitin's grows linearly (spill code inside)."""
    rows = [fmt_row(["n", "hierarchical", "chaitin"], [6, 12, 12])]
    history = {}
    for trips in (5, 10, 20, 40):
        hier = compile_function(
            figure1_workload(trips), HierarchicalAllocator(), MACHINE
        )
        chaitin = compile_function(
            figure1_workload(trips), ChaitinAllocator(), MACHINE
        )
        history[trips] = (hier.spill_refs, chaitin.spill_refs)
        rows.append(fmt_row(
            [trips, hier.spill_refs, chaitin.spill_refs], [6, 12, 12]
        ))
    report("E1_figure1_scaling", rows)

    assert history[40][0] == history[5][0], "hierarchical should be O(1)"
    assert history[40][1] > history[5][1], "chaitin should grow with trips"

    benchmark(lambda: compile_function(
        figure1_workload(10), ChaitinAllocator(), MACHINE
    ))
