"""E4 -- dynamic memory references across kernels and register counts.

The paper's objective is "to minimize the number of dynamic memory
references".  This bench sweeps R over the kernel suite and reports the
dynamic spill traffic per allocator.  Expected shape: hierarchical <=
Chaitin nearly everywhere, with the largest gaps at small R on loop-heavy
workloads, and all graph-coloring allocators converging to zero at large R.
"""

import pytest

from conftest import fmt_row, report

from repro.allocators import BriggsAllocator, ChaitinAllocator, LocalAllocator
from repro.core import HierarchicalAllocator
from repro.machine.target import Machine
from repro.pipeline import compile_function
from repro.workloads.kernels import all_kernel_workloads

REGISTERS = (2, 4, 6, 8, 12)
ALLOCS = [HierarchicalAllocator, ChaitinAllocator, BriggsAllocator, LocalAllocator]


def _sweep():
    table = {}
    for workload in all_kernel_workloads(10):
        for registers in REGISTERS:
            machine = Machine.simple(registers)
            for allocator_cls in ALLOCS:
                result = compile_function(workload, allocator_cls(), machine)
                table[(workload.label(), registers, allocator_cls.name)] = (
                    result.spill_refs + result.moves
                )
    return table


def test_dynamic_refs_sweep(benchmark):
    table = _sweep()
    widths = [14, 4] + [12] * len(ALLOCS)
    rows = [fmt_row(
        ["workload", "R"] + [a.name for a in ALLOCS], widths
    )]
    workloads = sorted({k[0] for k in table})
    for name in workloads:
        for registers in REGISTERS:
            rows.append(fmt_row(
                [name, registers]
                + [table[(name, registers, a.name)] for a in ALLOCS],
                widths,
            ))
    report("E4_dynamic_refs", rows)

    # Shape assertions.
    wins = ties = losses = 0
    for name in workloads:
        for registers in REGISTERS:
            hier = table[(name, registers, "hierarchical")]
            chaitin = table[(name, registers, "chaitin")]
            if hier < chaitin:
                wins += 1
            elif hier == chaitin:
                ties += 1
            else:
                losses += 1
    # Hierarchical wins or ties the overwhelming majority of cells.
    assert wins > losses, f"wins={wins} ties={ties} losses={losses}"

    # Everyone converges at large R.
    for name in workloads:
        hier = table[(name, REGISTERS[-1], "hierarchical")]
        assert hier <= table[(name, REGISTERS[0], "hierarchical")]

    # Time one representative compile.
    workload = all_kernel_workloads(10)[0]
    benchmark(lambda: compile_function(
        workload, HierarchicalAllocator(), Machine.simple(4)
    ))


def test_total_overhead_summary(benchmark):
    """Aggregate spill traffic over the whole suite per allocator."""
    table = _sweep()
    rows = [fmt_row(["allocator", "total dyn overhead"], [14, 18])]
    totals = {}
    for allocator_cls in ALLOCS:
        total = sum(
            v for (w, r, a), v in table.items() if a == allocator_cls.name
        )
        totals[allocator_cls.name] = total
        rows.append(fmt_row([allocator_cls.name, total], [14, 18]))
    report("E4_totals", rows)

    assert totals["hierarchical"] < totals["chaitin"]
    assert totals["chaitin"] <= totals["local"]

    benchmark(lambda: None)
