"""E16 -- analysis-layer and end-to-end allocation speed.

The PR-1 performance core replaced string-set dataflow with interned
bitsets (``repro.perf.VarIndex``) and the level-barrier parallel driver
with a dependency-driven scheduler (``repro.core.schedule``).  This bench
tracks both claims against the committed seed baseline in
``BENCH_analysis_speed.json``:

* end-to-end hierarchical allocation must be >= 3x faster than the seed
  on the largest generated workload (``rand_struct_428``, a structured
  random program of 428 blocks).  The seed numbers were recorded on one
  machine; to compare on any machine the bench re-measures the string-set
  reference analysis (``repro.analysis.reference`` -- the seed algorithm,
  preserved verbatim) and scales the recorded baseline by the ratio of
  calibration times;
* the dependency-driven parallel driver must not lose to the
  level-barrier driver it replaced (reconstructed here for comparison);
* sequential and parallel allocation must produce identical programs.

Each run also refreshes the ``current`` section of the baseline JSON so
future PRs have a perf trajectory to compare against.
"""

import json
import os
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor

from conftest import fmt_row, report

from repro.analysis.liveness import compute_liveness
from repro.analysis.reference import reference_interference, reference_liveness
from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.core.phase1 import allocate_tile
from repro.core.phase2 import bind_tile
from repro.graph.interference import build_interference
from repro.ir.printer import format_function
from repro.machine.target import Machine
from repro.workloads.generators import random_program
from repro.workloads.kernels import sequential_loops

MACHINE = Machine.simple(8)
BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_analysis_speed.json"
)

#: (name, factory) -- ``rand_struct_428`` is the "largest generated
#: workload" of the acceptance criteria (structured random program,
#: >= 200 blocks).
WORKLOADS = [
    ("seq_loops_100", lambda: sequential_loops(100)),
    ("rand_struct_327", lambda: random_program(
        seed=1, max_blocks=400, max_vars=40, max_depth=6, break_prob=0.05
    )),
    ("seq_loops_200", lambda: sequential_loops(200)),
    ("rand_struct_428", lambda: random_program(
        seed=3, max_blocks=800, max_vars=48, max_depth=7, break_prob=0.04
    )),
]
LARGEST = "rand_struct_428"


def _time(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _run_analysis_reference(fn):
    liv = reference_liveness(fn)
    for label in fn.blocks:
        liv.instr_live_out(label)
    reference_interference(fn, liv)


def _run_analysis_bitset(fn):
    liv = compute_liveness(fn)
    for label in fn.blocks:
        liv.instr_live_out_bits(label)
    build_interference(fn, liv)


def _allocate(fn, config):
    allocator = HierarchicalAllocator(config)
    return allocator.allocate(fn.clone(), MACHINE)


def _load_baseline():
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


_history_recorded = False


def _git_sha():
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if proc.returncode == 0:
            return proc.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _save_baseline(data):
    # Allocation output is seed-independent (see tests/determinism), but
    # *timings* can still drift with the hash salt (dict/set layouts), so
    # every refresh records the interpreter's hash-randomization state.
    # Run under PYTHONHASHSEED=0 (as CI does) for comparable baselines.
    global _history_recorded
    data.setdefault("current", {})["environment"] = {
        "python_hashseed": os.environ.get("PYTHONHASHSEED", "random"),
        "hash_randomization": bool(sys.flags.hash_randomization),
        "python_version": ".".join(str(v) for v in sys.version_info[:3]),
    }
    # One history entry per bench session records the speed trajectory
    # across PRs (the per-workload numbers live in "current"; history is
    # just "who measured, when").  Capped so the file stays reviewable.
    if not _history_recorded:
        history = data.setdefault("history", [])
        history.append({
            "git_sha": _git_sha(),
            "timestamp": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
        })
        del history[:-50]
        _history_recorded = True
    with open(BASELINE_PATH, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _level_barrier_allocate(fn, workers=None):
    """The pre-PR parallel driver: one thread-pool barrier per tree level.

    Reconstructed here (the library now ships only the dependency-driven
    scheduler) so the bench can show the replacement does not regress."""
    # parallel_min_tiles=1: the barrier phases below are patched in over
    # the scheduled entry points, which only run when the auto-fallback
    # does not kick in.
    config = HierarchicalConfig(
        parallel=True, parallel_workers=workers, parallel_min_tiles=1
    )
    allocator = HierarchicalAllocator(config)
    work = fn.clone()

    import repro.core.allocator as allocator_mod

    def barrier_phase1(ctx, cfg):
        by_depth = {}
        for tile in ctx.tree.postorder():
            by_depth.setdefault(tile.depth(), []).append(tile)
        allocations = {}
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for depth in sorted(by_depth, reverse=True):
                tiles = by_depth[depth]
                results = pool.map(
                    lambda t: allocate_tile(ctx, cfg, t, allocations), tiles
                )
                for tile, result in zip(tiles, results):
                    allocations[tile.tid] = result
        return {t.tid: allocations[t.tid] for t in ctx.tree.postorder()}

    def barrier_phase2(ctx, cfg, allocations):
        by_depth = {}
        for tile in ctx.tree.preorder():
            by_depth.setdefault(tile.depth(), []).append(tile)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for depth in sorted(by_depth):
                tiles = by_depth[depth]
                list(pool.map(
                    lambda t: bind_tile(ctx, cfg, t, allocations), tiles
                ))

    orig1 = allocator_mod.run_phase1_scheduled
    orig2 = allocator_mod.run_phase2_scheduled
    allocator_mod.run_phase1_scheduled = barrier_phase1
    allocator_mod.run_phase2_scheduled = barrier_phase2
    try:
        return allocator.allocate(work, MACHINE)
    finally:
        allocator_mod.run_phase1_scheduled = orig1
        allocator_mod.run_phase2_scheduled = orig2


def test_analysis_layer(benchmark):
    """Bitset liveness + interference vs the seed's string-set algorithms.

    Reporting only: the speedup here measures the whole-function analysis
    pass in isolation.  The big wins (per-tile relevant filtering, memoized
    block liveness, boundary-mask reuse) only show up inside the full
    allocation -- which the end-to-end test below gates."""
    widths = [16, 8, 12, 12, 8]
    rows = [fmt_row(
        ["workload", "blocks", "strset (ms)", "bitset (ms)", "speedup"],
        widths,
    )]
    analysis = {}
    for name, factory in WORKLOADS:
        fn = factory()
        ref = _time(lambda: _run_analysis_reference(fn))
        fast = _time(lambda: _run_analysis_bitset(fn))
        speedup = ref / max(fast, 1e-9)
        analysis[name] = {
            "strset_s": round(ref, 4),
            "bitset_s": round(fast, 4),
        }
        rows.append(fmt_row(
            [name, len(fn.blocks), round(ref * 1e3, 2),
             round(fast * 1e3, 2), round(speedup, 1)],
            widths,
        ))
    report("E16_analysis_layer", rows)

    data = _load_baseline()
    data.setdefault("current", {})["analysis_layer"] = analysis
    _save_baseline(data)

    fn = sequential_loops(100)
    benchmark(lambda: _run_analysis_bitset(fn))


def test_end_to_end_speedup(benchmark):
    """>= 3x end-to-end allocation speedup over the recorded seed baseline.

    The normalized speedup on a machine M is

        (seed_e2e_recorded / current_e2e_on_M) * (calib_on_M / calib_recorded)

    where calib is the string-set reference analysis -- the seed's own
    algorithm, so its runtime moves with machine speed but not with this
    repo's optimizations."""
    baseline = _load_baseline()
    seed_wl = baseline["seed_baseline"]["workloads"]

    widths = [16, 8, 12, 12, 10]
    rows = [fmt_row(
        ["workload", "blocks", "seed (ms)*", "now (ms)", "speedup"],
        widths,
    )]
    current = {}
    speedups = {}
    for name, factory in WORKLOADS:
        fn = factory()
        cur = _time(lambda: _allocate(fn, HierarchicalConfig()), repeats=3)
        calib_now = _time(lambda: _run_analysis_reference(fn), repeats=3)
        rec = seed_wl[name]
        machine_ratio = calib_now / max(rec["calibration_strset_s"], 1e-9)
        seed_scaled = rec["end_to_end_s"] * machine_ratio
        speedup = seed_scaled / max(cur, 1e-9)
        speedups[name] = speedup
        current[name] = {
            "blocks": len(fn.blocks),
            "end_to_end_s": round(cur, 4),
            "calibration_strset_s": round(calib_now, 4),
            "speedup_vs_seed": round(speedup, 2),
        }
        rows.append(fmt_row(
            [name, len(fn.blocks), round(seed_scaled * 1e3, 1),
             round(cur * 1e3, 1), round(speedup, 2)],
            widths,
        ))
    rows.append("* seed time scaled by the strset-calibration ratio")
    report("E16_end_to_end_vs_seed", rows)

    data = _load_baseline()
    data.setdefault("current", {})["end_to_end"] = current
    _save_baseline(data)

    # Acceptance: >= 3x on the largest generated workload.
    assert speedups[LARGEST] >= 3.0, (
        f"{LARGEST}: end-to-end speedup {speedups[LARGEST]:.2f}x < 3x"
    )

    prepared = sequential_loops(100)
    benchmark(lambda: _allocate(prepared, HierarchicalConfig()))


def _calibration_ratio(baseline):
    """now/recorded aggregate string-set calibration over the four bench
    workloads -- the machine-speed normalizer shared by every gate."""
    seed_wl = baseline["seed_baseline"]["workloads"]
    calib_now = 0.0
    for name, factory in WORKLOADS:
        fn = factory()
        calib_now += _time(lambda: _run_analysis_reference(fn), repeats=3)
    calib_rec = sum(
        seed_wl[name]["calibration_strset_s"] for name, _ in WORKLOADS
    )
    return calib_now / max(calib_rec, 1e-9)


def test_cold_path_throughput(benchmark):
    """>= 3x cold-module throughput over the seed-equivalent baseline.

    Cold path = what a compiler pays on first contact with a module:
    format + fingerprint + parse + full hierarchical allocation with
    differential verification, inline (``batch_workers=0``) through a
    fresh :class:`~repro.batch.BatchEngine` so no cache and no pool
    startup pollute the number.

    The gate anchors on the frozen ``cold_path_anchor`` section of the
    baseline JSON (see its ``note`` for the full derivation): the seed
    tree predates the batch engine, so its cold fn/s is derived as the
    first recorded batch throughput divided by the recorded seed/PR-4
    aggregate end-to-end ratio, then machine-normalized by the string-set
    calibration ratio.  The PR-4-relative trajectory (against
    ``recorded_cold_fps`` itself) is *reported* but not gated -- that
    number was recorded on an already-optimized tree, so holding it to
    3x would be dishonest bookkeeping, not a perf target.

    The per-stage attribution table comes from the engine's
    :class:`~repro.perf.StageTimers` (the ``--profile`` hook), so a
    regression here names the stage that caused it.
    """
    from repro.batch import BatchConfig, BatchEngine, synthetic_module

    baseline = _load_baseline()
    anchor = baseline["cold_path_anchor"]

    workloads = synthetic_module(anchor["recorded_module_functions"])
    n = len(workloads)
    batch = BatchConfig(batch_workers=0)
    best = float("inf")
    timers = None
    for _ in range(3):
        with BatchEngine(batch=batch) as engine:
            start = time.perf_counter()
            module = engine.allocate_module(workloads)
            elapsed = time.perf_counter() - start
        assert not any(r.cached for r in module), "cold pass hit the cache"
        assert not module.failures, "cold pass had failures"
        if elapsed < best:
            best = elapsed
            timers = engine.timers
    cold_fps = n / max(best, 1e-9)

    machine_ratio = _calibration_ratio(baseline)
    # fps scales inversely with time: a slower machine (ratio > 1) would
    # have recorded proportionally fewer fn/s.
    seed_fps_here = anchor["seed_equiv_cold_fps"] / machine_ratio
    pr4_fps_here = anchor["recorded_cold_fps"] / machine_ratio
    speedup_vs_seed = cold_fps / max(seed_fps_here, 1e-9)
    speedup_vs_pr4 = cold_fps / max(pr4_fps_here, 1e-9)

    widths = [26, 12]
    rows = [fmt_row(["metric", "value"], widths)]
    rows.append(fmt_row(["module functions", n], widths))
    rows.append(fmt_row(["cold wall (s)", round(best, 4)], widths))
    rows.append(fmt_row(["cold fn/s", round(cold_fps, 2)], widths))
    rows.append(fmt_row(
        ["seed-equiv fn/s*", round(seed_fps_here, 2)], widths
    ))
    rows.append(fmt_row(
        ["speedup vs seed", round(speedup_vs_seed, 2)], widths
    ))
    rows.append(fmt_row(
        ["speedup vs PR-4 (report)", round(speedup_vs_pr4, 2)], widths
    ))
    rows.append("* machine-normalized; derivation in cold_path_anchor.note")
    rows.append("stage attribution (summed across the module):")
    rows.extend("  " + line for line in timers.report(total=best).splitlines())
    report("E16_cold_path", rows)

    data = _load_baseline()
    data.setdefault("current", {})["cold_path"] = {
        "module_functions": n,
        "cold_s": round(best, 4),
        "cold_fps": round(cold_fps, 2),
        "speedup_vs_seed": round(speedup_vs_seed, 2),
        "speedup_vs_pr4": round(speedup_vs_pr4, 2),
        "stage_times_s": {
            name: round(seconds, 4)
            for name, seconds in sorted(timers.as_dict().items())
        },
    }
    _save_baseline(data)

    # Floor set after the dense select-loop / arena temp-node PR, whose
    # calibrated runs measured 5.2-7.6x on a noisy shared host (worst
    # observed sample 4.31x); 4.0 keeps headroom for machine jitter while
    # still catching a real regression to the pre-dense-engine level.
    assert speedup_vs_seed >= 4.0, (
        f"cold path {cold_fps:.1f} fn/s is only {speedup_vs_seed:.2f}x "
        f"the seed-equivalent {seed_fps_here:.1f} fn/s (need >= 4x)"
    )

    small = synthetic_module(8)
    with BatchEngine(batch=BatchConfig(batch_workers=0)) as engine:

        def run():
            engine.cache.clear_memory()
            engine.allocate_module(small)

        benchmark(run)


def test_parallel_drivers(benchmark):
    """Dependency-driven parallel vs the level-barrier driver it replaced.

    Two parallel columns: ``dep`` is the *production* config
    (``parallel=True``), which on these tile counts auto-falls back to the
    sequential driver (``repro.core.schedule.should_parallelize`` -- the
    GIL makes intra-function thread parallelism a loss at this scale, so
    the parallel axis moved to processes-per-function in
    ``repro.batch``); ``forced`` pins ``parallel_min_tiles=1`` so the
    scheduler itself actually runs and can be compared against the
    barrier driver it replaced.
    """
    widths = [16, 8, 10, 10, 12, 12]
    rows = [fmt_row(
        ["workload", "blocks", "seq (ms)", "dep (ms)", "forced (ms)",
         "barrier (ms)"],
        widths,
    )]
    current = {}
    forced_total = 0.0
    barrier_total = 0.0
    for name, factory in WORKLOADS:
        fn = factory()
        seq_cfg = HierarchicalConfig()
        dep_cfg = HierarchicalConfig(parallel=True, parallel_workers=4)
        forced_cfg = HierarchicalConfig(
            parallel=True, parallel_workers=4, parallel_min_tiles=1
        )
        seq = _time(lambda: _allocate(fn, seq_cfg), repeats=2)
        dep = _time(lambda: _allocate(fn, dep_cfg), repeats=3)
        forced = _time(lambda: _allocate(fn, forced_cfg), repeats=3)
        barrier = _time(
            lambda: _level_barrier_allocate(fn, workers=4), repeats=3
        )
        forced_total += forced
        barrier_total += barrier
        rows.append(fmt_row(
            [name, len(fn.blocks), round(seq * 1e3, 1),
             round(dep * 1e3, 1), round(forced * 1e3, 1),
             round(barrier * 1e3, 1)],
            widths,
        ))
        current[name] = {
            "sequential_s": round(seq, 4),
            "dep_parallel_s": round(dep, 4),
            "dep_forced_s": round(forced, 4),
            "level_barrier_s": round(barrier, 4),
        }

        # The dependency-driven scheduler must not lose to the barrier
        # driver it replaced.  Per-workload check is loose (thread
        # scheduling on sub-100ms runs is noisy); the aggregate check
        # below is the real gate.
        assert forced <= barrier * 1.5, (
            f"{name}: dep-driven {forced:.3f}s slower than "
            f"barrier {barrier:.3f}s"
        )

    report("E16_parallel_drivers", rows)

    assert forced_total <= barrier_total * 1.1, (
        f"dep-driven total {forced_total:.3f}s slower than "
        f"barrier total {barrier_total:.3f}s"
    )

    data = _load_baseline()
    data.setdefault("current", {})["drivers"] = current
    _save_baseline(data)

    prepared = sequential_loops(100)
    benchmark(
        lambda: _allocate(
            prepared, HierarchicalConfig(parallel=True, parallel_workers=4)
        )
    )


def test_parallel_matches_sequential():
    """Same program text and spill set from both drivers (determinism).

    ``parallel_min_tiles=1`` forces the scheduler so this compares real
    drivers, not the fallback against itself.
    """
    for name, factory in WORKLOADS:
        fn = factory()
        seq = _allocate(fn, HierarchicalConfig())
        par = _allocate(
            fn,
            HierarchicalConfig(
                parallel=True, parallel_workers=4, parallel_min_tiles=1
            ),
        )
        assert format_function(seq.fn) == format_function(par.fn), name
        assert seq.stats.spilled_vars == par.stats.spilled_vars, name
