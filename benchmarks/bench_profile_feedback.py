"""E7 -- "profiling information can be trivially incorporated".

Workloads with branch behaviour the static estimator cannot see (a skewed
hot/cold branch): allocate once with static frequencies and once with
frequencies measured by the simulator, then compare dynamic spill traffic
on a representative input.  Paper shape: profile-guided <= static, with
real gaps on skew.
"""

import pytest

from conftest import fmt_row, report

from repro.analysis.frequency import frequencies_from_profile
from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.machine.calls import with_callee_save
from repro.machine.simulator import simulate
from repro.machine.target import Machine
from repro.pipeline import Workload, compile_function
from repro.workloads.kernels import hot_cold, quick_return

MACHINE = Machine.simple(4)


def _hot_cold_workload(n=30):
    # A[i] % 7 selects the cold path only when v % 7 == 0: make the data
    # almost always take the hot path.
    data = [i * 7 + 1 for i in range(n)]  # never divisible by 7
    data[n // 2] = 7  # exactly one cold hit
    return Workload(
        hot_cold(), {"n": n},
        {"A": data, "B": list(range(n)), "C": list(range(n))},
        name="hot_cold_skewed",
    )


def _profiled(workload):
    run = simulate(workload.fn, args=workload.args, arrays=workload.arrays)
    return frequencies_from_profile(workload.fn, run.profile)


def test_profile_guided_hot_cold(benchmark):
    workload = _hot_cold_workload()
    static = compile_function(workload, HierarchicalAllocator(), MACHINE)
    freq = _profiled(workload)
    guided = compile_function(
        workload,
        HierarchicalAllocator(HierarchicalConfig(frequencies=freq)),
        MACHINE,
    )
    rows = [
        fmt_row(["mode", "dyn spill refs", "moves"], [10, 14, 8]),
        fmt_row(["static", static.spill_refs, static.moves], [10, 14, 8]),
        fmt_row(["profile", guided.spill_refs, guided.moves], [10, 14, 8]),
    ]
    report("E7_profile_hot_cold", rows)

    assert guided.spill_refs <= static.spill_refs

    benchmark(lambda: compile_function(
        workload,
        HierarchicalAllocator(HierarchicalConfig(frequencies=freq)),
        MACHINE,
    ))


def test_profile_guided_quick_return(benchmark):
    """Fast-path-dominated callee-save workload: the profile reveals the
    slow region is cold, enabling shrink wrapping (see also E11)."""
    machine = Machine.with_linkage(6, num_callee_save=2, num_args=2)
    fn = with_callee_save(quick_return(), machine)
    profile = None
    for n in [0] * 9 + [5]:
        run = simulate(
            fn, args={"n": n, "R4": 1, "R5": 2}, arrays={"A": [1, 2, 3, 4, 5]}
        )
        profile = run.profile if profile is None else profile.merge(run.profile)
    freq = frequencies_from_profile(fn, profile)

    fast = Workload(fn, {"n": 0, "R4": 1, "R5": 2}, {"A": []}, name="fast")
    static = compile_function(fast, HierarchicalAllocator(), machine)
    guided = compile_function(
        fast, HierarchicalAllocator(HierarchicalConfig(frequencies=freq)),
        machine,
    )
    rows = [
        fmt_row(["mode", "fast-path spill refs"], [10, 20]),
        fmt_row(["static", static.spill_refs], [10, 20]),
        fmt_row(["profile", guided.spill_refs], [10, 20]),
    ]
    report("E7_profile_quick_return", rows)

    assert guided.spill_refs < static.spill_refs

    benchmark(lambda: compile_function(
        fast, HierarchicalAllocator(HierarchicalConfig(frequencies=freq)),
        machine,
    ))
