"""E15 -- allocation-time scaling (Appendix A complexity remarks).

"Execution time [of fix-up] is O(||E|| * h(T)) ... It is expected that
actual times will not approach this bound in practice.  Execution time of
finding intervals is O(||E|| + ||N||) and the execution time of finding
tiles within intervals is dominated by the time to compute the dominator
relation."

We time tile-tree construction and full allocation on growing programs and
check growth stays near-linear (doubling the program should far less than
quadruple the time).
"""

import time

import pytest

from conftest import fmt_row, report

from repro.allocators import ChaitinAllocator
from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.machine.target import Machine
from repro.pipeline import Workload, prepare
from repro.tiles.construction import build_tile_tree_detailed
from repro.workloads.kernels import sequential_loops

MACHINE = Machine.simple(4)


def _time(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_construction_scaling(benchmark):
    widths = [8, 8, 12]
    rows = [fmt_row(["loops", "blocks", "build (ms)"], widths)]
    times = {}
    for count in (8, 16, 32, 64):
        fn = sequential_loops(count)
        times[count] = _time(lambda fn=fn: build_tile_tree_detailed(fn.clone()))
        rows.append(fmt_row(
            [count, len(fn.blocks), round(times[count] * 1e3, 2)], widths
        ))
    report("E15_construction_time", rows)

    # Near-linear: 8x the program should cost well under 8^2 = 64x time.
    assert times[64] < 64 * max(times[8], 1e-4)

    benchmark(lambda: build_tile_tree_detailed(sequential_loops(32)))


def test_allocation_scaling(benchmark):
    config = HierarchicalConfig(max_tile_width=4)
    widths = [8, 8, 14, 12]
    rows = [fmt_row(["loops", "blocks", "hier (ms)", "flat (ms)"], widths)]
    hier_times = {}
    for count in (8, 16, 32):
        fn = sequential_loops(count)
        prepared = prepare(fn.clone())

        def run_hier(prepared=prepared):
            HierarchicalAllocator(config).allocate(prepared.clone(), MACHINE)

        def run_flat(prepared=prepared):
            ChaitinAllocator().allocate(prepared.clone(), MACHINE)

        hier_times[count] = _time(run_hier, repeats=2)
        flat = _time(run_flat, repeats=2)
        rows.append(fmt_row(
            [count, len(fn.blocks), round(hier_times[count] * 1e3, 1),
             round(flat * 1e3, 1)],
            widths,
        ))
    report("E15_allocation_time", rows)

    assert hier_times[32] < 16 * max(hier_times[8], 1e-4)

    prepared = prepare(sequential_loops(16))
    benchmark(lambda: HierarchicalAllocator(config).allocate(
        prepared.clone(), MACHINE
    ))
