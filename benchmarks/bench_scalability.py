"""E15 -- allocation-time scaling (Appendix A complexity remarks).

"Execution time [of fix-up] is O(||E|| * h(T)) ... It is expected that
actual times will not approach this bound in practice.  Execution time of
finding intervals is O(||E|| + ||N||) and the execution time of finding
tiles within intervals is dominated by the time to compute the dominator
relation."

We time tile-tree construction and full allocation on growing programs and
check growth stays near-linear (doubling the program should far less than
quadruple the time).
"""

import json
import os
import time

import pytest

from conftest import fmt_row, report

from repro.allocators import ChaitinAllocator
from repro.analysis.reference import reference_interference, reference_liveness
from repro.core import HierarchicalAllocator, HierarchicalConfig
from repro.machine.target import Machine
from repro.pipeline import Workload, prepare
from repro.tiles.construction import build_tile_tree_detailed
from repro.workloads.generators import random_program
from repro.workloads.kernels import sequential_loops

MACHINE = Machine.simple(4)
BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_analysis_speed.json"
)


def _time(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_construction_scaling(benchmark):
    widths = [8, 8, 12]
    rows = [fmt_row(["loops", "blocks", "build (ms)"], widths)]
    times = {}
    for count in (8, 16, 32, 64):
        fn = sequential_loops(count)
        times[count] = _time(lambda fn=fn: build_tile_tree_detailed(fn.clone()))
        rows.append(fmt_row(
            [count, len(fn.blocks), round(times[count] * 1e3, 2)], widths
        ))
    report("E15_construction_time", rows)

    # Near-linear: 8x the program should cost well under 8^2 = 64x time.
    assert times[64] < 64 * max(times[8], 1e-4)

    benchmark(lambda: build_tile_tree_detailed(sequential_loops(32)))


def test_allocation_scaling(benchmark):
    config = HierarchicalConfig(max_tile_width=4)
    widths = [8, 8, 14, 12]
    rows = [fmt_row(["loops", "blocks", "hier (ms)", "flat (ms)"], widths)]
    hier_times = {}
    for count in (8, 16, 32):
        fn = sequential_loops(count)
        prepared = prepare(fn.clone())

        def run_hier(prepared=prepared):
            HierarchicalAllocator(config).allocate(prepared.clone(), MACHINE)

        def run_flat(prepared=prepared):
            ChaitinAllocator().allocate(prepared.clone(), MACHINE)

        hier_times[count] = _time(run_hier, repeats=2)
        flat = _time(run_flat, repeats=2)
        rows.append(fmt_row(
            [count, len(fn.blocks), round(hier_times[count] * 1e3, 1),
             round(flat * 1e3, 1)],
            widths,
        ))
    report("E15_allocation_time", rows)

    assert hier_times[32] < 16 * max(hier_times[8], 1e-4)

    prepared = prepare(sequential_loops(16))
    benchmark(lambda: HierarchicalAllocator(config).allocate(
        prepared.clone(), MACHINE
    ))


# Quick regression gate (CI runs just this with ``-k quick``): end-to-end
# allocation must stay within 2x of the committed baseline in
# BENCH_analysis_speed.json.  The recorded times come from one machine;
# the string-set reference analysis (the seed algorithm, untouched by
# optimization work) is re-timed here and the baseline scaled by the
# calibration ratio so the gate transfers across machines.
QUICK_WORKLOADS = {
    "seq_loops_100": lambda: sequential_loops(100),
    "rand_struct_327": lambda: random_program(
        seed=1, max_blocks=400, max_vars=40, max_depth=6, break_prob=0.05
    ),
}


def _strset_analysis(fn):
    liv = reference_liveness(fn)
    for label in fn.blocks:
        liv.instr_live_out(label)
    reference_interference(fn, liv)


def test_quick_regression_gate():
    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)
    recorded = baseline.get("current", {}).get("end_to_end", {})
    if not recorded:
        pytest.skip("no committed end-to-end baseline yet")

    machine = Machine.simple(8)
    config = HierarchicalConfig()
    widths = [16, 12, 12, 8]
    rows = [fmt_row(["workload", "limit (ms)", "now (ms)", "ratio"], widths)]
    failures = []
    for name, factory in QUICK_WORKLOADS.items():
        rec = recorded.get(name)
        if rec is None:
            continue
        fn = factory()
        cur = _time(
            lambda: HierarchicalAllocator(config).allocate(
                fn.clone(), machine
            ),
            repeats=3,
        )
        calib_now = _time(lambda: _strset_analysis(fn), repeats=3)
        scale = calib_now / max(rec["calibration_strset_s"], 1e-9)
        limit = rec["end_to_end_s"] * scale * 2.0
        rows.append(fmt_row(
            [name, round(limit * 1e3, 1), round(cur * 1e3, 1),
             round(cur / max(limit, 1e-9), 2)],
            widths,
        ))
        if cur > limit:
            failures.append(
                f"{name}: {cur * 1e3:.1f}ms exceeds 2x baseline "
                f"({limit * 1e3:.1f}ms machine-normalized)"
            )
    report("E15_quick_gate", rows)
    assert not failures, "; ".join(failures)


def test_quick_cold_path_gate():
    """Cold-module throughput >= 2.5x the seed-equivalent baseline.

    CI's quick perf gate for the flattened cold path: one inline
    (``batch_workers=0``) cold pass through the batch engine on the
    anchor's module size, compared against the frozen
    ``cold_path_anchor`` in ``BENCH_analysis_speed.json`` (see its
    ``note`` for how the seed-equivalent fn/s is derived), machine-
    normalized by the aggregate string-set calibration ratio.  The full
    bench (``bench_analysis_speed.py::test_cold_path_throughput``) gates
    the stricter 3x and records the trajectory; this is the cheap
    regression tripwire.  Run under ``PYTHONHASHSEED=0`` (as CI does)
    for comparable timings.
    """
    from bench_analysis_speed import (
        WORKLOADS,
        _run_analysis_reference,
    )
    from repro.batch import BatchConfig, BatchEngine, synthetic_module

    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)
    anchor = baseline.get("cold_path_anchor")
    if anchor is None:
        pytest.skip("no committed cold_path_anchor yet")

    workloads = synthetic_module(anchor["recorded_module_functions"])
    n = len(workloads)
    best = float("inf")
    for _ in range(2):
        with BatchEngine(batch=BatchConfig(batch_workers=0)) as engine:
            start = time.perf_counter()
            module = engine.allocate_module(workloads)
            best = min(best, time.perf_counter() - start)
        assert not module.failures, "cold pass had failures"
    cold_fps = n / max(best, 1e-9)

    calib_now = 0.0
    for name, factory in WORKLOADS:
        fn = factory()
        calib_now += _time(lambda: _run_analysis_reference(fn), repeats=3)
    machine_ratio = calib_now / max(anchor["calibration_strset_agg_s"], 1e-9)
    seed_fps_here = anchor["seed_equiv_cold_fps"] / machine_ratio
    speedup = cold_fps / max(seed_fps_here, 1e-9)

    widths = [26, 12]
    rows = [fmt_row(["metric", "value"], widths)]
    rows.append(fmt_row(["cold fn/s", round(cold_fps, 2)], widths))
    rows.append(fmt_row(["seed-equiv fn/s", round(seed_fps_here, 2)], widths))
    rows.append(fmt_row(["speedup vs seed", round(speedup, 2)], widths))
    report("E15_quick_cold_path", rows)

    assert speedup >= 2.5, (
        f"cold path {cold_fps:.1f} fn/s is only {speedup:.2f}x the "
        f"seed-equivalent {seed_fps_here:.1f} fn/s (need >= 2.5x)"
    )


def test_quick_parallel_fallback_gate():
    """The production parallel config must never lose to sequential.

    On these tile counts (~100-200 tiles) thread-based tile parallelism
    loses to the GIL, so ``should_parallelize`` auto-falls back to the
    sequential driver and the only cost left is the threshold check
    itself -- the scheduler is retained as the paper's section-6
    reproduction and an ablation axis, not as a performance feature (the
    parallel axis that pays is processes-per-function in
    ``repro.batch``).  Gate: parallel config <= 1.05x sequential on the
    quick workloads (run by CI's perf gate via ``-k quick``).

    The two configs are timed in *interleaved* rounds with the order
    alternating each round (seq-par, par-seq, ...), best-of per config:
    timing them in separate back-to-back blocks let slow late-process
    drift land entirely on whichever config ran second, which failed
    this gate even when comparing the identical code path against
    itself.  Times are **CPU time** (``time.process_time``), not wall
    clock: on a shared runner wall measurements of ~100ms carry enough
    interference to flip a tight ratio either way, while CPU time only
    counts this process's work -- and still catches the failure mode the
    gate exists for, the scheduler accidentally engaging (GIL-bound
    threading burns strictly *more* CPU than the sequential driver).
    The threshold is 1.10: the fallback's true overhead is one threshold
    check (microseconds), the margin absorbs allocator-level CPU jitter.
    """
    machine = Machine.simple(8)
    seq_cfg = HierarchicalConfig()
    par_cfg = HierarchicalConfig(parallel=True, parallel_workers=4)
    widths = [16, 12, 12, 8]
    rows = [fmt_row(["workload", "seq (ms)", "par (ms)", "ratio"], widths)]
    failures = []
    for name, factory in QUICK_WORKLOADS.items():
        fn = factory()

        def run(cfg):
            start = time.process_time()
            HierarchicalAllocator(cfg).allocate(fn.clone(), machine)
            return time.process_time() - start

        seq = par = float("inf")
        for round_no in range(6):
            if round_no % 2 == 0:
                seq = min(seq, run(seq_cfg))
                par = min(par, run(par_cfg))
            else:
                par = min(par, run(par_cfg))
                seq = min(seq, run(seq_cfg))
        ratio = par / max(seq, 1e-9)
        rows.append(fmt_row(
            [name, round(seq * 1e3, 1), round(par * 1e3, 1),
             round(ratio, 3)],
            widths,
        ))
        if par > seq * 1.10:
            failures.append(
                f"{name}: parallel config {par * 1e3:.1f}ms > "
                f"1.10x sequential {seq * 1e3:.1f}ms"
            )
    report("E15_quick_parallel_fallback", rows)
    assert not failures, "; ".join(failures)
