"""E5 -- spill code is placed in less frequently executed blocks.

For each allocator we compute the execution-count-weighted placement of
spill instructions: the mean dynamic frequency of the blocks that contain
spill code.  Paper shape: the hierarchical allocator's spill code sits in
colder blocks than Chaitin's ("spilling occurs in less frequently executed
portions of the program").
"""

import pytest

from conftest import fmt_row, report

from repro.allocators import BriggsAllocator, ChaitinAllocator
from repro.core import HierarchicalAllocator
from repro.ir.instructions import Opcode
from repro.machine.target import Machine
from repro.pipeline import compile_function
from repro.workloads.figure1 import figure1_workload
from repro.workloads.kernels import all_kernel_workloads

ALLOCS = [HierarchicalAllocator, ChaitinAllocator, BriggsAllocator]


def _placement_stats(result):
    """(static spill instrs, dynamic spill executions, mean block frequency
    over spill sites)."""
    counts = result.allocated_run.profile.block_counts
    static = 0
    weighted = 0.0
    for label, block in result.fn.blocks.items():
        spills = sum(
            1 for i in block.instrs if i.op in (Opcode.SPILL_LD, Opcode.SPILL_ST)
        )
        if spills:
            static += spills
            weighted += spills * counts.get(label, 0)
    mean_freq = weighted / static if static else 0.0
    return static, int(weighted), mean_freq


def test_spill_placement(benchmark):
    workloads = all_kernel_workloads(10) + [figure1_workload(10)]
    machine = Machine.simple(4)
    widths = [14, 14, 10, 12, 12]
    rows = [fmt_row(
        ["workload", "allocator", "static", "dynamic", "mean freq"], widths
    )]
    mean_by_alloc = {a.name: [] for a in ALLOCS}
    for workload in workloads:
        for allocator_cls in ALLOCS:
            result = compile_function(workload, allocator_cls(), machine)
            static, dynamic, mean_freq = _placement_stats(result)
            if static:
                mean_by_alloc[allocator_cls.name].append(mean_freq)
            rows.append(fmt_row(
                [workload.label(), allocator_cls.name, static, dynamic,
                 mean_freq],
                widths,
            ))
    summary = {
        name: (sum(vals) / len(vals) if vals else 0.0)
        for name, vals in mean_by_alloc.items()
    }
    rows.append("")
    rows.append(fmt_row(["OVERALL", "", "", "", ""], widths))
    for name, value in summary.items():
        rows.append(fmt_row(["", name, "", "", value], widths))
    report("E5_spill_placement", rows)

    # Paper shape: hierarchical spill sites are colder on average.
    assert summary["hierarchical"] < summary["chaitin"]

    benchmark(lambda: compile_function(
        figure1_workload(10), HierarchicalAllocator(), machine
    ))
