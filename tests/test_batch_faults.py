"""Fault tolerance of the batch engine: error taxonomy, deterministic
retries, pool recovery, the degradation ladder, cache quarantine, and the
fault-injection harness that drives them all.

The load-bearing property throughout: a faulted-then-recovered run is
**bit-identical** to a fault-free run (same fingerprints, same spilled
sets, same cache state), because records are pure functions of their
content address and faults only shift wall times and counters.
"""

import io
import json
import os

import pytest

from repro.batch import (
    BatchConfig,
    BatchEngine,
    DEGRADATION_LADDER,
    FaultPlan,
    InjectedFault,
    ModuleFileError,
    ModuleLoad,
    active_plan,
    load_module_dir,
    synthetic_module,
)
from repro.batch.faultinject import ENV_VAR
from repro.cli import main as cli_main
from repro.errors import (
    PERMANENT,
    TRANSIENT,
    BatchFunctionError,
    TaskError,
    classify_exception,
    task_error_from_exception,
)
from repro.pipeline import allocate_module
from repro.trace import (
    AllocationTracer,
    Degraded,
    MemorySink,
    PoolRestarted,
    TaskFailed,
    TaskRetried,
)


def _fingerprints(module):
    return [r.record.fingerprint_dict() for r in module]


def _set_plan(monkeypatch, specs):
    monkeypatch.setenv(ENV_VAR, json.dumps(specs))


GOOD_IR = """func f() start=entry stop=entry
entry:
  x = const 1
  ret x
"""


# ----------------------------------------------------------------------
# error taxonomy
# ----------------------------------------------------------------------
class TestTaxonomy:
    def test_parse_error_is_permanent(self):
        from repro.ir.parser import IRParseError

        assert classify_exception(IRParseError("x")) == ("parse", PERMANENT)

    def test_validation_error_is_permanent(self):
        from repro.ir.validate import IRValidationError

        assert classify_exception(IRValidationError("x")) == (
            "validate", PERMANENT,
        )

    def test_no_color_is_permanent(self):
        from repro.graph.coloring import NoColorForRequiredNode

        exc = NoColorForRequiredNode("no color", "v1")
        assert classify_exception(exc) == ("no_color", PERMANENT)

    def test_allocation_check_is_permanent(self):
        from repro.machine.rewrite import AllocationCheckError

        assert classify_exception(AllocationCheckError("x")) == (
            "allocation_check", PERMANENT,
        )

    def test_simulation_error_is_permanent(self):
        from repro.machine.simulator import SimulationError

        assert classify_exception(SimulationError("x")) == (
            "simulation", PERMANENT,
        )

    def test_timeout_is_transient(self):
        from concurrent.futures import TimeoutError as FuturesTimeout

        assert classify_exception(FuturesTimeout()) == (
            "timeout", TRANSIENT,
        )
        assert classify_exception(TimeoutError()) == ("timeout", TRANSIENT)

    def test_broken_pool_is_transient(self):
        from concurrent.futures.process import BrokenProcessPool

        assert classify_exception(BrokenProcessPool("died")) == (
            "pool", TRANSIENT,
        )

    def test_os_errors_are_transient(self):
        assert classify_exception(OSError("disk")) == ("os", TRANSIENT)

    def test_resource_exhaustion_is_permanent(self):
        # A task's memory footprint and recursion depth are
        # deterministic functions of its input: retrying re-exhausts,
        # so both route to the degradation ladder instead.
        assert classify_exception(MemoryError()) == ("oom", PERMANENT)
        assert classify_exception(RecursionError("depth")) == (
            "recursion", PERMANENT,
        )

    def test_budget_exhaustion_is_permanent_deadline_transient(self):
        from repro.core.budget import BudgetExceededError

        fuel = BudgetExceededError("fuel", 1001, 1000, {"instrs": 1001})
        assert classify_exception(fuel) == ("budget", PERMANENT)
        deadline = BudgetExceededError("deadline", 2.5, 2.0)
        assert classify_exception(deadline) == ("deadline", TRANSIENT)

    def test_unknown_exception_is_internal_permanent(self):
        assert classify_exception(TypeError("surprise")) == (
            "internal", PERMANENT,
        )

    def test_injected_fault_keeps_its_permanence(self):
        assert classify_exception(InjectedFault("x", TRANSIENT)) == (
            "injected", TRANSIENT,
        )
        assert classify_exception(InjectedFault("x", PERMANENT)) == (
            "injected", PERMANENT,
        )

    def test_task_error_from_exception(self):
        err = task_error_from_exception(TimeoutError("slow"), attempts=3)
        assert err == TaskError("timeout", "slow", TRANSIENT, 3)
        assert err.transient and not err.permanent
        assert "timeout" in err.describe()

    def test_batch_function_error_carries_structure(self):
        err = TaskError("no_color", "v9", PERMANENT, attempts=1)
        exc = BatchFunctionError("kernel_7", err)
        assert exc.function == "kernel_7"
        assert exc.error is err
        assert "kernel_7" in str(exc) and "no_color" in str(exc)


# ----------------------------------------------------------------------
# fault plan parsing and matching
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_empty_env_is_empty_plan(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        plan = active_plan()
        assert not plan
        plan.maybe_fail_task(0, 0, in_worker=False)  # no-op

    def test_inline_json_plan(self, monkeypatch):
        _set_plan(monkeypatch, [{"task": 2, "attempt": 1,
                                 "action": "raise"}])
        plan = active_plan()
        assert plan.task_fault(2, 1) is not None
        assert plan.task_fault(2, 0) is None
        assert plan.task_fault(0, 1) is None

    def test_plan_from_file(self, monkeypatch, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps([{"task": 0, "action": "raise"}]))
        monkeypatch.setenv(ENV_VAR, f"@{path}")
        assert active_plan().task_fault(0, 0) is not None

    def test_non_list_plan_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, '{"task": 0}')
        with pytest.raises(ValueError, match="JSON list"):
            active_plan()

    def test_raise_kinds(self):
        plan = FaultPlan([
            {"task": 0, "action": "raise", "kind": "permanent"},
            {"task": 1, "action": "raise"},
        ])
        with pytest.raises(InjectedFault) as exc:
            plan.maybe_fail_task(0, 0, in_worker=False)
        assert exc.value.permanence == PERMANENT
        with pytest.raises(InjectedFault) as exc:
            plan.maybe_fail_task(1, 0, in_worker=False)
        assert exc.value.permanence == TRANSIENT

    def test_kill_and_hang_downgrade_inline(self):
        plan = FaultPlan([
            {"task": 0, "action": "kill"},
            {"task": 1, "action": "hang"},
        ])
        for task in (0, 1):
            with pytest.raises(InjectedFault) as exc:
                plan.maybe_fail_task(task, 0, in_worker=False)
            assert exc.value.permanence == TRANSIENT

    def test_unknown_action_rejected(self):
        plan = FaultPlan([{"task": 0, "action": "explode"}])
        with pytest.raises(ValueError, match="explode"):
            plan.maybe_fail_task(0, 0, in_worker=False)


# ----------------------------------------------------------------------
# inline path: retries, exhaustion, on_error policies
# ----------------------------------------------------------------------
class TestInlineFaults:
    def test_transient_failure_retries_to_identical_result(
        self, monkeypatch
    ):
        mod = synthetic_module(4, seed=11)
        baseline = allocate_module(mod, batch=BatchConfig())
        _set_plan(monkeypatch, [
            {"task": 1, "attempt": 0, "action": "raise",
             "kind": "transient"},
        ])
        faulted = allocate_module(
            mod, batch=BatchConfig(retry_backoff_s=0.0)
        )
        assert _fingerprints(faulted) == _fingerprints(baseline)
        assert faulted.ok
        assert faulted.stats.retries == 1
        assert faulted.stats.failures == 0
        assert faulted[1].attempts == 2
        assert not faulted[1].degraded

    def test_permanent_failure_degrades_without_burning_retries(
        self, monkeypatch
    ):
        mod = synthetic_module(3, seed=12)
        _set_plan(monkeypatch, [
            {"task": 0, "attempt": 0, "action": "raise",
             "kind": "permanent"},
        ])
        module = allocate_module(mod, batch=BatchConfig())
        result = module[0]
        assert module.ok  # degraded, but every function has a record
        assert result.degraded
        assert result.fallback_allocator == DEGRADATION_LADDER[0]
        assert result.record.allocator == DEGRADATION_LADDER[0]
        assert result.error is not None and result.error.permanent
        assert result.attempts == 1  # permanent: never retried
        assert module.stats.retries == 0
        assert module.stats.degraded == 1
        assert module.degraded_results == [result]
        # the other functions are untouched hierarchical results
        assert all(r.record.allocator == "hierarchical"
                   for r in module.results[1:])

    def test_retry_exhaustion_falls_down_the_ladder(self, monkeypatch):
        mod = synthetic_module(2, seed=13)
        _set_plan(monkeypatch, [
            {"task": 0, "attempt": a, "action": "raise",
             "kind": "transient"} for a in range(6)
        ])
        module = allocate_module(
            mod,
            batch=BatchConfig(max_retries=2, retry_backoff_s=0.0),
        )
        result = module[0]
        assert result.degraded
        assert result.attempts == 3  # 1 try + 2 retries
        assert result.error.attempts == 3
        assert module.stats.retries == 2

    def test_on_error_skip_records_structured_failure(self, monkeypatch):
        mod = synthetic_module(3, seed=14)
        _set_plan(monkeypatch, [
            {"task": 1, "attempt": 0, "action": "raise",
             "kind": "permanent"},
        ])
        module = allocate_module(
            mod, batch=BatchConfig(on_error="skip")
        )
        result = module[1]
        assert result.record is None
        assert result.source == "failed"
        assert not result.ok
        assert result.error.error_class == "injected"
        assert not module.ok
        assert module.failures == [result]
        assert module.stats.failures == 1
        # the failure is isolated: siblings allocated normally
        assert module[0].ok and module[2].ok

    def test_on_error_fail_raises_batch_function_error(self, monkeypatch):
        mod = synthetic_module(2, seed=15)
        _set_plan(monkeypatch, [
            {"task": 0, "attempt": 0, "action": "raise",
             "kind": "permanent"},
        ])
        with pytest.raises(BatchFunctionError) as exc:
            allocate_module(mod, batch=BatchConfig(on_error="fail"))
        assert exc.value.error.error_class == "injected"

    def test_degraded_results_never_enter_the_cache(self, monkeypatch):
        mod = synthetic_module(2, seed=16)
        _set_plan(monkeypatch, [
            {"task": 0, "attempt": 0, "action": "raise",
             "kind": "permanent"},
        ])
        with BatchEngine(batch=BatchConfig()) as engine:
            first = engine.allocate_module(mod)
            assert first[0].degraded
            # only the healthy sibling was cached
            assert len(engine.cache) == 1
            # the same module again: task 0 misses again (and the plan,
            # keyed on (task, attempt) per call, degrades it again)
            second = engine.allocate_module(mod)
            assert second[0].degraded and not second[0].cached
            assert second[1].cached
            assert len(engine.cache) == 1

    def test_failure_events_are_emitted(self, monkeypatch):
        mod = synthetic_module(2, seed=17)
        _set_plan(monkeypatch, [
            {"task": 0, "attempt": 0, "action": "raise",
             "kind": "transient"},
            {"task": 0, "attempt": 1, "action": "raise",
             "kind": "transient"},
            {"task": 0, "attempt": 2, "action": "raise",
             "kind": "transient"},
        ])
        sink = MemorySink()
        tracer = AllocationTracer([sink])
        allocate_module(
            mod,
            batch=BatchConfig(max_retries=2, retry_backoff_s=0.0),
            tracer=tracer,
        )
        failed = [e for e in sink.events if isinstance(e, TaskFailed)]
        retried = [e for e in sink.events if isinstance(e, TaskRetried)]
        degraded = [e for e in sink.events if isinstance(e, Degraded)]
        assert [e.attempt for e in failed] == [0, 1, 2]
        assert all(e.error_class == "injected" for e in failed)
        assert [e.attempt for e in retried] == [1, 2]
        assert len(degraded) == 1
        assert degraded[0].fallback_allocator == DEGRADATION_LADDER[0]

    def test_retry_backoff_is_deterministic_exponential(self, monkeypatch):
        mod = synthetic_module(1, seed=18)
        _set_plan(monkeypatch, [
            {"task": 0, "attempt": a, "action": "raise",
             "kind": "transient"} for a in range(2)
        ])
        sink = MemorySink()
        allocate_module(
            mod,
            batch=BatchConfig(max_retries=2, retry_backoff_s=0.01),
            tracer=AllocationTracer([sink]),
        )
        backoffs = [e.backoff_s for e in sink.events
                    if isinstance(e, TaskRetried)]
        assert backoffs == [0.01, 0.02]


# ----------------------------------------------------------------------
# pooled path: worker loss, hangs, pool restarts
# ----------------------------------------------------------------------
class TestPooledFaults:
    def test_worker_kill_restarts_pool_and_matches_fault_free(
        self, monkeypatch
    ):
        mod = synthetic_module(8, seed=21)
        monkeypatch.delenv(ENV_VAR, raising=False)
        baseline = allocate_module(mod, batch=BatchConfig(batch_workers=2))
        _set_plan(monkeypatch, [
            {"task": 1, "attempt": 0, "action": "kill"},
        ])
        sink = MemorySink()
        faulted = allocate_module(
            mod,
            batch=BatchConfig(batch_workers=2, retry_backoff_s=0.0),
            tracer=AllocationTracer([sink]),
        )
        assert _fingerprints(faulted) == _fingerprints(baseline)
        assert faulted.ok
        assert faulted.stats.pool_restarts == 1
        assert faulted.stats.retries >= 1
        assert faulted.stats.failures == 0
        restarts = [e for e in sink.events if isinstance(e, PoolRestarted)]
        assert len(restarts) == 1 and restarts[0].resubmitted >= 1
        failed = [e for e in sink.events if isinstance(e, TaskFailed)]
        assert any(e.error_class == "pool" for e in failed)

    def test_hung_worker_times_out_and_recovers(self, monkeypatch):
        mod = synthetic_module(4, seed=22)
        monkeypatch.delenv(ENV_VAR, raising=False)
        baseline = allocate_module(mod, batch=BatchConfig(batch_workers=2))
        _set_plan(monkeypatch, [
            {"task": 0, "attempt": 0, "action": "hang", "hang_s": 30},
        ])
        sink = MemorySink()
        faulted = allocate_module(
            mod,
            batch=BatchConfig(
                batch_workers=2, task_timeout_s=1.0, retry_backoff_s=0.0,
            ),
            tracer=AllocationTracer([sink]),
        )
        assert _fingerprints(faulted) == _fingerprints(baseline)
        assert faulted.ok
        assert faulted.stats.pool_restarts >= 1
        failed = [e for e in sink.events if isinstance(e, TaskFailed)]
        assert any(e.error_class == "timeout" for e in failed)

    def test_worker_side_permanent_failure_degrades(self, monkeypatch):
        mod = synthetic_module(3, seed=23)
        _set_plan(monkeypatch, [
            {"task": 2, "attempt": 0, "action": "raise",
             "kind": "permanent"},
        ])
        module = allocate_module(
            mod, batch=BatchConfig(batch_workers=2)
        )
        assert module.ok
        assert module[2].degraded
        assert module[2].fallback_allocator == DEGRADATION_LADDER[0]
        assert module.stats.retries == 0  # permanent: no retry burned

    def test_close_is_idempotent_and_survives_broken_pool(
        self, monkeypatch
    ):
        mod = synthetic_module(2, seed=24)
        _set_plan(monkeypatch, [
            {"task": 0, "attempt": a, "action": "kill"} for a in range(9)
        ])
        engine = BatchEngine(batch=BatchConfig(
            batch_workers=2, max_retries=1, retry_backoff_s=0.0,
            on_error="skip",
        ))
        with engine:
            module = engine.allocate_module(mod)
            assert module[0].record is None  # kills exhausted retries
            assert module[0].error.transient
        engine.close()  # second close after __exit__: no-op
        engine.close()
        assert engine._pool is None

    def test_exception_mid_run_still_releases_the_pool(self, monkeypatch):
        mod = synthetic_module(2, seed=25)
        _set_plan(monkeypatch, [
            {"task": 0, "attempt": 0, "action": "raise",
             "kind": "permanent"},
        ])
        engine = BatchEngine(batch=BatchConfig(
            batch_workers=2, on_error="fail",
        ))
        with pytest.raises(BatchFunctionError):
            with engine:
                engine.allocate_module(mod)
        assert engine._pool is None


# ----------------------------------------------------------------------
# disk cache: corruption -> quarantine
# ----------------------------------------------------------------------
class TestCacheQuarantine:
    def test_corrupt_record_is_quarantined_not_fatal(
        self, monkeypatch, tmp_path
    ):
        mod = synthetic_module(3, seed=31)
        cache_dir = str(tmp_path / "cache")
        batch = BatchConfig(cache_policy="disk", cache_dir=cache_dir)
        # corrupt the second record as it is written
        _set_plan(monkeypatch, [{"disk_write": 1, "action": "corrupt"}])
        first = allocate_module(mod, batch=batch)
        assert first.ok
        monkeypatch.delenv(ENV_VAR)
        # a fresh engine (cold LRU) must treat the torn record as a miss,
        # quarantine it, and recompute a result identical to the others
        with BatchEngine(batch=batch) as engine:
            second = engine.allocate_module(mod)
            assert second.ok
            assert _fingerprints(second) == _fingerprints(first)
            sources = sorted(r.source for r in second)
            assert sources == ["computed", "disk", "disk"]
            assert engine.cache.stats.quarantined == 1
            assert engine.stats.quarantined == 1
        quarantine = tmp_path / "cache" / "quarantine"
        files = list(quarantine.iterdir())
        assert len(files) == 1
        assert "corrupted-by-fault-plan" in files[0].read_text()

    def test_disk_write_failure_is_counted_not_raised(self, tmp_path):
        from repro.batch import AllocationCache
        from repro.batch.serialize import AllocationRecord, FORMAT_VERSION

        cache_dir = tmp_path / "cache"
        cache = AllocationCache(capacity=4, cache_dir=str(cache_dir))
        record = AllocationRecord(
            version=FORMAT_VERSION, function="f", fingerprint="ab" * 32,
            blocks=1, allocated_sha256="cd" * 32, allocated_text="",
            spilled=(), bindings=(), static_costs={}, costs=None,
            returned=None,
        )
        # make the shard path unwritable by occupying it with a file
        (cache_dir / "ab").write_text("not a directory")
        cache.put("ab" * 32, record)
        assert cache.stats.disk_write_errors == 1
        assert cache.stats.disk_writes == 0
        assert cache.get("ab" * 32) is record  # memory layer unaffected


# ----------------------------------------------------------------------
# module loading: per-file isolation
# ----------------------------------------------------------------------
class TestModuleLoadErrors:
    def test_bad_files_become_structured_errors(self, tmp_path):
        (tmp_path / "a_good.ir").write_text(GOOD_IR)
        (tmp_path / "b_bad.ir").write_text("func { this is not IR")  # noqa: line kept odd on purpose
        (tmp_path / "c_good.ir").write_text(GOOD_IR.replace("func f", "func g"))
        load = load_module_dir(str(tmp_path))
        assert isinstance(load, ModuleLoad)
        assert not load.ok
        assert [w.label() for w in load] == ["a_good", "c_good"]
        assert len(load.errors) == 1
        error = load.errors[0]
        assert isinstance(error, ModuleFileError)
        assert error.filename == "b_bad.ir"
        assert error.stage == "parse"
        assert error.error_class == "parse"
        assert "b_bad.ir" in error.describe()

    def test_all_good_module_is_ok_and_list_like(self, tmp_path):
        (tmp_path / "f.ir").write_text(GOOD_IR)
        load = load_module_dir(str(tmp_path))
        assert load.ok and load.errors == []
        assert len(load) == 1 and list(load) == [load[0]]

    def test_missing_and_empty_dirs_still_raise(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_module_dir(str(tmp_path / "nope"))
        with pytest.raises(FileNotFoundError):
            load_module_dir(str(tmp_path))

    def test_dir_of_only_bad_files_reports_not_raises(self, tmp_path):
        (tmp_path / "bad.ir").write_text("not IR at all")
        load = load_module_dir(str(tmp_path))
        assert list(load) == []
        assert len(load.errors) == 1


# ----------------------------------------------------------------------
# CLI: failure summary and exit codes
# ----------------------------------------------------------------------
class TestCliFailures:
    def _write_good(self, path, name="f"):
        path.write_text(GOOD_IR.replace("func f", f"func {name}"))

    def test_load_error_exits_nonzero_with_summary(self, tmp_path):
        self._write_good(tmp_path / "good.ir")
        (tmp_path / "bad.ir").write_text("syntax error here")
        out = io.StringIO()
        code = cli_main(["batch", str(tmp_path)], out=out)
        text = out.getvalue()
        assert code == 1
        assert "LOAD FAILED bad.ir" in text
        assert "good:" in text  # the healthy file was still allocated
        assert "1 file(s) failed to load" in text

    def test_task_failure_exits_nonzero(self, monkeypatch, tmp_path):
        self._write_good(tmp_path / "only.ir")
        _set_plan(monkeypatch, [
            {"task": 0, "attempt": 0, "action": "raise",
             "kind": "permanent"},
        ])
        out = io.StringIO()
        code = cli_main(
            ["batch", str(tmp_path), "--on-error", "skip"], out=out
        )
        assert code == 1
        assert "FAILED injected" in out.getvalue()
        assert "1 function(s) failed to allocate" in out.getvalue()

    def test_degraded_run_exits_zero_and_is_labelled(
        self, monkeypatch, tmp_path
    ):
        self._write_good(tmp_path / "only.ir")
        _set_plan(monkeypatch, [
            {"task": 0, "attempt": 0, "action": "raise",
             "kind": "permanent"},
        ])
        out = io.StringIO()
        code = cli_main(["batch", str(tmp_path), "--stats"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "DEGRADED[chaitin]" in text
        assert "degraded: 1" in text

    def test_on_error_fail_flag_aborts(self, monkeypatch, tmp_path):
        self._write_good(tmp_path / "only.ir")
        _set_plan(monkeypatch, [
            {"task": 0, "attempt": 0, "action": "raise",
             "kind": "permanent"},
        ])
        with pytest.raises(SystemExit, match="on-error fail"):
            cli_main(
                ["batch", str(tmp_path), "--on-error", "fail"],
                out=io.StringIO(),
            )

    def test_healthy_run_still_exits_zero(self, monkeypatch, tmp_path):
        monkeypatch.delenv(ENV_VAR, raising=False)
        self._write_good(tmp_path / "only.ir")
        out = io.StringIO()
        code = cli_main(
            ["batch", str(tmp_path), "--max-retries", "1",
             "--task-timeout", "60"],
            out=out,
        )
        assert code == 0
        assert "FAIL" not in out.getvalue()


# ----------------------------------------------------------------------
# acceptance: the ISSUE's end-to-end scenario
# ----------------------------------------------------------------------
class TestAcceptance:
    def test_twenty_functions_one_kill_one_transient_bit_identical(
        self, monkeypatch
    ):
        mod = synthetic_module(20, seed=42)
        monkeypatch.delenv(ENV_VAR, raising=False)
        baseline = allocate_module(
            mod, batch=BatchConfig(batch_workers=2)
        )
        assert len(baseline) == 20 and baseline.ok

        _set_plan(monkeypatch, [
            {"task": 3, "attempt": 0, "action": "kill"},
            {"task": 11, "attempt": 0, "action": "raise",
             "kind": "transient"},
        ])
        faulted = allocate_module(
            mod,
            batch=BatchConfig(batch_workers=2, retry_backoff_s=0.0),
        )
        assert len(faulted) == 20 and faulted.ok
        assert _fingerprints(faulted) == _fingerprints(baseline)
        assert [tuple(r.record.spilled) for r in faulted] == [
            tuple(r.record.spilled) for r in baseline
        ]
        assert faulted.stats.pool_restarts == 1
        assert faulted.stats.retries >= 1
        assert faulted.stats.failures == 0
        assert faulted.stats.degraded == 0
